"""The repo linter, grown from ``tools/lint_repro.py``.

Modules:

* :mod:`tools.lint.findings` -- Finding, the CODES registry, and the
  ``# lint: allow=`` suppression engine (shared by every rule).
* :mod:`tools.lint.rules` -- the per-file rules (L001, E001/E002,
  E003, X100/X101/X102).
* :mod:`tools.lint.symbols` -- the whole-program symbol/type model
  (classes, methods, lock declarations, annotation-driven type
  inference) the interprocedural pass runs on.
* :mod:`tools.lint.lockgraph` -- the interprocedural lock-order
  analysis (L002, L010, L011, L012) and the lock-graph dump.
* :mod:`tools.lint.cli` -- the driver (``python -m tools.lint``).

``tools/lint_repro.py`` remains as a thin shim so existing callers
(CI, tests that load it by path) keep working.
"""

from .cli import main
from .findings import CODES, Finding, apply_suppressions, suppressions
from .lockgraph import Analyzer, LockGraph, analyze, assert_contains
from .rules import lint_file, lint_file_hygiene, load_event_names
from .symbols import Program

#: historical name, kept for the lint_repro.py shim
_load_event_names = load_event_names

__all__ = [
    "CODES", "Finding", "Program", "Analyzer", "LockGraph",
    "analyze", "assert_contains", "apply_suppressions",
    "suppressions", "lint_file", "lint_file_hygiene",
    "load_event_names", "_load_event_names", "main",
]
