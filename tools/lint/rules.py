"""Per-file linter rules: L001, E001/E002, E003, X100/X101, X102.

These are the single-file checks (one AST at a time); the
interprocedural lock rules (L002/L010/L011/L012) live in
:mod:`tools.lint.lockgraph`.

L001  lock-consistency
    Inside a class that guards an attribute with a lock anywhere
    (i.e. some method mutates ``self.attr`` under ``with self._lock``),
    every other mutation of that same attribute must also happen under
    a ``with`` on one of the class's locks.  ``__init__`` and
    ``__post_init__`` are exempt (no concurrent observer exists yet),
    as are helper methods whose name ends in ``_locked`` (called with
    the lock already held, by convention -- a convention L002 now
    checks at every call site).

E001  unknown-event-name
    ``tracer.emit(layer, name)`` / ``tracer.span(layer, name)`` /
    ``context.trace(layer, name)`` with literal arguments must use a
    name registered in ``repro.runtime.observability.EVENT_NAMES``
    (spans table for ``span``, events table for ``emit``/``trace``).
    The golden traces and docs/PROTOCOLS.md key off these names.

E002  non-literal-event-name
    The ``name`` argument of those calls must be a string literal so
    the contract is checkable; the few deliberate forwarding seams
    carry an inline suppression.

E003  unbounded-metric-label
    Label keyword arguments on metric writes (``.inc(...)`` /
    ``.set(...)`` / ``.observe(...)``) must come from a small closed
    vocabulary.  A label whose value space grows with traffic --
    session ids, trace ids, hole ids, peer addresses, query text --
    makes the registry (and any scraping Prometheus) grow without
    bound; put such values in trace events or the flight recorder
    instead.

X100  bare-except
    ``except:`` swallows ``KeyboardInterrupt``/``SystemExit``; name
    the exception class.

X101  real-sleep
    ``time.sleep`` outside the one sanctioned site (the ``SystemClock``
    in ``runtime/resilience.py``) breaks the deterministic testing
    clock and slows the suite.

X102  unbounded-socket
    Network calls must carry explicit timeouts; a forgotten one is an
    unbounded hang.  Flagged: ``socket.create_connection(...)``
    without a ``timeout=`` keyword, and any file that creates sockets
    (``socket.socket(...)``) or accepts connections (``.accept()``)
    without ever calling ``.settimeout(...)`` /
    ``socket.setdefaulttimeout(...)``.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .findings import Finding, apply_suppressions

#: Mutating method names on a container attribute (``self.x.append(..)``).
_MUTATOR_METHODS = frozenset({
    "append", "appendleft", "add", "extend", "insert", "update",
    "setdefault", "pop", "popleft", "popitem", "remove", "discard",
    "clear", "sort",
})

#: The one file allowed to call ``time.sleep`` (the real clock).
_SLEEP_ALLOWED = ("runtime", "resilience.py")

#: Named-lock factory functions (``repro.runtime.locks``).
_LOCK_FACTORIES = frozenset({"make_lock", "make_rlock"})


def is_lock_creation(value: ast.expr) -> Optional[bool]:
    """None if *value* is not a lock creation; else its reentrancy.

    Recognizes both the raw ``threading.Lock()``/``RLock()`` /
    ``Condition()`` form and the named ``make_lock("...")`` /
    ``make_rlock("...")`` factories.
    """
    if not isinstance(value, ast.Call):
        return None
    func = value.func
    if isinstance(func, ast.Attribute):
        if func.attr in ("Lock", "Condition"):
            return False
        if func.attr == "RLock":
            return True
        if func.attr in _LOCK_FACTORIES:
            return func.attr == "make_rlock"
    elif isinstance(func, ast.Name) and func.id in _LOCK_FACTORIES:
        return func.id == "make_rlock"
    return None


def lock_creation_name(value: ast.expr) -> Optional[str]:
    """The dotted name literal of a ``make_lock``/``make_rlock`` call
    (None for raw ``threading`` locks or non-literal names)."""
    if is_lock_creation(value) is None:
        return None
    assert isinstance(value, ast.Call)
    if value.args and isinstance(value.args[0], ast.Constant) \
            and isinstance(value.args[0].value, str):
        return value.args[0].value
    return None


# ----------------------------------------------------------------------
# L001: lock-consistency
# ----------------------------------------------------------------------

def _self_attr(node: ast.AST) -> Optional[str]:
    """The attribute name if ``node`` is ``self.<attr>`` (possibly
    through a subscript), else None."""
    while isinstance(node, ast.Subscript):
        node = node.value
    if (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"):
        return node.attr
    return None


def _lock_attrs(cls: ast.ClassDef) -> Set[str]:
    """Attributes assigned a lock anywhere in the class body."""
    locks: Set[str] = set()
    for node in ast.walk(cls):
        if not isinstance(node, ast.Assign):
            continue
        if is_lock_creation(node.value) is None:
            continue
        for target in node.targets:
            attr = _self_attr(target)
            if attr is not None:
                locks.add(attr)
    return locks


def _iter_mutations(func: ast.AST
                    ) -> Iterator[Tuple[str, int, ast.AST]]:
    """Yield ``(attr, lineno, node)`` for every mutation of a
    ``self.<attr>`` inside ``func`` (without entering nested
    functions or classes -- they have their own discipline)."""

    def walk(node: ast.AST) -> Iterator[ast.AST]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef, ast.Lambda)):
                continue
            yield child
            yield from walk(child)

    for node in walk(func):
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for target in targets:
                # plain rebinds of self.attr in @property setters etc.
                # count; tuple targets unpacked
                elts = (target.elts
                        if isinstance(target, (ast.Tuple, ast.List))
                        else [target])
                for elt in elts:
                    attr = _self_attr(elt)
                    if attr is not None:
                        subscripted = isinstance(elt, ast.Subscript) \
                            or isinstance(getattr(elt, "value", None),
                                          ast.Subscript)
                        yield attr, node.lineno, subscripted
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                attr = _self_attr(target)
                if attr is not None:
                    yield attr, node.lineno, True
        elif (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _MUTATOR_METHODS):
            attr = _self_attr(node.func.value)
            if attr is not None:
                yield attr, node.lineno, True


def _with_lock_spans(func: ast.AST, locks: Set[str]
                     ) -> List[Tuple[int, int]]:
    """(start, end) line spans of ``with self.<lock>:`` blocks."""
    spans: List[Tuple[int, int]] = []
    for node in ast.walk(func):
        if not isinstance(node, ast.With):
            continue
        for item in node.items:
            attr = _self_attr(item.context_expr)
            if attr in locks:
                spans.append((node.lineno,
                              node.end_lineno or node.lineno))
                break
    return spans


def _check_lock_consistency(path: Path, tree: ast.Module
                            ) -> List[Finding]:
    findings: List[Finding] = []
    for cls in [n for n in ast.walk(tree)
                if isinstance(n, ast.ClassDef)]:
        locks = _lock_attrs(cls)
        if not locks:
            continue
        methods = [n for n in cls.body
                   if isinstance(n, (ast.FunctionDef,
                                     ast.AsyncFunctionDef))]
        # Pass 1: which attributes does this class ever mutate under
        # one of its locks?  Those are the guarded attributes.
        guarded: Set[str] = set()
        per_method: Dict[ast.AST, List[Tuple[str, int, bool]]] = {}
        for method in methods:
            spans = _with_lock_spans(method, locks)
            muts = list(_iter_mutations(method))
            per_method[method] = muts
            for attr, lineno, _sub in muts:
                if any(lo <= lineno <= hi for lo, hi in spans):
                    guarded.add(attr)
        guarded -= locks
        if not guarded:
            continue
        # Pass 2: every other mutation of a guarded attribute must
        # also be inside a with-lock block.
        for method in methods:
            if method.name in ("__init__", "__post_init__") \
                    or method.name.endswith("_locked"):
                continue
            spans = _with_lock_spans(method, locks)
            for attr, lineno, _sub in per_method[method]:
                if attr not in guarded:
                    continue
                if any(lo <= lineno <= hi for lo, hi in spans):
                    continue
                findings.append(Finding(
                    path, lineno, "L001",
                    "%s.%s mutates self.%s outside its lock (guarded "
                    "elsewhere in the class)" % (cls.name, method.name,
                                                 attr)))
    return findings


# ----------------------------------------------------------------------
# E001/E002: the event-name contract
# ----------------------------------------------------------------------

_TRACE_METHODS = {"emit": "events", "trace": "events", "span": "spans"}


def _check_event_names(path: Path, tree: ast.Module,
                       event_names: Dict[str, Dict[str, tuple]]
                       ) -> List[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _TRACE_METHODS):
            continue
        if len(node.args) < 2:
            continue  # not the (layer, name, ...) shape
        table = _TRACE_METHODS[node.func.attr]
        layer_arg, name_arg = node.args[0], node.args[1]
        if not (isinstance(layer_arg, ast.Constant)
                and isinstance(layer_arg.value, str)):
            # a forwarding seam (layer itself is a variable)
            findings.append(Finding(
                path, node.lineno, "E002",
                "%s() with non-literal layer/name cannot be checked "
                "against EVENT_NAMES" % node.func.attr))
            continue
        layer = layer_arg.value
        if not (isinstance(name_arg, ast.Constant)
                and isinstance(name_arg.value, str)):
            findings.append(Finding(
                path, node.lineno, "E002",
                "%s(%r, <non-literal>) event name must be a string "
                "literal" % (node.func.attr, layer)))
            continue
        name = name_arg.value
        known = event_names.get(table, {}).get(layer)
        if known is None:
            findings.append(Finding(
                path, node.lineno, "E001",
                "layer %r is not in the EVENT_NAMES %s table"
                % (layer, table)))
        elif name not in known:
            findings.append(Finding(
                path, node.lineno, "E001",
                "%s(%r, %r): name not in EVENT_NAMES[%r][%r]"
                % (node.func.attr, layer, name, table, layer)))
    return findings


# ----------------------------------------------------------------------
# E003: unbounded metric label values
# ----------------------------------------------------------------------

#: metric write methods whose keywords are label names
_METRIC_WRITE_METHODS = frozenset({"inc", "set", "observe"})

#: metric factory methods -- a write chained off one of these is
#: unambiguously a metric write (not e.g. threading.Event.set)
_METRIC_FACTORY_METHODS = frozenset({"counter", "gauge", "histogram"})

#: the closed label vocabulary: low-cardinality dimensions only
_BOUNDED_LABELS = frozenset({
    "op", "reason", "source", "channel", "cache", "buffer",
    "counter", "kind", "phase", "outcome", "pattern", "code",
    "method", "command", "event",
})

#: label names whose values grow with traffic, wherever they appear
_UNBOUNDED_LABELS = frozenset({
    "session", "session_id", "trace", "trace_id", "span", "span_id",
    "peer", "address", "hole", "wire_id", "query", "detail",
})


def _check_metric_labels(path: Path, tree: ast.Module
                         ) -> List[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _METRIC_WRITE_METHODS):
            continue
        receiver = node.func.value
        chained_off_factory = (
            isinstance(receiver, ast.Call)
            and isinstance(receiver.func, ast.Attribute)
            and receiver.func.attr in _METRIC_FACTORY_METHODS)
        for keyword in node.keywords:
            label = keyword.arg
            if label is None:
                continue  # **kwargs forwarding seam
            if label in _UNBOUNDED_LABELS:
                findings.append(Finding(
                    path, node.lineno, "E003",
                    "metric label %r has unbounded cardinality; "
                    "emit it as a trace event or flight-recorder "
                    "field instead" % label))
            elif chained_off_factory \
                    and label not in _BOUNDED_LABELS:
                findings.append(Finding(
                    path, node.lineno, "E003",
                    "metric label %r is outside the closed label "
                    "vocabulary %s" % (label,
                                       sorted(_BOUNDED_LABELS))))
    return findings


# ----------------------------------------------------------------------
# X100/X101: bare except and real sleeps
# ----------------------------------------------------------------------

def _check_hygiene(path: Path, tree: ast.Module) -> List[Finding]:
    findings: List[Finding] = []
    sleep_ok = path.parts[-2:] == _SLEEP_ALLOWED
    for node in ast.walk(tree):
        if isinstance(node, ast.ExceptHandler) and node.type is None:
            findings.append(Finding(
                path, node.lineno, "X100",
                "bare 'except:' (catches KeyboardInterrupt; name the "
                "exception class)"))
        elif (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "sleep"
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "time"
                and not sleep_ok):
            findings.append(Finding(
                path, node.lineno, "X101",
                "time.sleep outside runtime/resilience.py breaks the "
                "testing clock (inject a Clock instead)"))
    return findings


# ----------------------------------------------------------------------
# X102: sockets without explicit timeouts
# ----------------------------------------------------------------------

def _is_socket_attr(func: ast.expr, attr: str) -> bool:
    """``socket.<attr>`` (module-qualified attribute reference)."""
    return (isinstance(func, ast.Attribute)
            and func.attr == attr
            and isinstance(func.value, ast.Name)
            and func.value.id == "socket")


def _check_socket_timeouts(path: Path, tree: ast.Module
                           ) -> List[Finding]:
    sets_timeout = False
    creators: List[Tuple[int, str]] = []
    findings: List[Finding] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Attribute) \
                and func.attr == "settimeout":
            sets_timeout = True
        elif _is_socket_attr(func, "setdefaulttimeout"):
            sets_timeout = True
        elif _is_socket_attr(func, "create_connection"):
            has_timeout = (len(node.args) >= 2
                           or any(kw.arg == "timeout"
                                  for kw in node.keywords))
            if not has_timeout:
                findings.append(Finding(
                    path, node.lineno, "X102",
                    "socket.create_connection without an explicit "
                    "timeout= hangs forever on a dead peer"))
        elif _is_socket_attr(func, "socket"):
            creators.append((node.lineno, "socket.socket(...)"))
        elif isinstance(func, ast.Attribute) \
                and func.attr == "accept":
            creators.append((node.lineno, ".accept()"))
    if not sets_timeout:
        for lineno, what in creators:
            findings.append(Finding(
                path, lineno, "X102",
                "%s in a file that never calls .settimeout() -- "
                "blocking socket operations need an explicit bound"
                % what))
    return findings


# ----------------------------------------------------------------------
# file drivers
# ----------------------------------------------------------------------

def load_event_names(repo_root: Path) -> Dict[str, Dict[str, tuple]]:
    """EVENT_NAMES parsed from the observability module's AST -- the
    linter must not import the package it lints."""
    source = (repo_root / "src" / "repro" / "runtime"
              / "observability.py").read_text()
    tree = ast.parse(source)
    for node in ast.walk(tree):
        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for target in targets:
                if isinstance(target, ast.Name) \
                        and target.id == "EVENT_NAMES" \
                        and node.value is not None:
                    return ast.literal_eval(node.value)
    raise SystemExit("EVENT_NAMES not found in runtime/observability.py")


def lint_file(path: Path, event_names: Dict[str, Dict[str, tuple]]
              ) -> List[Finding]:
    """All single-file rules over one source file."""
    source = path.read_text()
    tree = ast.parse(source, filename=str(path))
    findings = (_check_lock_consistency(path, tree)
                + _check_event_names(path, tree, event_names)
                + _check_metric_labels(path, tree)
                + _check_hygiene(path, tree)
                + _check_socket_timeouts(path, tree))
    return apply_suppressions(findings, source.splitlines())


def lint_file_hygiene(path: Path) -> List[Finding]:
    """Hygiene-only rules (X100/X101/X102) -- the subset applied to
    ``benchmarks/``, ``tools/`` and ``examples/``, which are not part
    of the traced runtime but still open sockets and sleep."""
    source = path.read_text()
    tree = ast.parse(source, filename=str(path))
    findings = (_check_hygiene(path, tree)
                + _check_socket_timeouts(path, tree))
    return apply_suppressions(findings, source.splitlines())
