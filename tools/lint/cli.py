"""Linter driver: per-file rules plus the whole-program lock pass.

Scoping: files under a ``src`` tree get the full rule set (L/E/X
codes plus the interprocedural lock-order analysis); other roots
(``benchmarks/``, ``tools/``, ``examples/``) get the hygiene rules
only (X100/X101/X102) -- bench and example code has no lock
discipline or event-name contract to enforce, but a bare except or
an untimed socket is just as wrong there.

Flags::

    --lock-graph PATH     dump the lock-order graph as JSON (and a
                          Graphviz .dot next to it)
    --assert-contains P   read sanitizer-observed edges (JSONL, as
                          written by REPRO_LOCK_SANITIZER_DUMP) and
                          fail unless every observed edge is in the
                          static graph (dynamic must be a subset of
                          static)

Exit status: 0 when clean, 1 when any finding survives suppression
or the containment check misses.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from .findings import Finding, apply_suppressions
from .lockgraph import analyze, assert_contains
from .rules import lint_file, lint_file_hygiene, load_event_names


def _full_rules(path: Path) -> bool:
    return "src" in path.parts


def _collect(root: Path) -> List[Path]:
    return sorted(root.rglob("*.py")) if root.is_dir() else [root]


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    repo_root = Path(__file__).resolve().parents[2]

    graph_out: Optional[Path] = None
    observed_in: Optional[Path] = None
    rest: List[str] = []
    i = 0
    while i < len(argv):
        arg = argv[i]
        if arg == "--lock-graph":
            i += 1
            graph_out = Path(argv[i])
        elif arg == "--assert-contains":
            i += 1
            observed_in = Path(argv[i])
        else:
            rest.append(arg)
        i += 1

    if rest:
        roots = [Path(a) for a in rest]
    else:
        roots = [repo_root / "src" / "repro"]
        for extra in ("benchmarks", "tools", "examples"):
            candidate = repo_root / extra
            if candidate.is_dir():
                roots.append(candidate)

    event_names = load_event_names(repo_root)
    findings: List[Finding] = []
    count = 0
    src_files: List[Path] = []
    for root in roots:
        for path in _collect(root):
            count += 1
            if _full_rules(path):
                findings.extend(lint_file(path, event_names))
                src_files.append(path)
            else:
                findings.extend(lint_file_hygiene(path))

    status = 0
    if src_files or graph_out or observed_in:
        graph_files = src_files or _collect(
            repo_root / "src" / "repro")
        graph = analyze(graph_files)
        sources: Dict[Path, List[str]] = {}
        for finding in graph.findings:
            lines = sources.get(finding.path)
            if lines is None:
                lines = finding.path.read_text().splitlines()
                sources[finding.path] = lines
        by_file: Dict[Path, List[Finding]] = {}
        for finding in graph.findings:
            by_file.setdefault(finding.path, []).append(finding)
        for path, file_findings in by_file.items():
            findings.extend(
                apply_suppressions(file_findings, sources[path]))
        if graph_out is not None:
            payload = graph.to_json()
            graph_out.write_text(json.dumps(payload, indent=2,
                                            sort_keys=True) + "\n")
            graph_out.with_suffix(".dot").write_text(graph.to_dot())
        if observed_in is not None:
            misses = assert_contains(
                graph.to_json(),
                observed_in.read_text().splitlines())
            for miss in misses:
                print(miss)
            if misses:
                status = 1

    findings.sort(key=lambda f: (str(f.path), f.line, f.code))
    for finding in findings:
        print(finding.render())
    print("lint_repro: %d file(s), %d finding(s)"
          % (count, len(findings)), file=sys.stderr)
    return 1 if findings else status
