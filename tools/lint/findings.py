"""Shared linter core: findings, the code registry, suppressions.

Every rule module reports through :class:`Finding`; every code is
registered in :data:`CODES` (severity + short title), which the
PROTOCOLS.md "Linter codes" table is doc-synced against, the same
discipline as ``repro.analysis.findings.CODES``.

Suppression: a comment ``# lint: allow=CODE[,CODE]`` on the flagged
line or the line directly above skips those codes for that line.  By
convention the comment carries a justification after the codes
(``# lint: allow=L011 -- channel round trips are deadline-bounded``).
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Dict, NamedTuple, Sequence, Set

_ALLOW_RE = re.compile(r"#\s*lint:\s*allow=([A-Z0-9,\s]+)")


class CodeInfo(NamedTuple):
    severity: str  # "error" | "warning"
    title: str


#: The stable diagnostic vocabulary of the repo linter.  Codes are
#: append-only: tools and suppression comments key off them.
CODES: Dict[str, CodeInfo] = {
    "L001": CodeInfo("warning", "lock-consistency"),
    "L002": CodeInfo("error", "interprocedural-lock-consistency"),
    "L010": CodeInfo("error", "lock-order-cycle"),
    "L011": CodeInfo("warning", "blocking-call-under-lock"),
    "L012": CodeInfo("warning", "callback-under-lock"),
    "E001": CodeInfo("error", "unknown-event-name"),
    "E002": CodeInfo("warning", "non-literal-event-name"),
    "E003": CodeInfo("error", "unbounded-metric-label"),
    "X100": CodeInfo("warning", "bare-except"),
    "X101": CodeInfo("warning", "real-sleep"),
    "X102": CodeInfo("warning", "unbounded-socket"),
}


class Finding:
    def __init__(self, path: Path, line: int, code: str,
                 message: str) -> None:
        self.path = path
        self.line = line
        self.code = code
        self.message = message

    def render(self) -> str:
        return "%s:%d: %s %s" % (self.path, self.line, self.code,
                                 self.message)

    def __repr__(self) -> str:
        return "Finding(%r)" % self.render()


def suppressions(source_lines: Sequence[str]) -> Dict[int, Set[str]]:
    """Line number -> codes allowed there (by same-line or
    line-above ``# lint: allow=`` comments)."""
    allowed: Dict[int, Set[str]] = {}
    for idx, text in enumerate(source_lines, start=1):
        match = _ALLOW_RE.search(text)
        if match:
            codes = {c.strip() for c in match.group(1).split(",")
                     if c.strip()}
            allowed.setdefault(idx, set()).update(codes)
            allowed.setdefault(idx + 1, set()).update(codes)
    return allowed


def apply_suppressions(findings: Sequence[Finding],
                       source_lines: Sequence[str]) -> list:
    """Drop findings silenced by inline ``# lint: allow=`` comments."""
    allowed = suppressions(source_lines)
    return [f for f in findings
            if f.code not in allowed.get(f.line, set())]
