"""Whole-program symbol model for the lock-order analyzer.

A deliberately small, AST-only view of the repo: modules, classes,
methods, the nominal types of ``self.<attr>`` slots and locals, and
every lock declaration (named ``make_lock``/``make_rlock`` sites plus
anonymous raw ``threading`` locks, which get a derived
``<module>.<Class>.<attr>`` identity).  Precision is "good enough to
resolve the repo's own idioms": constructor assignments, parameter and
return annotations (including ``Optional``/containers), a short table
of conventional receiver names (``tracer``, ``metrics``, ``clock``).
Anything unresolved stays unresolved -- the analyzer reports coverage
rather than guessing.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple

from .rules import is_lock_creation, lock_creation_name

#: Conventional receiver names -> nominal class, used only when no
#: annotation or constructor assignment pins the type.  These mirror
#: repo-wide naming discipline (a ``tracer`` is always the Tracer).
NAME_HINTS: Dict[str, str] = {
    "tracer": "Tracer",
    "metrics": "MetricsRegistry",
    "telemetry": "MetricsRegistry",
    "recorder": "FlightRecorder",
    "clock": "Clock",
}

#: typing wrappers whose subscript is transparent for our purposes
_TRANSPARENT = {"Optional", "Union", "Final", "ClassVar", "Annotated"}
#: containers whose subscript names the *element* type
_CONTAINERS = {"List", "Tuple", "Set", "FrozenSet", "Sequence",
               "Iterable", "Iterator", "Deque", "Collection", "list",
               "tuple", "set", "frozenset"}


@dataclass
class LockDecl:
    name: str          # dotted identity (derived for anonymous locks)
    reentrant: bool
    anonymous: bool
    module: str
    cls: Optional[str]
    attr: str          # attribute / variable bound at the creation
    line: int


@dataclass
class FuncInfo:
    module: str
    cls: Optional[str]
    name: str
    node: ast.AST  # FunctionDef | AsyncFunctionDef

    @property
    def qname(self) -> str:
        if self.cls:
            return "%s.%s.%s" % (self.module, self.cls, self.name)
        return "%s.%s" % (self.module, self.name)


@dataclass
class ClassInfo:
    module: str
    name: str
    bases: List[str] = field(default_factory=list)
    methods: Dict[str, FuncInfo] = field(default_factory=dict)
    #: self.<attr> -> set of nominal class names
    attr_types: Dict[str, Set[str]] = field(default_factory=dict)
    #: self.<attr> -> element class names (for containers)
    elem_types: Dict[str, Set[str]] = field(default_factory=dict)
    #: self.<attr> -> lock declaration
    lock_attrs: Dict[str, LockDecl] = field(default_factory=dict)


@dataclass
class ModuleInfo:
    path: Path
    modname: str
    tree: ast.Module
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    functions: Dict[str, FuncInfo] = field(default_factory=dict)
    #: module-level variable -> lock declaration
    module_locks: Dict[str, LockDecl] = field(default_factory=dict)


def _annotation_names(node: Optional[ast.expr]
                      ) -> Tuple[Set[str], Set[str]]:
    """(direct type names, container element type names) named by an
    annotation expression.  String annotations are re-parsed."""
    direct: Set[str] = set()
    elems: Set[str] = set()
    if node is None:
        return direct, elems
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return direct, elems
    if isinstance(node, ast.Name):
        direct.add(node.id)
    elif isinstance(node, ast.Attribute):
        direct.add(node.attr)
    elif isinstance(node, ast.Subscript):
        head = node.value
        head_name = (head.id if isinstance(head, ast.Name)
                     else head.attr if isinstance(head, ast.Attribute)
                     else "")
        inner = node.slice
        parts = (inner.elts if isinstance(inner, ast.Tuple)
                 else [inner])
        if head_name in _TRANSPARENT:
            for part in parts:
                sub_direct, sub_elems = _annotation_names(part)
                direct |= sub_direct
                elems |= sub_elems
        elif head_name in _CONTAINERS:
            for part in parts:
                sub_direct, _ = _annotation_names(part)
                elems |= sub_direct
        elif head_name in ("Dict", "Mapping", "MutableMapping",
                           "DefaultDict", "dict"):
            # values are what gets iterated/indexed out in practice
            if len(parts) == 2:
                sub_direct, _ = _annotation_names(parts[1])
                elems |= sub_direct
        elif head_name == "Callable":
            direct.add("<callable>")
        else:
            direct.add(head_name)
    elif isinstance(node, ast.BinOp):  # X | None unions
        for side in (node.left, node.right):
            sub_direct, sub_elems = _annotation_names(side)
            direct |= sub_direct
            elems |= sub_elems
    direct.discard("None")
    return direct, elems


def _module_name(path: Path) -> str:
    parts = list(path.parts)
    if "src" in parts:
        rel = parts[parts.index("src") + 1:]
        modname = ".".join(rel)[:-3]  # strip .py
        if modname.endswith(".__init__"):
            modname = modname[: -len(".__init__")]
        return modname
    return path.stem


class Program:
    """Index of every analyzed module, class and function."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.classes_by_name: Dict[str, List[ClassInfo]] = {}
        self._subclasses: Dict[str, Set[str]] = {}

    # -- construction --------------------------------------------------

    @classmethod
    def load(cls, paths: List[Path]) -> "Program":
        program = cls()
        for path in sorted(paths):
            source = path.read_text()
            tree = ast.parse(source, filename=str(path))
            program._index_module(path, tree)
        program._link()
        return program

    def _index_module(self, path: Path, tree: ast.Module) -> None:
        modname = _module_name(path)
        mod = ModuleInfo(path=path, modname=modname, tree=tree)
        self.modules[modname] = mod
        for node in tree.body:
            if isinstance(node, ast.ClassDef):
                self._index_class(mod, node)
            elif isinstance(node, (ast.FunctionDef,
                                   ast.AsyncFunctionDef)):
                mod.functions[node.name] = FuncInfo(
                    modname, None, node.name, node)
            elif isinstance(node, ast.Assign):
                reentrant = is_lock_creation(node.value)
                if reentrant is None:
                    continue
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        lock_name = lock_creation_name(node.value)
                        mod.module_locks[target.id] = LockDecl(
                            name=lock_name or "%s.%s" % (
                                modname.rsplit(".", 1)[-1], target.id),
                            reentrant=reentrant,
                            anonymous=lock_name is None,
                            module=modname, cls=None,
                            attr=target.id, line=node.lineno)

    def _index_class(self, mod: ModuleInfo, node: ast.ClassDef) -> None:
        info = ClassInfo(module=mod.modname, name=node.name)
        for base in node.bases:
            if isinstance(base, ast.Name):
                info.bases.append(base.id)
            elif isinstance(base, ast.Attribute):
                info.bases.append(base.attr)
        for item in node.body:
            if isinstance(item, (ast.FunctionDef,
                                 ast.AsyncFunctionDef)):
                info.methods[item.name] = FuncInfo(
                    mod.modname, node.name, item.name, item)
            elif isinstance(item, ast.AnnAssign) \
                    and isinstance(item.target, ast.Name):
                direct, elems = _annotation_names(item.annotation)
                if direct:
                    info.attr_types.setdefault(
                        item.target.id, set()).update(direct)
                if elems:
                    info.elem_types.setdefault(
                        item.target.id, set()).update(elems)
        # attribute types + lock declarations from method bodies
        for method in info.methods.values():
            self._harvest_method(mod, info, method)
        mod.classes[node.name] = info

    def _harvest_method(self, mod: ModuleInfo, info: ClassInfo,
                        method: FuncInfo) -> None:
        params = _param_types(method.node)
        for node in ast.walk(method.node):  # type: ignore[arg-type]
            if isinstance(node, ast.AnnAssign):
                attr = _self_attr_of(node.target)
                if attr:
                    direct, elems = _annotation_names(node.annotation)
                    if direct:
                        info.attr_types.setdefault(
                            attr, set()).update(direct)
                    if elems:
                        info.elem_types.setdefault(
                            attr, set()).update(elems)
                continue
            if not isinstance(node, ast.Assign):
                continue
            reentrant = is_lock_creation(node.value)
            for target in node.targets:
                attr = _self_attr_of(target)
                if attr is None:
                    continue
                if reentrant is not None:
                    lock_name = lock_creation_name(node.value)
                    info.lock_attrs[attr] = LockDecl(
                        name=lock_name or "%s.%s.%s" % (
                            mod.modname.rsplit(".", 1)[-1],
                            info.name, attr),
                        reentrant=reentrant,
                        anonymous=lock_name is None,
                        module=mod.modname, cls=info.name,
                        attr=attr, line=node.lineno)
                else:
                    for typ in _rhs_types(node.value, params, info):
                        info.attr_types.setdefault(
                            attr, set()).add(typ)

    def _link(self) -> None:
        for mod in self.modules.values():
            for cls in mod.classes.values():
                self.classes_by_name.setdefault(
                    cls.name, []).append(cls)
        for mod in self.modules.values():
            for cls in mod.classes.values():
                for base in cls.bases:
                    self._subclasses.setdefault(
                        base, set()).add(cls.name)

    # -- queries -------------------------------------------------------

    def subclasses(self, name: str) -> Set[str]:
        """Transitive subclass names of *name* (excluding itself)."""
        seen: Set[str] = set()
        frontier = [name]
        while frontier:
            current = frontier.pop()
            for sub in self._subclasses.get(current, ()):
                if sub not in seen:
                    seen.add(sub)
                    frontier.append(sub)
        return seen

    def ancestors(self, cls: ClassInfo) -> List[ClassInfo]:
        """Base-class chain (best effort, by name)."""
        out: List[ClassInfo] = []
        seen = {cls.name}
        frontier = list(cls.bases)
        while frontier:
            base = frontier.pop()
            if base in seen:
                continue
            seen.add(base)
            for info in self.classes_by_name.get(base, []):
                out.append(info)
                frontier.extend(info.bases)
        return out

    def lock_for_attr(self, cls: ClassInfo,
                      attr: str) -> Optional[LockDecl]:
        """Lock declared as ``self.<attr>`` in *cls* or an ancestor."""
        if attr in cls.lock_attrs:
            return cls.lock_attrs[attr]
        for ancestor in self.ancestors(cls):
            if attr in ancestor.lock_attrs:
                return ancestor.lock_attrs[attr]
        return None

    def attr_types(self, cls: ClassInfo, attr: str,
                   _seen: Optional[Set[Tuple[str, str, str]]] = None
                   ) -> Set[str]:
        if _seen is None:
            _seen = set()
        key = (cls.module, cls.name, attr)
        if key in _seen:
            return set()
        _seen.add(key)
        raw = set(cls.attr_types.get(attr, ()))
        for ancestor in self.ancestors(cls):
            raw |= ancestor.attr_types.get(attr, set())
        types: Set[str] = set()
        for entry in raw:
            if entry.startswith("@chain:"):
                # deferred ``self.<a>.<b>`` RHS: resolve a's type
                # first, then b on it (cross-class, so only possible
                # after the whole program is loaded)
                head, _, tail = entry[len("@chain:"):].partition(".")
                for mid in self.attr_types(cls, head, _seen):
                    for owner in self.classes_by_name.get(mid, []):
                        types |= self.attr_types(owner, tail, _seen)
            else:
                types.add(entry)
        if not types:
            hint = _hint_for(attr)
            if hint:
                types.add(hint)
        return types

    def elem_types(self, cls: ClassInfo, attr: str) -> Set[str]:
        types = set(cls.elem_types.get(attr, ()))
        for ancestor in self.ancestors(cls):
            types |= ancestor.elem_types.get(attr, set())
        return types

    def resolve_method(self, type_names: Set[str],
                       method: str) -> List[FuncInfo]:
        """Implementations of ``<T>.method`` for every nominal type in
        *type_names*, including subclass overrides and inherited
        definitions."""
        out: List[FuncInfo] = []
        seen: Set[str] = set()
        names: Set[str] = set()
        for type_name in type_names:
            names.add(type_name)
            names |= self.subclasses(type_name)
        for name in names:
            for cls in self.classes_by_name.get(name, []):
                target = cls.methods.get(method)
                if target is None:
                    for ancestor in self.ancestors(cls):
                        if method in ancestor.methods:
                            target = ancestor.methods[method]
                            break
                if target is not None and target.qname not in seen:
                    seen.add(target.qname)
                    out.append(target)
        return out

    def class_locks(self, cls: ClassInfo) -> Set[str]:
        """All lock names declared by *cls* (or ancestors)."""
        names = {d.name for d in cls.lock_attrs.values()}
        for ancestor in self.ancestors(cls):
            names |= {d.name for d in ancestor.lock_attrs.values()}
        return names


def _self_attr_of(node: ast.AST) -> Optional[str]:
    if (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"):
        return node.attr
    return None


def _hint_for(name: str) -> Optional[str]:
    stripped = name.lstrip("_")
    for hint, type_name in NAME_HINTS.items():
        if stripped == hint or stripped.endswith("_" + hint) \
                or stripped.endswith(hint):
            return type_name
    return None


def _param_types(func: ast.AST) -> Dict[str, Set[str]]:
    """Parameter name -> annotated type names (plus name hints)."""
    env: Dict[str, Set[str]] = {}
    args = getattr(func, "args", None)
    if args is None:
        return env
    all_args = (list(args.posonlyargs) + list(args.args)
                + list(args.kwonlyargs))
    for arg in all_args:
        direct, _elems = _annotation_names(arg.annotation)
        if direct:
            env[arg.arg] = direct
        else:
            hint = _hint_for(arg.arg)
            if hint:
                env[arg.arg] = {hint}
    return env


def _rhs_types(value: ast.expr, params: Dict[str, Set[str]],
               cls: ClassInfo) -> Set[str]:
    """Nominal types of a right-hand side, for attribute inference.

    Handles ``ClassName(...)``, annotated parameters, ``a or b``
    fallbacks and conditional expressions.
    """
    out: Set[str] = set()
    if isinstance(value, ast.Call):
        func = value.func
        if isinstance(func, ast.Name):
            # ``cls(...)`` in a classmethod builds the enclosing class
            out.add(cls.name if func.id == "cls" else func.id)
        elif isinstance(func, ast.Attribute) \
                and func.attr[:1].isupper():
            out.add(func.attr)
    elif isinstance(value, ast.Attribute):
        inner = value.value
        if isinstance(inner, ast.Attribute) \
                and isinstance(inner.value, ast.Name) \
                and inner.value.id == "self":
            # ``self.a.b``: record a deferred chain, resolved by
            # Program.attr_types once every class is indexed
            out.add("@chain:%s.%s" % (inner.attr, value.attr))
    elif isinstance(value, ast.Name):
        out |= params.get(value.id, set())
        if not out:
            hint = _hint_for(value.id)
            if hint:
                out.add(hint)
    elif isinstance(value, ast.BoolOp):
        for operand in value.values:
            out |= _rhs_types(operand, params, cls)
    elif isinstance(value, ast.IfExp):
        out |= _rhs_types(value.body, params, cls)
        out |= _rhs_types(value.orelse, params, cls)
    return {t for t in out if t[:1].isupper() or t == "<callable>"
            or t.startswith("@chain:")}
