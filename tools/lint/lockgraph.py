"""Interprocedural lock-order analysis (L002, L010, L011, L012).

Builds the whole-repo lock-order graph: nodes are named locks (see
``repro.runtime.locks``), and an edge A -> B means some call path can
acquire B while A is held.  Edges come from two shapes:

* lexical nesting -- ``with a: ... with b:`` in one function, and
* call propagation -- ``with a: self.method()`` where ``method``
  (transitively, through resolved ``self.``/module/virtual calls)
  acquires B.

Function summaries (locks acquired, blocking operations reached,
foreign callbacks invoked) are computed to a fixpoint over the call
graph, then every call site made under a held lock contributes edges
and findings:

L010  lock-order-cycle
    The name graph has a cycle: two call paths acquire the same locks
    in opposite orders -- a deadlock waiting for the right
    interleaving.

L011  blocking-call-under-lock
    A blocking operation (socket send/recv/accept/connect,
    ``wrapper.fill``, ``future.result``, ``queue.get``,
    ``time.sleep``, ``event.wait``, ``thread.join``) is reachable
    while a lock is held.  Deliberate sites carry a justified
    ``# lint: allow=L011``; the runtime sanitizer's
    ``BLOCKING_HOLD_ALLOWED`` mirrors exactly those locks.

L012  callback-under-lock
    A foreign callable (callback parameter, subscriber, factory) or a
    tracer emit/span -- which fans out to arbitrary subscribers -- is
    reachable while a lock is held.  Foreign code under your lock can
    re-enter you in any order.

L002  interprocedural-lock-consistency
    A ``*_locked``-suffix helper is called at a site where none of its
    class's locks are held (callers that are themselves ``*_locked``
    helpers are trusted, as are constructors).  This closes L001's
    blind spot: L001 *exempts* ``*_locked`` helpers, so a caller that
    forgot the lock was previously invisible.

Self-edges (A while A) are skipped: re-entrant locks re-enter by
design, and distinct instances sharing a name (stacked buffers) have
no static order; instance-level self-deadlock on a plain lock is the
runtime sanitizer's job.

The graph is dumped as JSON + DOT via
``python -m tools.lint --lock-graph lockgraph.json``, and
``--assert-contains observed.jsonl`` checks sanitizer-observed edges
for containment (the dynamic-subset-of-static agreement gate).
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import (Any, Dict, Iterable, List, Optional, Sequence,
                    Set, Tuple)

from .findings import Finding
from .rules import is_lock_creation, lock_creation_name
from .symbols import (ClassInfo, FuncInfo, LockDecl, ModuleInfo,
                      Program, _hint_for)

#: Method names that block on the network whatever the receiver is.
_SOCKET_METHODS = frozenset({"accept", "recv", "recv_into", "sendall",
                             "connect"})
#: ``.send(...)`` only counts with a socket-shaped receiver name.
_SOCKET_RECV_HINTS = ("sock", "conn", "listener", "peer", "client")
#: ``.wait()`` / ``.join()`` / ``.get()`` receivers that block.
_WAIT_HINTS = ("event", "waiter", "cond", "done", "stop")
_JOIN_HINTS = ("thread", "worker")
_QUEUE_HINTS = ("queue", "jobs", "inbox")
#: Demand-fill entry points: blocking by contract (source round trip).
_FILL_METHODS = frozenset({"fill", "fill_batch"})
#: The polymorphic wrapper/document protocol surface: calls to these
#: through a seam-typed or seam-named receiver fan out to every
#: implementation (duck-typed proxies do not inherit the base).
_SEAM_METHODS = frozenset({"fill", "fill_batch", "get_root", "down",
                           "right", "fetch", "select", "push",
                           "v_down", "v_right", "v_fetch", "v_select"})
_FILL_RECV_HINTS = ("server", "wrapper", "channel", "inner", "source",
                    "upstream", "document")

#: Parameter/local names conventionally holding foreign callables.
_CALLBACK_NAMES = frozenset({
    "observer", "callback", "cb", "hook", "factory", "subscriber",
    "fn", "func", "on_evict", "on_event", "thunk",
})

#: Modules whose locks are sanitizer/infra plumbing, not part of the
#: analyzed order (the guards must not observe themselves).
_EXCLUDED_MODULES = ("repro.runtime.locks", "repro.testing.lockcheck")


@dataclass
class _Summary:
    func: FuncInfo
    acquires: Set[str] = field(default_factory=set)
    callees: Set[str] = field(default_factory=set)
    blocking: Set[str] = field(default_factory=set)  # op descriptions
    invokes_callback: bool = False
    #: (callee qnames, held names, line) -- resolved after fixpoint
    held_calls: List[Tuple[Tuple[str, ...], Tuple[str, ...], int]] = \
        field(default_factory=list)


@dataclass
class Edge:
    src: str
    dst: str
    path: str
    line: int
    via: str


class LockGraph:
    """Result of the whole-program analysis."""

    def __init__(self) -> None:
        self.locks: Dict[str, LockDecl] = {}
        self.edges: Dict[Tuple[str, str], Edge] = {}
        self.findings: List[Finding] = []
        self.unresolved: List[str] = []

    def edge_pairs(self) -> Set[Tuple[str, str]]:
        return set(self.edges)

    def add_edge(self, src: str, dst: str, path: Path, line: int,
                 via: str) -> None:
        if src == dst:
            return  # see module docstring: no static self-edges
        key = (src, dst)
        if key not in self.edges:
            self.edges[key] = Edge(src, dst, str(path), line, via)

    # -- dumps ---------------------------------------------------------

    def to_json(self) -> Dict[str, Any]:
        nodes = []
        for name in sorted(self.locks):
            decl = self.locks[name]
            nodes.append({
                "name": name,
                "reentrant": decl.reentrant,
                "anonymous": decl.anonymous,
                "module": decl.module,
                "attr": decl.attr,
            })
        edges = []
        for src, dst in sorted(self.edges):
            edge = self.edges[(src, dst)]
            edges.append({
                "src": src, "dst": dst, "path": edge.path,
                "line": edge.line, "via": edge.via,
            })
        return {"nodes": nodes, "edges": edges,
                "unresolved": sorted(self.unresolved)}

    def to_dot(self) -> str:
        lines = ["digraph lockorder {", "  rankdir=LR;",
                 "  node [shape=box, fontsize=10];"]
        for name in sorted(self.locks):
            decl = self.locks[name]
            shape = ' style="rounded"' if decl.reentrant else ""
            lines.append('  "%s"%s;' % (name, shape))
        for src, dst in sorted(self.edges):
            edge = self.edges[(src, dst)]
            lines.append('  "%s" -> "%s" [label="%s:%d"];'
                         % (src, dst,
                            Path(edge.path).name, edge.line))
        lines.append("}")
        return "\n".join(lines) + "\n"

    def cycles(self) -> List[List[str]]:
        """Strongly connected components with more than one lock."""
        graph: Dict[str, List[str]] = {}
        for src, dst in self.edges:
            graph.setdefault(src, []).append(dst)
            graph.setdefault(dst, [])
        index: Dict[str, int] = {}
        low: Dict[str, int] = {}
        on_stack: Set[str] = set()
        stack: List[str] = []
        counter = [0]
        sccs: List[List[str]] = []

        def strongconnect(node: str) -> None:
            # Iterative Tarjan (the graph is small, but recursion
            # limits are not a thing to gamble tooling on).
            work = [(node, 0)]
            while work:
                current, pointer = work[-1]
                if pointer == 0:
                    index[current] = low[current] = counter[0]
                    counter[0] += 1
                    stack.append(current)
                    on_stack.add(current)
                recurse = False
                succs = graph.get(current, [])
                for i in range(pointer, len(succs)):
                    succ = succs[i]
                    if succ not in index:
                        work[-1] = (current, i + 1)
                        work.append((succ, 0))
                        recurse = True
                        break
                    if succ in on_stack:
                        low[current] = min(low[current], index[succ])
                if recurse:
                    continue
                if low[current] == index[current]:
                    scc = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        scc.append(member)
                        if member == current:
                            break
                    if len(scc) > 1:
                        sccs.append(sorted(scc))
                work.pop()
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[current])

        for node in sorted(graph):
            if node not in index:
                strongconnect(node)
        return sccs


class _Env:
    """Flow-insensitive local type environment for one function."""

    def __init__(self) -> None:
        self.types: Dict[str, Set[str]] = {}
        self.elems: Dict[str, Set[str]] = {}
        self.locks: Dict[str, LockDecl] = {}
        self.callables: Set[str] = set()


class _FunctionScanner(ast.NodeVisitor):
    """Collects acquisitions, calls, blocking ops and callbacks for
    one function, tracking the lexically held lock set."""

    def __init__(self, analyzer: "Analyzer", func: FuncInfo,
                 cls: Optional[ClassInfo], env: _Env,
                 summary: _Summary, path: Path) -> None:
        self.analyzer = analyzer
        self.func = func
        self.cls = cls
        self.env = env
        self.summary = summary
        self.path = path

    # -- entry ---------------------------------------------------------

    def scan(self) -> None:
        body = getattr(self.func.node, "body", [])
        self._scan_block(body, ())

    # -- statement walking with a held set -----------------------------

    def _scan_block(self, stmts: Sequence[ast.stmt],
                    held: Tuple[str, ...]) -> None:
        extra: List[str] = []
        for stmt in stmts:
            current = held + tuple(extra)
            released = self._release_of(stmt)
            if released is not None and released in extra:
                extra.remove(released)
                continue
            acquired = self._acquire_of(stmt)
            if acquired is not None:
                lock_name, inner = acquired
                self._record_acquisition(lock_name, stmt.lineno,
                                         current)
                if isinstance(stmt, ast.If):
                    self._scan_exprs(stmt.test, current)
                    self._scan_block(stmt.body,
                                     current + (lock_name,))
                    self._scan_block(stmt.orelse, current)
                else:
                    extra.append(lock_name)
                    if inner is not None:
                        self._scan_exprs(inner, current)
                continue
            self._scan_stmt(stmt, current)

    def _scan_stmt(self, stmt: ast.stmt,
                   held: Tuple[str, ...]) -> None:
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            acquired: List[str] = []
            for item in stmt.items:
                lock_name = self._resolve_lock(item.context_expr)
                if lock_name is not None:
                    self._record_acquisition(
                        lock_name, item.context_expr.lineno,
                        held + tuple(acquired))
                    acquired.append(lock_name)
                else:
                    self._scan_exprs(item.context_expr,
                                     held + tuple(acquired))
            self._scan_block(stmt.body, held + tuple(acquired))
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # a nested def runs later, not here: scan with nothing
            # held (closures still see the enclosing env)
            self._scan_block(stmt.body, ())
        elif isinstance(stmt, ast.ClassDef):
            return
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._scan_exprs(stmt.iter, held)
            self._scan_block(stmt.body, held)
            self._scan_block(stmt.orelse, held)
        elif isinstance(stmt, ast.While):
            self._scan_exprs(stmt.test, held)
            self._scan_block(stmt.body, held)
            self._scan_block(stmt.orelse, held)
        elif isinstance(stmt, ast.If):
            self._scan_exprs(stmt.test, held)
            self._scan_block(stmt.body, held)
            self._scan_block(stmt.orelse, held)
        elif isinstance(stmt, ast.Try):
            self._scan_block(stmt.body, held)
            for handler in stmt.handlers:
                self._scan_block(handler.body, held)
            self._scan_block(stmt.orelse, held)
            self._scan_block(stmt.finalbody, held)
        else:
            for value in ast.iter_child_nodes(stmt):
                if isinstance(value, ast.expr):
                    self._scan_exprs(value, held)

    def _scan_exprs(self, node: ast.expr,
                    held: Tuple[str, ...]) -> None:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Lambda):
                continue
            if isinstance(sub, ast.Call):
                self._visit_call(sub, held)
            elif isinstance(sub, ast.Attribute) \
                    and isinstance(sub.ctx, ast.Load):
                self._visit_property(sub, held)

    def _visit_property(self, node: ast.Attribute,
                        held: Tuple[str, ...]) -> None:
        """An attribute *read* that resolves to a property getter is a
        call: ``ctx.fanout`` runs :meth:`ExecutionContext.fanout`,
        which takes the registry lock.  Resolved like a zero-argument
        method call and folded into the same callee summaries."""
        props = self.analyzer.properties_by_name.get(node.attr)
        if not props:
            return
        program = self.analyzer.program
        recv = node.value
        if isinstance(recv, ast.Name) and recv.id == "self" \
                and self.cls is not None:
            targets = program.resolve_method({self.cls.name},
                                             node.attr)
        else:
            types = self._types_of(recv)
            targets = program.resolve_method(types, node.attr) \
                if types else []
        prop_qnames = {p.qname for p in props}
        targets = [t for t in targets if t.qname in prop_qnames]
        if not targets and len(props) == 1:
            # a property name defined exactly once program-wide
            # resolves even without receiver types
            targets = list(props)
        if targets:
            qnames = tuple(sorted(t.qname for t in targets))
            self.summary.callees.update(qnames)
            if held:
                self.summary.held_calls.append(
                    (qnames, held, node.lineno))

    # -- acquire()/release() statement forms ---------------------------

    def _acquire_of(self, stmt: ast.stmt
                    ) -> Optional[Tuple[str, Optional[ast.expr]]]:
        """``x.acquire(...)`` as a statement, assignment RHS or if
        test: (lock name, extra expr to scan) -- models the
        try/finally acquire pattern."""
        call: Optional[ast.expr] = None
        if isinstance(stmt, ast.Expr):
            call = stmt.value
        elif isinstance(stmt, ast.Assign):
            call = stmt.value
        elif isinstance(stmt, ast.If):
            call = stmt.test
        if isinstance(call, ast.UnaryOp):
            call = call.operand
        if not (isinstance(call, ast.Call)
                and isinstance(call.func, ast.Attribute)
                and call.func.attr == "acquire"):
            return None
        lock_name = self._resolve_lock(call.func.value)
        if lock_name is None:
            return None
        return lock_name, None

    def _release_of(self, stmt: ast.stmt) -> Optional[str]:
        if not (isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Call)
                and isinstance(stmt.value.func, ast.Attribute)
                and stmt.value.func.attr == "release"):
            return None
        return self._resolve_lock(stmt.value.func.value)

    # -- resolution ----------------------------------------------------

    def _resolve_lock(self, expr: ast.expr) -> Optional[str]:
        decl = self._resolve_lock_decl(expr)
        if decl is not None:
            return decl.name
        # A lock-shaped expression we could not resolve is a coverage
        # hole worth surfacing, not silently dropping.
        if isinstance(expr, ast.Attribute) and "lock" in expr.attr:
            self.analyzer.graph.unresolved.append(
                "%s:%d: unresolved lock expression %s in %s"
                % (self.path, expr.lineno, ast.dump(expr)[:80],
                   self.func.qname))
        return None

    def _resolve_lock_decl(self, expr: ast.expr
                           ) -> Optional[LockDecl]:
        program = self.analyzer.program
        if isinstance(expr, ast.Name):
            if expr.id in self.env.locks:
                return self.env.locks[expr.id]
            module = program.modules.get(self.func.module)
            if module and expr.id in module.module_locks:
                return module.module_locks[expr.id]
            return None
        if not isinstance(expr, ast.Attribute):
            return None
        recv = expr.value
        if isinstance(recv, ast.Name) and recv.id == "self":
            if self.cls is None:
                return None
            return program.lock_for_attr(self.cls, expr.attr)
        for type_name in self._types_of(recv):
            for cls in program.classes_by_name.get(type_name, []):
                decl = program.lock_for_attr(cls, expr.attr)
                if decl is not None:
                    return decl
        return None

    def _types_of(self, expr: ast.expr) -> Set[str]:
        program = self.analyzer.program
        if isinstance(expr, ast.Name):
            if expr.id in self.env.types:
                return self.env.types[expr.id]
            hint = _hint_for(expr.id)
            return {hint} if hint else set()
        if isinstance(expr, ast.Attribute):
            recv = expr.value
            if isinstance(recv, ast.Name) and recv.id == "self":
                if self.cls is None:
                    return set()
                return program.attr_types(self.cls, expr.attr)
            # one more hop: x.attr with x typed
            for type_name in self._types_of(recv):
                for cls in program.classes_by_name.get(type_name, []):
                    types = program.attr_types(cls, expr.attr)
                    if types:
                        return types
            hint = _hint_for(expr.attr)
            return {hint} if hint else set()
        if isinstance(expr, ast.Subscript):
            inner = expr.value
            if isinstance(inner, ast.Attribute) \
                    and isinstance(inner.value, ast.Name) \
                    and inner.value.id == "self" and self.cls:
                return program.elem_types(self.cls, inner.attr)
            if isinstance(inner, ast.Name):
                return self.env.elems.get(inner.id, set())
        if isinstance(expr, ast.Call):
            func = expr.func
            if isinstance(func, ast.Name):
                if func.id == "cls" and self.cls is not None:
                    return {self.cls.name}
                if func.id in program.classes_by_name:
                    return {func.id}
            if isinstance(func, ast.Attribute):
                return self._return_types(func)
        return set()

    def _return_types(self, func: ast.Attribute) -> Set[str]:
        """Types named by the return annotation of a resolved call."""
        program = self.analyzer.program
        recv = func.value
        if isinstance(recv, ast.Name) and recv.id == "self" \
                and self.cls is not None:
            targets = program.resolve_method({self.cls.name},
                                             func.attr)
        else:
            targets = program.resolve_method(self._types_of(recv),
                                             func.attr)
        out: Set[str] = set()
        for target in targets:
            returns = getattr(target.node, "returns", None)
            if returns is not None:
                from .symbols import _annotation_names
                direct, _ = _annotation_names(returns)
                out |= direct
        return out

    def _resolve_call(self, call: ast.Call) -> List[FuncInfo]:
        program = self.analyzer.program
        func = call.func
        if isinstance(func, ast.Name):
            module = program.modules.get(self.func.module)
            if module and func.id in module.functions:
                return [module.functions[func.id]]
            if func.id in program.classes_by_name:
                out = []
                for cls in program.classes_by_name[func.id]:
                    init = cls.methods.get("__init__") \
                        or cls.methods.get("__post_init__")
                    if init:
                        out.append(init)
                return out
            # unique module-level function anywhere in the program
            matches = self.analyzer.functions_by_name.get(func.id, [])
            if len(matches) == 1:
                return list(matches)
            return []
        if not isinstance(func, ast.Attribute):
            return []
        recv = func.value
        if isinstance(recv, ast.Name) and recv.id == "self" \
                and self.cls is not None:
            return program.resolve_method({self.cls.name}, func.attr)
        if isinstance(recv, ast.Call) \
                and isinstance(recv.func, ast.Name) \
                and recv.func.id == "super" and self.cls is not None:
            return program.resolve_method(set(self.cls.bases),
                                          func.attr)
        types = self._types_of(recv)
        resolved = program.resolve_method(types, func.attr) \
            if types else []
        # Polymorphic seam: the LXP/document protocol methods are
        # implemented by duck-typed proxies (resilience, fault
        # injection) that do not inherit the declared base, so
        # hierarchy resolution under-approximates.  When the receiver
        # is seam-typed (LXPServer/NavigableDocument families) or
        # seam-named (``self.server``, ``self.inner``, ...), fan out
        # to every implementation -- this is what keeps dynamically
        # observed edges a subset of the static graph.
        if func.attr in _SEAM_METHODS:
            recv_name = ""
            if isinstance(recv, ast.Name):
                recv_name = recv.id
            elif isinstance(recv, ast.Attribute):
                recv_name = recv.attr
            recv_name = recv_name.lstrip("_").lower()
            seamy = (types & self.analyzer.fill_types) or (
                not types and any(h in recv_name
                                  for h in _FILL_RECV_HINTS))
            if seamy:
                matches = self.analyzer.methods_by_name.get(
                    func.attr, [])
                seen = {t.qname for t in resolved}
                resolved = list(resolved) + [
                    m for m in matches if m.qname not in seen]
        if resolved:
            return resolved
        if types and not any(t in program.classes_by_name
                             for t in types):
            # receiver typed entirely with foreign classes (stdlib
            # ThreadPoolExecutor, socket, ...): a same-named method of
            # ours is a coincidence, not a dispatch target
            return []
        # fallback: a method name implemented by exactly one class
        matches = self.analyzer.methods_by_name.get(func.attr, [])
        if len(matches) == 1:
            return list(matches)
        return []

    # -- recording -----------------------------------------------------

    def _record_acquisition(self, name: str, line: int,
                            held: Tuple[str, ...]) -> None:
        self.summary.acquires.add(name)
        for prior in held:
            self.analyzer.graph.add_edge(
                prior, name, self.path, line,
                "%s acquires %s under %s" % (self.func.qname, name,
                                             prior))

    def _visit_call(self, call: ast.Call,
                    held: Tuple[str, ...]) -> None:
        func = call.func
        # direct blocking operation?
        blocked = self._blocking_kind(call)
        if blocked is not None:
            self.summary.blocking.add(blocked)
            if held:
                self.analyzer.report(
                    self.path, call.lineno, "L011",
                    "%s under lock(s) %s in %s"
                    % (blocked, "+".join(held), self.func.qname))
        # direct foreign-callable invocation?
        if isinstance(func, ast.Name) \
                and func.id in self.env.callables:
            self.summary.invokes_callback = True
            if held:
                self.analyzer.report(
                    self.path, call.lineno, "L012",
                    "foreign callable %s() invoked under lock(s) %s "
                    "in %s" % (func.id, "+".join(held),
                               self.func.qname))
        # L002: *_locked helpers need their class lock held
        if isinstance(func, ast.Attribute) \
                and func.attr.endswith("_locked"):
            self._check_locked_convention(call, func, held)
        targets = self._resolve_call(call)
        if targets:
            qnames = tuple(sorted(t.qname for t in targets))
            self.summary.callees.update(qnames)
            if held:
                self.summary.held_calls.append(
                    (qnames, held, call.lineno))

    def _check_locked_convention(self, call: ast.Call,
                                 func: ast.Attribute,
                                 held: Tuple[str, ...]) -> None:
        caller_name = self.func.name
        if caller_name.endswith("_locked") \
                or caller_name in ("__init__", "__post_init__",
                                   "__del__"):
            return
        program = self.analyzer.program
        recv = func.value
        owners: List[ClassInfo] = []
        if isinstance(recv, ast.Name) and recv.id == "self" \
                and self.cls is not None:
            owners = [self.cls]
        else:
            for type_name in self._types_of(recv):
                owners.extend(
                    program.classes_by_name.get(type_name, []))
        if not owners:
            return
        required: Set[str] = set()
        for owner in owners:
            required |= program.class_locks(owner)
        if not required:
            return
        if not required & set(held):
            self.analyzer.report(
                self.path, call.lineno, "L002",
                "%s() called in %s without holding %s (the _locked "
                "suffix promises the caller already holds the lock)"
                % (func.attr, self.func.qname,
                   " or ".join(sorted(required))))

    def _blocking_kind(self, call: ast.Call) -> Optional[str]:
        func = call.func
        if not isinstance(func, ast.Attribute):
            return None
        attr = func.attr
        recv = func.value
        recv_name = ""
        if isinstance(recv, ast.Name):
            recv_name = recv.id
        elif isinstance(recv, ast.Attribute):
            recv_name = recv.attr
        recv_name = recv_name.lstrip("_").lower()
        if attr == "sleep" and isinstance(recv, ast.Name) \
                and recv.id == "time":
            return "time.sleep"
        if attr in _SOCKET_METHODS:
            return "socket.%s" % attr
        if attr == "send" and any(h in recv_name
                                  for h in _SOCKET_RECV_HINTS):
            return "socket.send"
        if attr == "result":
            return "future.result"
        if attr == "get" and any(h in recv_name
                                 for h in _QUEUE_HINTS):
            return "queue.get"
        if attr == "wait" and any(h in recv_name
                                  for h in _WAIT_HINTS):
            return "event.wait"
        if attr == "join" and any(h in recv_name
                                  for h in _JOIN_HINTS):
            return "thread.join"
        if attr in _FILL_METHODS:
            types = self._types_of(recv)
            fillers = self.analyzer.fill_types
            if (types & fillers) or (not types and any(
                    h in recv_name for h in _FILL_RECV_HINTS)):
                return "wrapper.%s" % attr
        return None


def _is_property_getter(method: FuncInfo) -> bool:
    """Whether ``method`` is decorated ``@property`` (or
    ``@cached_property``) -- setters/deleters are assignments, not
    reads, and are excluded."""
    for deco in getattr(method.node, "decorator_list", []):
        if isinstance(deco, ast.Name) \
                and deco.id in ("property", "cached_property"):
            return True
        if isinstance(deco, ast.Attribute) \
                and deco.attr == "cached_property":
            return True
    return False


class Analyzer:
    """Whole-program driver: summaries to fixpoint, then edges and
    findings."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self.graph = LockGraph()
        self.summaries: Dict[str, _Summary] = {}
        self.functions_by_name: Dict[str, List[FuncInfo]] = {}
        self.methods_by_name: Dict[str, List[FuncInfo]] = {}
        self.properties_by_name: Dict[str, List[FuncInfo]] = {}
        self.fill_types: Set[str] = set()
        self._index()

    def _index(self) -> None:
        for mod in self.program.modules.values():
            for func in mod.functions.values():
                self.functions_by_name.setdefault(
                    func.name, []).append(func)
            for cls in mod.classes.values():
                for method in cls.methods.values():
                    self.methods_by_name.setdefault(
                        method.name, []).append(method)
        # every type in the LXPServer hierarchy is a fill target; the
        # lazy-operator family joins it because demand fills cross
        # into plan operators (VirtualDocument.down -> op.v_down)
        for root in ("LXPServer", "NavigableDocument", "LazyOperator"):
            if root in self.program.classes_by_name:
                self.fill_types.add(root)
                self.fill_types |= self.program.subclasses(root)
        # property getters: attribute *reads* that run code (and may
        # take locks), resolved like zero-argument calls
        for methods in self.methods_by_name.values():
            for method in methods:
                if _is_property_getter(method):
                    self.properties_by_name.setdefault(
                        method.name, []).append(method)

    def report(self, path: Path, line: int, code: str,
               message: str) -> None:
        self.graph.findings.append(Finding(path, line, code, message))

    # -- analysis ------------------------------------------------------

    def run(self) -> LockGraph:
        for mod in self.program.modules.values():
            if mod.modname in _EXCLUDED_MODULES:
                continue
            for decl in mod.module_locks.values():
                self.graph.locks.setdefault(decl.name, decl)
            for cls in mod.classes.values():
                for decl in cls.lock_attrs.values():
                    self.graph.locks.setdefault(decl.name, decl)
            for func in self._all_funcs(mod):
                self._scan_function(mod, func)
        self._fixpoint()
        self._propagate()
        self._find_cycles()
        return self.graph

    def _all_funcs(self, mod: ModuleInfo) -> Iterable[FuncInfo]:
        for func in mod.functions.values():
            yield func
        for cls in mod.classes.values():
            for method in cls.methods.values():
                yield method

    def _scan_function(self, mod: ModuleInfo,
                       func: FuncInfo) -> None:
        cls = mod.classes.get(func.cls) if func.cls else None
        env = self._build_env(mod, cls, func)
        if mod.modname not in _EXCLUDED_MODULES:
            # locks born as locals (e.g. the load generator's cursor
            # lock) are nodes of the graph too
            for decl in env.locks.values():
                self.graph.locks.setdefault(decl.name, decl)
        summary = _Summary(func)
        self.summaries[func.qname] = summary
        scanner = _FunctionScanner(self, func, cls, env, summary,
                                   mod.path)
        scanner.scan()

    def _build_env(self, mod: ModuleInfo,
                   cls: Optional[ClassInfo],
                   func: FuncInfo) -> _Env:
        from .symbols import _annotation_names, _param_types
        env = _Env()
        env.types.update(_param_types(func.node))
        args = getattr(func.node, "args", None)
        if args is not None:
            for arg in (list(args.posonlyargs) + list(args.args)
                        + list(args.kwonlyargs)):
                direct, _ = _annotation_names(arg.annotation)
                if "<callable>" in direct \
                        or arg.arg in _CALLBACK_NAMES:
                    env.callables.add(arg.arg)
        nodes = list(ast.walk(func.node))  # type: ignore[arg-type]
        # two passes: ast.walk is breadth-first, so a ``for x in xs``
        # can be seen before the ``xs = ...`` assignment that types it
        for _ in range(2):
            for node in nodes:
                if isinstance(node, ast.Assign) \
                        and len(node.targets) == 1 \
                        and isinstance(node.targets[0], ast.Name):
                    name = node.targets[0].id
                    reentrant = is_lock_creation(node.value)
                    if reentrant is not None:
                        lock_name = lock_creation_name(node.value)
                        env.locks[name] = LockDecl(
                            name=lock_name or "%s.%s.%s" % (
                                mod.modname.rsplit(".", 1)[-1],
                                func.name, name),
                            reentrant=reentrant,
                            anonymous=lock_name is None,
                            module=mod.modname, cls=func.cls,
                            attr=name, line=node.lineno)
                        continue
                    if isinstance(node.value, ast.Name) \
                            and node.value.id in mod.module_locks:
                        env.locks[name] = \
                            mod.module_locks[node.value.id]
                        continue
                    types = self._static_expr_types(mod, cls, env,
                                                    node.value)
                    if types:
                        env.types.setdefault(name, set()).update(types)
                    elems = self._static_elem_types(mod, cls, env,
                                                    node.value)
                    if elems:
                        env.elems.setdefault(name, set()).update(elems)
                elif isinstance(node, (ast.For, ast.AsyncFor)) \
                        and isinstance(node.target, ast.Name):
                    name = node.target.id
                    elems = self._static_elem_types(mod, cls, env,
                                                    node.iter)
                    if elems:
                        env.types.setdefault(name, set()).update(elems)
                    if _iter_name_is_callbacky(node.iter) \
                            or name in _CALLBACK_NAMES:
                        env.callables.add(name)
        return env

    def _static_expr_types(self, mod: ModuleInfo,
                           cls: Optional[ClassInfo],
                           env: _Env, expr: ast.expr) -> Set[str]:
        program = self.program
        if isinstance(expr, ast.Call):
            func = expr.func
            if isinstance(func, ast.Name):
                if func.id == "cls" and cls is not None:
                    return {cls.name}
                if func.id in program.classes_by_name:
                    return {func.id}
            if isinstance(func, ast.Attribute) \
                    and isinstance(func.value, ast.Name) \
                    and func.value.id == "self" and cls is not None:
                from .symbols import _annotation_names
                out: Set[str] = set()
                for target in program.resolve_method({cls.name},
                                                     func.attr):
                    returns = getattr(target.node, "returns", None)
                    if returns is not None:
                        direct, _ = _annotation_names(returns)
                        out |= direct
                return out
        elif isinstance(expr, ast.Attribute) \
                and isinstance(expr.value, ast.Name) \
                and expr.value.id == "self" and cls is not None:
            return program.attr_types(cls, expr.attr)
        elif isinstance(expr, ast.Name):
            return env.types.get(expr.id, set())
        elif isinstance(expr, ast.BoolOp):
            out = set()
            for operand in expr.values:
                out |= self._static_expr_types(mod, cls, env, operand)
            return out
        return set()

    def _static_elem_types(self, mod: ModuleInfo,
                           cls: Optional[ClassInfo],
                           env: _Env, expr: ast.expr) -> Set[str]:
        """Element types of an iterable expression."""
        program = self.program
        if isinstance(expr, ast.Attribute) \
                and isinstance(expr.value, ast.Name) \
                and expr.value.id == "self" and cls is not None:
            return program.elem_types(cls, expr.attr)
        if isinstance(expr, ast.Name):
            return env.elems.get(expr.id, set())
        if isinstance(expr, ast.Call):
            func = expr.func
            # list(x) / sorted(x) / tuple(x) are transparent
            if isinstance(func, ast.Name) \
                    and func.id in ("list", "sorted", "tuple") \
                    and expr.args:
                return self._static_elem_types(mod, cls, env,
                                               expr.args[0])
            # self._handlers.values() -> Dict value types
            if isinstance(func, ast.Attribute) \
                    and func.attr == "values":
                return self._static_elem_types(mod, cls, env,
                                               func.value)
        return set()

    # -- fixpoint + propagation ----------------------------------------

    def _fixpoint(self) -> None:
        changed = True
        while changed:
            changed = False
            for summary in self.summaries.values():
                for callee in summary.callees:
                    sub = self.summaries.get(callee)
                    if sub is None:
                        continue
                    before = (len(summary.acquires),
                              len(summary.blocking),
                              summary.invokes_callback)
                    summary.acquires |= sub.acquires
                    summary.blocking |= sub.blocking
                    summary.invokes_callback |= sub.invokes_callback
                    after = (len(summary.acquires),
                             len(summary.blocking),
                             summary.invokes_callback)
                    if before != after:
                        changed = True

    def _propagate(self) -> None:
        for summary in self.summaries.values():
            mod = self.program.modules.get(summary.func.module)
            path = mod.path if mod else Path("<unknown>")
            for qnames, held, line in summary.held_calls:
                reached: Set[str] = set()
                blocked: Set[str] = set()
                callbacks = False
                for qname in qnames:
                    sub = self.summaries.get(qname)
                    if sub is None:
                        continue
                    reached |= sub.acquires
                    blocked |= sub.blocking
                    callbacks |= sub.invokes_callback
                for prior in held:
                    for name in reached:
                        self.graph.add_edge(
                            prior, name, path, line,
                            "%s -> %s acquires %s under %s"
                            % (summary.func.qname,
                               "|".join(qnames[:2]), name, prior))
                if blocked:
                    self.report(
                        path, line, "L011",
                        "call from %s under lock(s) %s reaches "
                        "blocking op %s"
                        % (summary.func.qname, "+".join(held),
                           sorted(blocked)[0]))
                if callbacks:
                    self.report(
                        path, line, "L012",
                        "call from %s under lock(s) %s reaches a "
                        "foreign callback/tracer subscriber"
                        % (summary.func.qname, "+".join(held)))

    def _find_cycles(self) -> None:
        for cycle in self.graph.cycles():
            # anchor the finding at the first edge inside the cycle
            members = set(cycle)
            anchor = None
            for (src, dst), edge in sorted(self.graph.edges.items()):
                if src in members and dst in members:
                    anchor = edge
                    break
            if anchor is None:
                continue
            self.report(
                Path(anchor.path), anchor.line, "L010",
                "lock-order cycle %s (deadlock potential; first "
                "edge via %s)" % (" -> ".join(cycle + cycle[:1]),
                                  anchor.via))


def _iter_name_is_callbacky(expr: ast.expr) -> bool:
    name = ""
    if isinstance(expr, ast.Name):
        name = expr.id
    elif isinstance(expr, ast.Attribute):
        name = expr.attr
    elif isinstance(expr, ast.Call):
        return _iter_name_is_callbacky(expr.func.value) \
            if isinstance(expr.func, ast.Attribute) else False
    name = name.lstrip("_").lower()
    return bool(name) and any(
        name.startswith(stem) for stem in
        ("callback", "subscriber", "observer", "hook", "listener"))


def analyze(paths: List[Path]) -> LockGraph:
    """Run the whole-program lock analysis over *paths* (directories
    expand to every ``*.py`` file beneath them)."""
    files: List[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    program = Program.load(files)
    analyzer = Analyzer(program)
    return analyzer.run()


def assert_contains(graph_json: Dict[str, Any],
                    observed_lines: Iterable[str]) -> List[str]:
    """Check sanitizer-observed edges for containment in the static
    graph.  Returns human-readable misses (empty = agreement holds)."""
    static_edges = {(e["src"], e["dst"])
                    for e in graph_json.get("edges", [])}
    known = {n["name"] for n in graph_json.get("nodes", [])}
    misses = []
    for raw in observed_lines:
        raw = raw.strip()
        if not raw:
            continue
        record = json.loads(raw)
        for src, dst in record.get("edges", []):
            if src == dst:
                continue  # name-level self edges carry no order
            if (src, dst) not in static_edges:
                detail = ""
                if src not in known or dst not in known:
                    detail = " (unknown lock name)"
                misses.append("observed edge %s -> %s missing from "
                              "static graph%s" % (src, dst, detail))
    return sorted(set(misses))
