"""``python -m tools.lint`` entry point."""

from .cli import main

if __name__ == "__main__":
    raise SystemExit(main())
