"""Repo tooling (not shipped with the ``repro`` package)."""
