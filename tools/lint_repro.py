#!/usr/bin/env python
"""Back-compat shim for the repo linter.

The linter grew into the :mod:`tools.lint` package (shared
suppression engine, per-rule modules, and the interprocedural
lock-order analysis).  This file keeps the historical entry point and
symbols alive for CI and for tests that load it by file path:

* ``python tools/lint_repro.py [ROOT ...]`` still works,
* ``lint_file(path, event_names)``, ``_load_event_names(repo_root)``,
  ``Finding`` and ``main`` are re-exported unchanged.

New capabilities (the lock-order graph dump, dynamic-vs-static
containment) live on the package driver::

    python -m tools.lint --lock-graph lockgraph.json

See ``tools/lint/__init__.py`` for the module map and
docs/PROTOCOLS.md ("Concurrency discipline") for the L-code contract.
"""

from __future__ import annotations

import sys
from pathlib import Path

# Tests load this file by path (importlib spec_from_file_location),
# in which case the repo root is not importable yet.
_REPO_ROOT = str(Path(__file__).resolve().parent.parent)
if _REPO_ROOT not in sys.path:
    sys.path.insert(0, _REPO_ROOT)

from tools.lint import (  # noqa: E402  (path setup must run first)
    CODES, Finding, _load_event_names, lint_file, lint_file_hygiene,
    load_event_names, main,
)

__all__ = [
    "CODES", "Finding", "_load_event_names", "lint_file",
    "lint_file_hygiene", "load_event_names", "main",
]

if __name__ == "__main__":
    raise SystemExit(main())
