"""Rewrite rules for navigational-complexity optimization (Sec. 3,
"Query Rewriting").

The paper omits its rule set for space; we implement the rules its
cost model motivates.  Each rule maps a plan to an improved plan or
None, and reports a name for the optimizer's trace:

* ``merge-selects``: sigma_p1(sigma_p2(x)) -> sigma_(p1 AND p2)(x).
* ``push-select-below-extension``: selections commute below operators
  that merely extend bindings (getDescendants, constant, concatenate,
  createElement) when the predicate ignores the new variable -- the
  filter then prunes *before* descendant scans, cutting source
  navigations.
* ``push-select-into-join``: a selection above a join moves into the
  join predicate (or below the relevant side) so the nested loop skips
  non-matching inner bindings early.
* ``push-select-below-groupby``: predicates over group keys filter the
  input instead of discarding whole groups after they were assembled.
* ``fuse-get-descendants``: getDescendants_{v1, p2 -> v2} over
  getDescendants_{e, p1 -> v1} fuses to a single operator with path
  ``p1.p2`` when the intermediate variable is used nowhere else --
  one incremental NFA walk instead of a nested rescan.
"""

from __future__ import annotations

import copy
from typing import Callable, List, Optional, Set, Tuple

from ..algebra import operators as ops
from ..algebra.predicates import And, Predicate
from ..xtree.path import Seq

__all__ = ["ALL_RULES", "Rule", "rebuild"]

#: A rule takes a node and returns a replacement or None.
Rule = Tuple[str, Callable[[ops.Operator], Optional[ops.Operator]]]


def rebuild(node: ops.Operator,
            new_inputs: Tuple[ops.Operator, ...]) -> ops.Operator:
    """A shallow copy of ``node`` with replaced children."""
    clone = copy.copy(node)
    clone.inputs = new_inputs
    if hasattr(clone, "child"):
        clone.child = new_inputs[0]
    if hasattr(clone, "left"):
        clone.left = new_inputs[0]
        clone.right = new_inputs[1]
    return clone


# ----------------------------------------------------------------------
# Helper analyses
# ----------------------------------------------------------------------

def _uses_of_variable(plan: ops.Operator, var: str) -> int:
    """How many operator parameters in ``plan`` mention ``var``
    (excluding the operator that binds it)."""
    count = 0
    for node in ops.walk_plan(plan):
        if isinstance(node, ops.GetDescendants):
            if node.parent_var == var:
                count += 1
        elif isinstance(node, ops.Select):
            if var in node.predicate.variables():
                count += 1
        elif isinstance(node, ops.Join):
            if var in node.predicate.variables():
                count += 1
        elif isinstance(node, ops.GroupBy):
            if var in node.group_vars:
                count += 1
            count += sum(1 for v, _ in node.aggregations if v == var)
        elif isinstance(node, ops.OrderBy):
            if var in node.variables:
                count += 1
        elif isinstance(node, ops.Concatenate):
            count += node.in_vars.count(var)
        elif isinstance(node, ops.CreateElement):
            if node.content_var == var or node.label_var == var:
                count += 1
        elif isinstance(node, ops.Project):
            if var in node.variables:
                count += 1
        elif isinstance(node, ops.Rename):
            if var in node.mapping:
                count += 1
        elif isinstance(node, ops.TupleDestroy):
            if node.var == var:
                count += 1
    return count


# ----------------------------------------------------------------------
# Rules
# ----------------------------------------------------------------------

def merge_selects(node: ops.Operator) -> Optional[ops.Operator]:
    if isinstance(node, ops.Select) \
            and isinstance(node.child, ops.Select):
        inner = node.child
        return ops.Select(inner.child,
                          And((node.predicate, inner.predicate)))
    return None


_EXTENSION_OPS = (ops.GetDescendants, ops.Constant, ops.Concatenate,
                  ops.CreateElement)


def push_select_below_extension(node: ops.Operator
                                ) -> Optional[ops.Operator]:
    if not isinstance(node, ops.Select):
        return None
    child = node.child
    if not isinstance(child, _EXTENSION_OPS):
        return None
    needed = node.predicate.variables()
    below = set(child.child.output_variables())
    if needed <= below:
        pushed = ops.Select(child.child, node.predicate)
        return rebuild(child, (pushed,))
    return None


def push_select_into_join(node: ops.Operator) -> Optional[ops.Operator]:
    if not isinstance(node, ops.Select) \
            or not isinstance(node.child, ops.Join):
        return None
    join = node.child
    needed = node.predicate.variables()
    left_vars = set(join.left.output_variables())
    right_vars = set(join.right.output_variables())
    if needed <= left_vars:
        return ops.Join(ops.Select(join.left, node.predicate),
                        join.right, join.predicate)
    if needed <= right_vars:
        return ops.Join(join.left,
                        ops.Select(join.right, node.predicate),
                        join.predicate)
    # Spans both sides: merge into the join predicate.
    return ops.Join(join.left, join.right,
                    And((join.predicate, node.predicate)))


def push_select_below_groupby(node: ops.Operator
                              ) -> Optional[ops.Operator]:
    if not isinstance(node, ops.Select) \
            or not isinstance(node.child, ops.GroupBy):
        return None
    group = node.child
    if node.predicate.variables() <= set(group.group_vars):
        return rebuild(group,
                       (ops.Select(group.child, node.predicate),))
    return None


def fixed_match_length(expr) -> Optional[int]:
    """The unique match length of a path, or None when variable.

    Fusion is only multiplicity- and order-preserving when the inner
    path has a fixed length: then every fused match decomposes into
    exactly one (inner node, outer node) pair.
    """
    from ..xtree.path import Alt, Label, Opt, Plus, Star, Wildcard
    if isinstance(expr, (Label, Wildcard)):
        return 1
    if isinstance(expr, Seq):
        total = 0
        for part in expr.parts:
            length = fixed_match_length(part)
            if length is None:
                return None
            total += length
        return total
    if isinstance(expr, Alt):
        lengths = {fixed_match_length(o) for o in expr.options}
        if len(lengths) == 1 and None not in lengths:
            return lengths.pop()
        return None
    return None  # Star/Plus/Opt


def nullable_path(expr) -> bool:
    """Whether a path can match the empty step sequence.

    A getDescendants match always consumes at least one step (the
    output node is a proper descendant of its parent), so ``a*`` from
    $X never yields $X itself.  A fused ``p1.a*`` reaches those
    zero-step outer matches through p1 alone, changing the answer.
    """
    from ..xtree.path import Alt, Opt, Plus, Star
    if isinstance(expr, (Star, Opt)):
        return True
    if isinstance(expr, Plus):
        return nullable_path(expr.inner)
    if isinstance(expr, Seq):
        return all(nullable_path(p) for p in expr.parts)
    if isinstance(expr, Alt):
        return any(nullable_path(o) for o in expr.options)
    return False  # Label/Wildcard


def fuse_get_descendants(node: ops.Operator) -> Optional[ops.Operator]:
    if not isinstance(node, ops.GetDescendants) \
            or not isinstance(node.child, ops.GetDescendants):
        return None
    outer, inner = node, node.child
    if outer.parent_var != inner.out_var:
        return None
    if fixed_match_length(inner.path) is None:
        return None
    if nullable_path(outer.path):
        return None
    # The intermediate variable must be used nowhere but as the outer
    # operator's parent; we can only see this subtree, so the caller
    # (optimizer) verifies global uses before enabling this rule.
    fused_path = Seq((inner.path, outer.path))
    return ops.GetDescendants(inner.child, inner.parent_var,
                              fused_path, outer.out_var)


ALL_RULES: List[Rule] = [
    ("merge-selects", merge_selects),
    ("push-select-below-extension", push_select_below_extension),
    ("push-select-into-join", push_select_into_join),
    ("push-select-below-groupby", push_select_below_groupby),
]

#: fuse-get-descendants needs whole-plan usage information; the
#: optimizer applies it separately.
FUSE_RULE: Rule = ("fuse-get-descendants", fuse_get_descendants)
