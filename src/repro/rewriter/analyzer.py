"""Static navigational-complexity analysis of algebra plans.

Assigns each plan the coarsest browsability class (Definition 2) any
client navigation can exhibit, bottom-up over the operator tree:

* ``source`` is *bounded browsable*: navigations map 1:1.
* ``getDescendants`` with an all-wildcard, star-free path stays
  bounded (each output step mirrors a constant number of input steps);
  a labeled or starred path makes it *(unbounded) browsable* -- the
  next match position depends on the data.  With the sibling-selection
  command ``select(sigma)`` available at the sources, a single-label
  last step is served in one source command and the class improves
  (the paper's Example 1 remark).
* ``select``, ``join``, ``groupBy``, ``distinct`` are browsable: they
  scan, but never need a whole list regardless of input.
* ``orderBy`` and ``difference`` are unbrowsable: nothing can be
  emitted before an entire input has been consumed.
* structural operators (``concatenate``, ``createElement``,
  ``project``, ``rename``, ``constant``, ``union``) preserve their
  inputs' class.

The benchmark suite checks this analysis against the *empirical*
classifier on the paper's Example 1 views.
"""

from __future__ import annotations

from typing import Dict

from ..algebra import operators as ops
from ..navigation.complexity import Browsability
from ..xtree.path import Alt, Label, Opt, PathExpr, Plus, Seq, Star, Wildcard

__all__ = ["classify_plan", "classify_path", "explain_plan"]

_ORDER = {
    Browsability.BOUNDED: 0,
    Browsability.BROWSABLE: 1,
    Browsability.UNBROWSABLE: 2,
}


def _max(a: Browsability, b: Browsability) -> Browsability:
    return a if _ORDER[a] >= _ORDER[b] else b


def classify_path(path: PathExpr,
                  sigma_available: bool = False) -> Browsability:
    """Browsability contributed by one getDescendants path.

    * all-wildcard star-free sequences (``_``, ``_._``): every match
      position is determined by counting, so navigation is bounded;
    * otherwise browsable; a trailing single label with
      ``sigma_available`` is also bounded (one select command finds the
      next match).
    """

    def all_wildcards(expr: PathExpr) -> bool:
        if isinstance(expr, Wildcard):
            return True
        if isinstance(expr, Seq):
            return all(all_wildcards(p) for p in expr.parts)
        return False

    if all_wildcards(path):
        return Browsability.BOUNDED
    if sigma_available:
        # A single label (or wildcards followed by one label) can be
        # served by select(sigma) per level.
        def sigma_servable(expr: PathExpr) -> bool:
            if isinstance(expr, (Label, Wildcard)):
                return True
            if isinstance(expr, Seq):
                return all(isinstance(p, (Label, Wildcard))
                           for p in expr.parts)
            return False

        if sigma_servable(path):
            return Browsability.BOUNDED
    return Browsability.BROWSABLE


def classify_plan(plan: ops.Operator,
                  sigma_available: bool = False) -> Browsability:
    """The static browsability class of a plan."""
    child_class = Browsability.BOUNDED
    for child in plan.inputs:
        child_class = _max(child_class,
                           classify_plan(child, sigma_available))

    if isinstance(plan, ops.Source):
        own = Browsability.BOUNDED
    elif isinstance(plan, ops.GetDescendants):
        own = classify_path(plan.path, sigma_available)
    elif isinstance(plan, (ops.Select, ops.Join, ops.GroupBy,
                           ops.Distinct)):
        own = Browsability.BROWSABLE
    elif isinstance(plan, (ops.OrderBy, ops.Difference)):
        own = Browsability.UNBROWSABLE
    elif isinstance(plan, (ops.Concatenate, ops.CreateElement,
                           ops.Project, ops.Rename, ops.Constant,
                           ops.Union, ops.TupleDestroy,
                           ops.Materialize)):
        own = Browsability.BOUNDED
    else:
        own = Browsability.BROWSABLE  # conservative default
    return _max(own, child_class)


def explain_plan(plan: ops.Operator,
                 sigma_available: bool = False) -> str:
    """A per-node classification report (root first)."""
    lines = []

    def walk(node: ops.Operator, indent: int) -> None:
        cls = classify_plan(node, sigma_available)
        lines.append("%s%-18s %s"
                     % ("  " * indent, str(cls), node.signature()))
        for child in node.inputs:
            walk(child, indent + 1)

    walk(plan, 0)
    return "\n".join(lines)
