"""Static navigational-complexity analysis of algebra plans.

Assigns each plan the coarsest browsability class (Definition 2) any
client navigation can exhibit, bottom-up over the operator tree:

* ``source`` is *bounded browsable*: navigations map 1:1.
* ``getDescendants`` with an all-wildcard, star-free path stays
  bounded (each output step mirrors a constant number of input steps);
  a labeled or starred path makes it *(unbounded) browsable* -- the
  next match position depends on the data.  With the sibling-selection
  command ``select(sigma)`` available at the sources, a single-label
  last step is served in one source command and the class improves
  (the paper's Example 1 remark).
* ``select``, ``join``, ``distinct`` are browsable: they scan, but
  never need a whole list regardless of input.
* ``groupBy`` with grouping keys is browsable (finding the next
  distinct key scans a data-dependent stretch of the input); a
  *keyless* groupBy emits its single group as soon as the first input
  binding exists, so its own contribution is bounded.
* ``orderBy``, ``difference`` and ``materialize`` are unbrowsable:
  nothing can be emitted before an entire input has been consumed
  (``materialize`` is *semantically* the identity but operationally
  evaluates its subtree eagerly on first touch).
* structural operators (``concatenate``, ``createElement``,
  ``project``, ``rename``, ``constant``, ``union``) preserve their
  inputs' class.

Composed classes, not max of parts
----------------------------------
A ``getDescendants`` that navigates *into a collected list* (an
aggregation output of ``groupBy``, possibly concatenated or wrapped in
a constructed element) does not simply take the max of the operators
involved: its class is the *composition* of the path class with the
class of streaming the collection itself
(:func:`~repro.navigation.complexity.compose_classes`).  A wildcard
walk over the single group of a keyless groupBy is bounded end to end,
even though "groupBy" sounds browsable; a labeled walk over a keyed
group stays browsable.  The inference therefore tracks, per variable,
the streaming class of collection-valued bindings and composes at the
navigation site.

The benchmark suite checks this analysis against the *empirical*
classifier on the paper's Example 1 views, and the agreement suite
checks it is never more optimistic than the navigation profiler.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..algebra import operators as ops
from ..navigation.complexity import Browsability, compose_classes
from ..xtree.path import Label, PathExpr, Seq, Wildcard

__all__ = ["classify_plan", "classify_path", "classify_nodes",
           "explain_plan"]

#: var name -> Definition 2 class of streaming that variable's
#: collection value one member at a time.
_Collections = Dict[str, Browsability]


def classify_path(path: PathExpr,
                  sigma_available: bool = False) -> Browsability:
    """Browsability contributed by one getDescendants path.

    * all-wildcard star-free sequences (``_``, ``_._``): every match
      position is determined by counting, so navigation is bounded;
    * otherwise browsable; a trailing single label with
      ``sigma_available`` is also bounded (one select command finds the
      next match).
    """

    def all_wildcards(expr: PathExpr) -> bool:
        if isinstance(expr, Wildcard):
            return True
        if isinstance(expr, Seq):
            return all(all_wildcards(p) for p in expr.parts)
        return False

    if all_wildcards(path):
        return Browsability.BOUNDED
    if sigma_available:
        # A single label (or wildcards followed by one label) can be
        # served by select(sigma) per level.
        def sigma_servable(expr: PathExpr) -> bool:
            if isinstance(expr, (Label, Wildcard)):
                return True
            if isinstance(expr, Seq):
                return all(isinstance(p, (Label, Wildcard))
                           for p in expr.parts)
            return False

        if sigma_servable(path):
            return Browsability.BOUNDED
    return Browsability.BROWSABLE


def _infer(plan: ops.Operator, sigma_available: bool
           ) -> Tuple[Browsability, _Collections]:
    """Bottom-up class inference: (plan class, collection classes).

    The returned mapping carries, for every variable holding a lazily
    collected *list* value (groupBy aggregations and whatever
    concatenate / createElement builds out of them), the class of
    advancing one member of that list.  Navigation operators compose
    with it instead of max-ing over syntactic parts.
    """
    child_cls = Browsability.BOUNDED
    collections: _Collections = {}
    for child in plan.inputs:
        cls, colls = _infer(child, sigma_available)
        child_cls = compose_classes(child_cls, cls)
        collections.update(colls)

    own = Browsability.BOUNDED
    if isinstance(plan, ops.GetDescendants):
        own = classify_path(plan.path, sigma_available)
        streaming = collections.get(plan.parent_var)
        if streaming is not None:
            # Navigating into a collected list: each output step
            # advances the collection by (at worst) one member, so the
            # composed class is path-class o streaming-class.
            own = compose_classes(own, streaming)
    elif isinstance(plan, (ops.Select, ops.Join, ops.Distinct)):
        own = Browsability.BROWSABLE
    elif isinstance(plan, ops.GroupBy):
        member = compose_classes(
            child_cls, *(collections.get(v, Browsability.BOUNDED)
                         for v, _ in plan.aggregations))
        if plan.group_vars:
            # Finding the next distinct key scans a data-dependent
            # stretch of the input; so does streaming one group.
            own = Browsability.BROWSABLE
            member = compose_classes(member, Browsability.BROWSABLE)
        for _, out in plan.aggregations:
            collections[out] = member
    elif isinstance(plan, (ops.OrderBy, ops.Difference,
                           ops.Materialize)):
        own = Browsability.UNBROWSABLE
    elif isinstance(plan, ops.Concatenate):
        collections[plan.out_var] = compose_classes(
            *(collections.get(v, Browsability.BOUNDED)
              for v in plan.in_vars))
    elif isinstance(plan, ops.CreateElement):
        # The new element's children *are* the content collection;
        # navigating into it streams that collection.
        streaming = collections.get(plan.content_var)
        if streaming is not None:
            collections[plan.out_var] = streaming
    elif isinstance(plan, ops.Rename):
        for old, new in plan.mapping.items():
            if old in collections:
                collections[new] = collections.pop(old)
    elif isinstance(plan, (ops.Source, ops.Constant, ops.Project,
                           ops.Union, ops.TupleDestroy)):
        own = Browsability.BOUNDED
    else:
        own = Browsability.BROWSABLE  # conservative default
    return compose_classes(own, child_cls), collections


def classify_plan(plan: ops.Operator,
                  sigma_available: bool = False) -> Browsability:
    """The static browsability class of a plan."""
    cls, _ = _infer(plan, sigma_available)
    return cls


def classify_nodes(plan: ops.Operator,
                   sigma_available: bool = False
                   ) -> List[Tuple[ops.Operator, Browsability]]:
    """Per-node classification, root first (preorder).

    Each node's class is the class of the subplan rooted there -- the
    same value :func:`classify_plan` returns for that subtree.
    """
    result: List[Tuple[ops.Operator, Browsability]] = []

    def walk(node: ops.Operator) -> None:
        result.append((node, classify_plan(node, sigma_available)))
        for child in node.inputs:
            walk(child)

    walk(plan)
    return result


def explain_plan(plan: ops.Operator,
                 sigma_available: bool = False) -> str:
    """A per-node classification report (root first)."""
    lines = []

    def walk(node: ops.Operator, indent: int) -> None:
        cls = classify_plan(node, sigma_available)
        lines.append("%s%-18s %s"
                     % ("  " * indent, str(cls), node.signature()))
        for child in node.inputs:
            walk(child, indent + 1)

    walk(plan, 0)
    return "\n".join(lines)
