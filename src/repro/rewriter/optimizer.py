"""The rewriting optimizer: apply rules to a fixpoint, tracing what
fired.

``optimize(plan)`` returns a semantically equivalent plan with better
navigational behaviour (selections pushed toward sources, adjacent
descendant extractions fused).  The optimizer is conservative: a rule
only fires when its side conditions prove equivalence, and the
benchmark suite double-checks optimized plans against unoptimized
evaluation on every experiment workload.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..algebra import operators as ops
from ..algebra.operators import Difference, Materialize, OrderBy
from .rules import ALL_RULES, FUSE_RULE, _uses_of_variable, rebuild

__all__ = ["optimize", "OptimizationTrace"]


def _is_pushed(plan: ops.Operator) -> bool:
    """Whether ``plan`` is a PushedSource leaf (opaque to rewriting:
    its compiled request already fixed what the source evaluates, so
    no rule may fire on or below it)."""
    # Imported lazily: repro.pushdown reaches back into this package
    # for ``rebuild`` while splicing.
    from ..pushdown.plan import PushedSource
    return isinstance(plan, PushedSource)


class OptimizationTrace:
    """Names of rules applied, in application order."""

    def __init__(self):
        self.applied: List[str] = []

    def note(self, rule_name: str) -> None:
        self.applied.append(rule_name)

    def __repr__(self) -> str:
        return "OptimizationTrace(%s)" % ", ".join(self.applied)


def _apply_local_rules(plan: ops.Operator,
                       trace: OptimizationTrace) -> ops.Operator:
    """One bottom-up pass of the local rules."""
    if _is_pushed(plan):
        return plan
    new_inputs = tuple(_apply_local_rules(c, trace)
                       for c in plan.inputs)
    if new_inputs != plan.inputs:
        plan = rebuild(plan, new_inputs)
    changed = True
    while changed:
        changed = False
        for name, rule in ALL_RULES:
            replacement = rule(plan)
            if replacement is not None:
                trace.note(name)
                plan = replacement
                changed = True
    return plan


def _apply_fusion(root: ops.Operator, plan: ops.Operator,
                  trace: OptimizationTrace) -> ops.Operator:
    """Bottom-up getDescendants fusion with the global usage check."""
    if _is_pushed(plan):
        return plan
    new_inputs = tuple(_apply_fusion(root, c, trace)
                       for c in plan.inputs)
    if new_inputs != plan.inputs:
        plan = rebuild(plan, new_inputs)
    name, rule = FUSE_RULE
    while isinstance(plan, ops.GetDescendants) \
            and isinstance(plan.child, ops.GetDescendants):
        intermediate = plan.child.out_var
        if _uses_of_variable(root, intermediate) != 1:
            break
        replacement = rule(plan)
        if replacement is None:
            break
        trace.note(name)
        plan = replacement
    return plan


def _insert_materialize(plan: ops.Operator, trace: OptimizationTrace,
                        under_materialize: bool = False
                        ) -> ops.Operator:
    """Hybrid evaluation (paper Section 6's future work): wrap
    unbrowsable subplans in an intermediate eager step.  OrderBy and
    Difference force a full input scan anyway; buffering their output
    makes all later navigation over it free of source access."""
    if _is_pushed(plan):
        return plan
    is_buffer = isinstance(plan, Materialize)
    new_inputs = tuple(
        _insert_materialize(c, trace, under_materialize=is_buffer)
        for c in plan.inputs)
    if new_inputs != plan.inputs:
        plan = rebuild(plan, new_inputs)
    if isinstance(plan, (OrderBy, Difference)) \
            and not under_materialize:
        trace.note("materialize-unbrowsable")
        return Materialize(plan)
    return plan


def optimize(plan: ops.Operator,
             max_passes: int = 8,
             hybrid: bool = False) -> Tuple[ops.Operator,
                                            OptimizationTrace]:
    """Optimize ``plan``; returns (new_plan, trace).

    ``hybrid=True`` additionally inserts intermediate eager steps
    above unbrowsable subplans (Section 6's lazy/eager combination).
    """
    trace = OptimizationTrace()
    for _ in range(max_passes):
        before = plan.pretty()
        plan = _apply_local_rules(plan, trace)
        plan = _apply_fusion(plan, plan, trace)
        if plan.pretty() == before:
            break
    if hybrid:
        plan = _insert_materialize(plan, trace)
    plan.validate()
    return plan, trace
