"""Query rewriting for navigational complexity: static browsability
analysis and the rule-based plan optimizer."""

from .analyzer import classify_path, classify_plan, explain_plan
from .optimizer import OptimizationTrace, optimize
from .rules import ALL_RULES, FUSE_RULE

__all__ = [
    "classify_plan", "classify_path", "explain_plan",
    "optimize", "OptimizationTrace", "ALL_RULES", "FUSE_RULE",
]
