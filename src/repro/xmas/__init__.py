"""The XMAS query language front-end: AST, parser, translation to the
algebra, and query/view composition."""

from .ast import (
    ComparisonCondition,
    Condition,
    ElementTemplate,
    LiteralContent,
    PathCondition,
    VarUse,
    XMASQuery,
)
from .compose import compose_plans, inline_views
from .dtd import ContentParticle, ElementDecl, InferredDTD, infer_dtd
from .parser import XMASSyntaxError, parse_xmas
from .translate import XMASTranslationError, translate

__all__ = [
    "XMASQuery", "ElementTemplate", "VarUse", "LiteralContent",
    "PathCondition", "ComparisonCondition", "Condition",
    "parse_xmas", "XMASSyntaxError",
    "translate", "XMASTranslationError",
    "compose_plans", "inline_views",
    "infer_dtd", "InferredDTD", "ElementDecl", "ContentParticle",
]
