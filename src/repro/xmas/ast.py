"""AST of the XMAS query language (paper Figure 3, [LPVV99]).

A query has a CONSTRUCT head -- an element template with variables and
group-by markers ``{...}`` -- and a WHERE body -- a conjunction of
path conditions and comparison predicates::

    CONSTRUCT <answer>
                <med_home> $H $S {$S} </med_home> {$H}
              </answer> {}
    WHERE homesSrc homes.home $H AND $H zip._ $V1
      AND schoolsSrc schools.school $S AND $S zip._ $V2
      AND $V1 = $V2

Group-by markers attach to head items: ``{$H}`` after an element means
"one such element per binding of $H"; ``{$S}`` after a variable means
"the list of all $S within the enclosing group"; ``{}`` means "exactly
one".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from ..xtree.path import PathExpr

__all__ = [
    "XMASQuery", "ElementTemplate", "VarUse", "LiteralContent",
    "PathCondition", "ComparisonCondition", "Condition", "HeadItem",
]


@dataclass
class VarUse:
    """A ``$X`` occurrence in the head, optionally with a group marker
    ``{$X}`` (collect all values within the enclosing group)."""

    name: str
    group: Optional[List[str]] = None  # None = no marker

    def __str__(self) -> str:
        text = "$%s" % self.name
        if self.group is not None:
            text += " {%s}" % ", ".join("$" + g for g in self.group)
        return text


@dataclass
class LiteralContent:
    """Literal character content inside a constructed element."""

    text: str

    def __str__(self) -> str:
        return '"%s"' % self.text


@dataclass
class ElementTemplate:
    """``<tag> ... </tag> {vars}``: a constructed element.

    ``group`` lists the variables the element is created *per binding
    of* (the marker after the closing tag); None means the element
    inherits multiplicity from its context (it appears once per
    enclosing group member -- only legal for the outermost element when
    it carries an explicit marker, so the parser requires markers on
    elements).
    """

    tag: str
    children: List["HeadItem"] = field(default_factory=list)
    group: Optional[List[str]] = None

    def __str__(self) -> str:
        inner = " ".join(str(c) for c in self.children)
        text = "<%s> %s </%s>" % (self.tag, inner, self.tag)
        if self.group is not None:
            text += " {%s}" % ", ".join("$" + g for g in self.group)
        return text


HeadItem = Union[ElementTemplate, VarUse, LiteralContent]


@dataclass
class PathCondition:
    """``base path $var``: bind ``$var`` to each descendant of ``base``
    reachable via ``path``.  ``base`` is a source name (str) or a
    variable (prefixed form ``("var", name)``)."""

    base: Union[str, Tuple[str, str]]
    path: PathExpr
    var: str

    @property
    def base_is_source(self) -> bool:
        return isinstance(self.base, str)

    def __str__(self) -> str:
        base = (self.base if self.base_is_source
                else "$%s" % self.base[1])
        return "%s %s $%s" % (base, self.path, self.var)


@dataclass
class ComparisonCondition:
    """``$X op $Y`` or ``$X op literal``."""

    left: str  # variable name
    op: str
    right: Union[str, Tuple[str, str]]  # ("var", name) or literal str

    def __str__(self) -> str:
        right = ("$%s" % self.right[1]
                 if isinstance(self.right, tuple) else repr(self.right))
        return "$%s %s %s" % (self.left, self.op, right)


Condition = Union[PathCondition, ComparisonCondition]


@dataclass
class XMASQuery:
    """A complete XMAS query: head template + body conditions, plus an
    optional ORDER BY over body variables (a convenience extension:
    the paper expresses ordering through the orderBy operator)."""

    head: ElementTemplate
    conditions: List[Condition]
    order_by: List[Tuple[str, bool]] = field(default_factory=list)
    #: each entry is (variable, descending)

    def source_names(self) -> List[str]:
        """Source names referenced by the body, in first-use order."""
        names: List[str] = []
        for cond in self.conditions:
            if isinstance(cond, PathCondition) and cond.base_is_source:
                if cond.base not in names:
                    names.append(cond.base)
        return names

    def __str__(self) -> str:
        body = " AND ".join(str(c) for c in self.conditions)
        text = "CONSTRUCT %s WHERE %s" % (self.head, body)
        if self.order_by:
            keys = ", ".join(
                "$%s%s" % (v, " DESC" if desc else "")
                for v, desc in self.order_by)
            text += " ORDER BY %s" % keys
        return text
