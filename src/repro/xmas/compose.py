"""Composition of queries with view definitions (paper Section 3,
"Preprocessing": the initial plan for ``q' o q``).

Two composition styles, both offered:

* **Algebraic inlining** (:func:`compose_plans`): every ``source``
  operator of the query plan whose URL names a view is replaced by that
  view's plan -- projected to its answer variable and renamed to the
  root variable the query expects.  The result is a single plan the
  rewriter can optimize across the view boundary.

* **Mediator stacking** (in :mod:`repro.mediator`): the view's virtual
  document is registered as a navigable source of the lower mediator --
  Figure 1's tower of lazy mediators.  Operationally equivalent, but
  opaque to rewriting.

Both rely on the same convention: a source's exported root *is* the
document node whose children the query's paths start from, so a view's
constructed ``<answer>`` element slots in for a wrapped source's root
without adjustment.
"""

from __future__ import annotations

from typing import Dict, Mapping

from ..algebra.operators import (
    Operator,
    Project,
    Rename,
    Source,
    TupleDestroy,
)

__all__ = ["compose_plans", "inline_views"]


def _view_subplan(view: TupleDestroy, root_var: str) -> Operator:
    """The view plan as a drop-in replacement for a source operator:
    one binding carrying the answer element under ``root_var``."""
    projected = Project(view.child, [view.var])
    return Rename(projected, {view.var: root_var})


def compose_plans(query_plan: Operator,
                  views: Mapping[str, TupleDestroy]) -> Operator:
    """Replace each ``source[url -> $r]`` whose url is a view name by
    the view's plan.  Unknown urls stay as real sources."""
    if isinstance(query_plan, Source) and query_plan.url in views:
        return _view_subplan(views[query_plan.url], query_plan.out_var)
    if not query_plan.inputs:
        return query_plan
    # Rebuild the node with composed children.  Operators hold their
    # children both in dedicated attributes and in `inputs`; we mutate
    # a shallow copy via the constructor-free route.
    import copy
    clone = copy.copy(query_plan)
    new_inputs = tuple(compose_plans(c, views) for c in query_plan.inputs)
    clone.inputs = new_inputs
    # Keep the named attributes in sync.
    if hasattr(clone, "child"):
        clone.child = new_inputs[0]
    if hasattr(clone, "left"):
        clone.left = new_inputs[0]
        clone.right = new_inputs[1]
    return clone


def inline_views(query_plan: TupleDestroy,
                 views: Mapping[str, TupleDestroy]) -> TupleDestroy:
    """Compose a full query plan with view definitions, transitively
    (views may reference other views; cycles raise RecursionError)."""
    composed: Dict[str, TupleDestroy] = {}
    for name, view in views.items():
        composed[name] = view

    def fully(plan: Operator, depth: int = 0) -> Operator:
        if depth > 32:
            raise RecursionError(
                "view composition exceeded depth 32 (cyclic views?)")
        result = compose_plans(plan, composed)
        # Re-compose until no view sources remain (views over views).
        from ..algebra.operators import walk_plan
        if any(isinstance(n, Source) and n.url in composed
               for n in walk_plan(result)):
            return fully(result, depth + 1)
        return result

    body = fully(query_plan.child)
    return TupleDestroy(body, query_plan.var)
