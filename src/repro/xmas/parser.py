"""Lexer and recursive-descent parser for XMAS queries.

The concrete syntax follows Figure 3 of the paper::

    CONSTRUCT <answer>
                <med_home> $H $S {$S} </med_home> {$H}
              </answer> {}
    WHERE homesSrc homes.home $H AND $H zip._ $V1
      AND schoolsSrc schools.school $S AND $S zip._ $V2
      AND $V1 = $V2

``%`` starts a comment running to the end of the line.  Keywords are
case-insensitive.

Tree patterns -- the XML-QL-style sugar of the paper's footnote 6 --
are supported and desugar to path conditions::

    <homes> $H: <home> <zip>$V1</zip> </home> </homes> IN homesSrc

is parsed as ``homesSrc homes.home $H AND $H zip._ $V1``.  Binders
``$X:`` may sit on any pattern element; unbound intermediate elements
get fresh internal variables.  (Because ``IN`` is a keyword, sources
and path labels named ``in`` need the plain condition form.)
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple, Union

from ..xtree.errors import PathSyntaxError
from ..xtree.path import parse_path
from .ast import (
    ComparisonCondition,
    Condition,
    ElementTemplate,
    LiteralContent,
    PathCondition,
    VarUse,
    XMASQuery,
)

__all__ = ["parse_xmas", "XMASSyntaxError"]


from ..errors import ReproError


class XMASSyntaxError(ReproError):
    """Raised when an XMAS query cannot be parsed."""


_TOKEN_RE = re.compile(
    r"""
    (?P<comment>%[^\n]*)
  | (?P<ws>\s+)
  | (?P<close></[A-Za-z_][-\w.]*\s*>)
  | (?P<open><[A-Za-z_][-\w.]*\s*>)
  | (?P<var>\$[A-Za-z_]\w*)
  | (?P<string>"[^"]*"|'[^']*')
  | (?P<op>!=|<=|>=|=|<|>)
  | (?P<punct>[{},:])
  | (?P<word>[A-Za-z0-9_@(][A-Za-z0-9_@.*+?|()]*)
    """,
    re.VERBOSE,
)

_KEYWORDS = {"construct", "where", "and", "order", "by",
             "desc", "asc", "in"}


def _tokenize(text: str) -> List[Tuple[str, str]]:
    tokens: List[Tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if not match:
            raise XMASSyntaxError(
                "cannot tokenize XMAS query at %r" % text[pos:pos + 25])
        pos = match.end()
        kind = match.lastgroup
        if kind in ("comment", "ws"):
            continue
        value = match.group(kind)
        if kind == "word" and value.lower() in _KEYWORDS:
            tokens.append(("kw", value.lower()))
        elif kind == "open":
            tokens.append(("open", value[1:-1].strip()))
        elif kind == "close":
            tokens.append(("close", value[2:-1].strip()))
        elif kind == "var":
            tokens.append(("var", value[1:]))
        elif kind == "string":
            tokens.append(("string", value[1:-1]))
        else:
            tokens.append((kind, value))
    return tokens


class _Parser:
    def __init__(self, tokens: List[Tuple[str, str]]):
        self.tokens = tokens
        self.pos = 0

    def peek(self) -> Optional[Tuple[str, str]]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) \
            else None

    def next(self) -> Tuple[str, str]:
        token = self.peek()
        if token is None:
            raise XMASSyntaxError("unexpected end of query")
        self.pos += 1
        return token

    def expect(self, kind: str, value: Optional[str] = None) -> str:
        token = self.next()
        if token[0] != kind or (value is not None and token[1] != value):
            raise XMASSyntaxError(
                "expected %s%s, got %r"
                % (kind, " %r" % value if value else "", token[1]))
        return token[1]

    def at(self, kind: str, value: Optional[str] = None) -> bool:
        token = self.peek()
        return (token is not None and token[0] == kind
                and (value is None or token[1] == value))

    # -- grammar ----------------------------------------------------------
    def parse_query(self) -> XMASQuery:
        self.expect("kw", "construct")
        head = self.parse_element()
        if head.group is None:
            raise XMASSyntaxError(
                "the outermost constructed element needs a group marker "
                "(usually '{}')")
        self.expect("kw", "where")
        conditions = list(self.parse_condition_group())
        while self.at("kw", "and"):
            self.next()
            conditions.extend(self.parse_condition_group())
        order_by = []
        if self.at("kw", "order"):
            self.next()
            self.expect("kw", "by")
            order_by.append(self.parse_order_key())
            while self.at("punct", ","):
                self.next()
                order_by.append(self.parse_order_key())
        if self.peek() is not None:
            raise XMASSyntaxError(
                "trailing tokens after the query: %r"
                % (self.peek()[1],))
        return XMASQuery(head, conditions, order_by)

    def parse_order_key(self):
        var = self.expect("var")
        descending = False
        if self.at("kw", "desc"):
            self.next()
            descending = True
        elif self.at("kw", "asc"):
            self.next()
        return (var, descending)

    def parse_element(self) -> ElementTemplate:
        tag = self.expect("open")
        children: List[Union[ElementTemplate, VarUse, LiteralContent]] = []
        while not self.at("close"):
            if self.at("open"):
                children.append(self.parse_element())
            elif self.at("var"):
                name = self.next()[1]
                group = self.parse_group_opt()
                children.append(VarUse(name, group))
            elif self.at("string"):
                children.append(LiteralContent(self.next()[1]))
            elif self.at("word"):
                children.append(LiteralContent(self.next()[1]))
            else:
                token = self.peek()
                raise XMASSyntaxError(
                    "unexpected %r inside <%s>"
                    % (token[1] if token else "end of input", tag))
        closing = self.expect("close")
        if closing != tag:
            raise XMASSyntaxError(
                "mismatched </%s> for <%s>" % (closing, tag))
        group = self.parse_group_opt()
        return ElementTemplate(tag, children, group)

    def parse_group_opt(self) -> Optional[List[str]]:
        if not self.at("punct", "{"):
            return None
        self.next()
        names: List[str] = []
        if self.at("var"):
            names.append(self.next()[1])
            while self.at("punct", ","):
                self.next()
                names.append(self.expect("var"))
        self.expect("punct", "}")
        return names

    def parse_condition_group(self) -> List[Condition]:
        """One AND-conjunct: a plain condition, or a tree pattern
        (which desugars to several path conditions)."""
        if self.at("open") or (self.at("var")
                               and self._next_is_colon()):
            return self.parse_pattern_condition()
        return [self.parse_condition()]

    def _next_is_colon(self) -> bool:
        nxt = (self.tokens[self.pos + 1]
               if self.pos + 1 < len(self.tokens) else None)
        return nxt == ("punct", ":")

    # -- tree patterns (footnote 6) -------------------------------------
    def parse_pattern_condition(self) -> List[Condition]:
        root_binder = None
        if self.at("var"):
            root_binder = self.next()[1]
            self.expect("punct", ":")
        root = self.parse_pattern_element()
        self.expect("kw", "in")
        source = self.expect("word")
        counter = [0]

        def fresh() -> str:
            counter[0] += 1
            return "_pat%d" % counter[0]

        return _desugar_pattern(root, root_binder, source, fresh)

    def parse_pattern_element(self):
        tag = self.expect("open")
        items = []
        while not self.at("close"):
            if self.at("var"):
                name = self.next()[1]
                if self.at("punct", ":"):
                    self.next()
                    items.append((name, self.parse_pattern_element()))
                else:
                    items.append(("$", name))  # bare content variable
            elif self.at("open"):
                items.append((None, self.parse_pattern_element()))
            else:
                token = self.peek()
                raise XMASSyntaxError(
                    "unexpected %r inside pattern <%s>"
                    % (token[1] if token else "end of input", tag))
        closing = self.expect("close")
        if closing != tag:
            raise XMASSyntaxError(
                "mismatched </%s> for pattern <%s>" % (closing, tag))
        return _PatternElement(tag, items)

    def parse_condition(self) -> Condition:
        if self.at("var"):
            left = self.next()[1]
            if self.at("op"):
                op = self.next()[1]
                return ComparisonCondition(left, op, self._operand())
            # $X path $Y
            path_text = self.expect("word")
            var = self.expect("var")
            return PathCondition(("var", left),
                                 self._path(path_text), var)
        if self.at("word"):
            source = self.next()[1]
            path_text = self.expect("word")
            var = self.expect("var")
            return PathCondition(source, self._path(path_text), var)
        token = self.peek()
        raise XMASSyntaxError(
            "expected a condition, got %r"
            % (token[1] if token else "end of input"))

    def _operand(self) -> Union[str, Tuple[str, str]]:
        if self.at("var"):
            return ("var", self.next()[1])
        if self.at("string") or self.at("word"):
            return self.next()[1]
        token = self.peek()
        raise XMASSyntaxError(
            "expected a comparison operand, got %r"
            % (token[1] if token else "end of input"))

    def _path(self, text: str):
        try:
            return parse_path(text)
        except PathSyntaxError as err:
            raise XMASSyntaxError(
                "bad path expression %r: %s" % (text, err)) from None


class _PatternElement:
    """An element of a tree pattern: a tag plus items, where an item is
    ``("$", var)`` for bare content variables or
    ``(binder_or_None, _PatternElement)`` for nested elements."""

    __slots__ = ("tag", "items")

    def __init__(self, tag, items):
        self.tag = tag
        self.items = items


def _pattern_path(labels):
    """A path AST from a list of labels, '_' meaning wildcard."""
    from ..xtree.path import Label, Seq, Wildcard
    parts = tuple(Wildcard() if l == "_" else Label(l) for l in labels)
    return parts[0] if len(parts) == 1 else Seq(parts)


def _desugar_pattern(root: _PatternElement, root_binder, source,
                     fresh) -> List[Condition]:
    """Rewrite a tree pattern into equivalent path conditions."""
    out: List[Condition] = []
    if root_binder is not None:
        out.append(PathCondition(source, _pattern_path([root.tag]),
                                 root_binder))
        _desugar_items(root, ("var", root_binder), [], out, fresh)
    else:
        _desugar_items(root, source, [root.tag], out, fresh)
    return out


def _desugar_items(element: _PatternElement, base, prefix, out,
                   fresh) -> None:
    for item in element.items:
        kind, payload = item
        if kind == "$":
            out.append(PathCondition(
                base, _pattern_path(prefix + ["_"]), payload))
            continue
        binder, sub = kind, payload
        only_content_var = (
            binder is None and len(sub.items) == 1
            and sub.items[0][0] == "$")
        if only_content_var:
            # The footnote's exact shortcut: <zip>$V</zip> under $H
            # becomes  $H zip._ $V.
            out.append(PathCondition(
                base, _pattern_path(prefix + [sub.tag, "_"]),
                sub.items[0][1]))
            continue
        var = binder if binder is not None else fresh()
        out.append(PathCondition(
            base, _pattern_path(prefix + [sub.tag]), var))
        _desugar_items(sub, ("var", var), [], out, fresh)


def parse_xmas(text: str) -> XMASQuery:
    """Parse an XMAS query string into its AST."""
    return _Parser(_tokenize(text)).parse_query()
