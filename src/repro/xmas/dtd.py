"""DTD inference for XMAS views ([LPVV99], cited as the paper's
companion work; Section 6's BBQ interface is "DTD-oriented").

Given an XMAS query, the shape of its answer document is largely
determined statically:

* the head template fixes the constructed elements, their child order,
  and their multiplicities (from the group markers);
* the body's path conditions fix the *names* of the elements a
  variable can bind -- the labels a matching path can end with
  (``$H`` bound via ``homes.home`` holds ``home`` elements);
* structure *below* a bound variable comes from the sources and stays
  open (declared ``ANY``).

:func:`infer_dtd` produces an :class:`InferredDTD` that renders as DTD
text and can check an answer document against the inferred content
models -- the test-suite validates every example query's answers
against their own inferred DTDs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..xtree.path import PathNFA
from ..xtree.tree import Tree
from .ast import (
    ElementTemplate,
    LiteralContent,
    PathCondition,
    VarUse,
    XMASQuery,
)

__all__ = ["infer_dtd", "InferredDTD", "ContentParticle", "ElementDecl"]

#: Placeholder name when a variable's element names are unknown
#: (wildcard-final path or unbound provenance).
ANY_NAME = "#ANY"
PCDATA = "#PCDATA"


@dataclass(frozen=True)
class ContentParticle:
    """One slot of a content model.

    ``names`` is the set of element names allowed here (or
    ``{ANY_NAME}`` / ``{PCDATA}``); ``occurs`` is '' (exactly one),
    '?' or '*'.
    """

    names: Tuple[str, ...]
    occurs: str = ""

    def render(self) -> str:
        inner = ("(%s)" % " | ".join(self.names)
                 if len(self.names) > 1 else self.names[0])
        return inner + self.occurs

    def admits(self, label: str, is_leaf: bool) -> bool:
        if ANY_NAME in self.names:
            return True
        if PCDATA in self.names:
            return is_leaf
        return label in self.names


@dataclass
class ElementDecl:
    """A constructed element's declaration."""

    name: str
    particles: List[ContentParticle] = field(default_factory=list)

    def render(self) -> str:
        if not self.particles:
            return "<!ELEMENT %s EMPTY>" % self.name
        body = ", ".join(p.render() for p in self.particles)
        return "<!ELEMENT %s (%s)>" % (self.name, body)


class InferredDTD:
    """The inferred schema of a view's answer documents."""

    def __init__(self, root: str, declarations: List[ElementDecl],
                 open_names: Set[str]):
        self.root = root
        self.declarations = declarations
        self._by_name: Dict[str, ElementDecl] = {
            d.name: d for d in declarations}
        #: element names whose content comes from the sources (ANY)
        self.open_names = open_names

    def render(self) -> str:
        lines = [d.render() for d in self.declarations]
        for name in sorted(self.open_names):
            if name not in self._by_name and name not in (ANY_NAME,
                                                          PCDATA):
                lines.append("<!ELEMENT %s ANY>" % name)
        return "\n".join(lines)

    def child_names(self, name: str) -> Optional[Set[str]]:
        """The element names allowed as children of ``name``, or
        ``None`` when the content is open (declared ANY / provided by
        the sources) -- the closed/open distinction the static path
        checker needs to build a schema graph from an inferred DTD.
        """
        decl = self._by_name.get(name)
        if decl is None:
            return None
        names: Set[str] = set()
        for particle in decl.particles:
            if ANY_NAME in particle.names:
                return None
            names.update(n for n in particle.names if n != PCDATA)
        return names

    # -- validation ---------------------------------------------------------
    def validate(self, answer: Tree) -> List[str]:
        """Check an answer document; returns a list of violations
        (empty = conforms)."""
        problems: List[str] = []
        if answer.label != self.root:
            problems.append(
                "root is <%s>, expected <%s>" % (answer.label,
                                                 self.root))
            return problems
        self._check(answer, problems)
        return problems

    def _check(self, element: Tree, problems: List[str]) -> None:
        decl = self._by_name.get(element.label)
        if decl is None:
            return  # source-provided content: unconstrained
        children = list(element.children)
        index = 0
        for particle in decl.particles:
            if particle.occurs == "*":
                while index < len(children) and particle.admits(
                        children[index].label,
                        children[index].is_leaf):
                    index += 1
            elif particle.occurs == "?":
                if index < len(children) and particle.admits(
                        children[index].label,
                        children[index].is_leaf):
                    index += 1
            else:
                if index >= len(children) or not particle.admits(
                        children[index].label,
                        children[index].is_leaf):
                    problems.append(
                        "<%s>: expected %s at child %d"
                        % (element.label, particle.render(), index))
                    return
                index += 1
        if index != len(children):
            problems.append(
                "<%s>: %d unexpected trailing child(ren) from <%s>"
                % (element.label, len(children) - index,
                   children[index].label))
            return
        for child in element.children:
            self._check(child, problems)


def _variable_names(query: XMASQuery) -> Dict[str, Tuple[str, ...]]:
    """Possible element names per body variable, from the final labels
    of the binding paths."""
    names: Dict[str, Tuple[str, ...]] = {}
    for cond in query.conditions:
        if isinstance(cond, PathCondition):
            finals = PathNFA(cond.path).final_labels()
            if finals is None or not finals:
                names[cond.var] = (ANY_NAME,)
            else:
                names[cond.var] = tuple(sorted(finals))
    return names


def infer_dtd(query: XMASQuery) -> InferredDTD:
    """Infer the answer-document DTD of an XMAS query."""
    var_names = _variable_names(query)
    declarations: List[ElementDecl] = []
    open_names: Set[str] = set()

    def particle_for_var(name: str, occurs: str) -> ContentParticle:
        names = var_names.get(name, (ANY_NAME,))
        open_names.update(names)
        return ContentParticle(names, occurs)

    def build(template: ElementTemplate) -> None:
        particles: List[ContentParticle] = []
        for child in template.children:
            if isinstance(child, LiteralContent):
                particles.append(ContentParticle((PCDATA,)))
            elif isinstance(child, VarUse):
                occurs = "*" if child.group is not None else ""
                particles.append(particle_for_var(child.name, occurs))
            else:
                # A nested element appears once per binding of its
                # marker within the enclosing group: {} -> exactly
                # one, {vars} -> zero or more.
                occurs = "" if not child.group else "*"
                particles.append(ContentParticle((child.tag,), occurs))
                build(child)
        declarations.append(ElementDecl(template.tag, particles))

    build(query.head)
    return InferredDTD(query.head.tag, declarations, open_names)
