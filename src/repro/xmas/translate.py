"""Translation of XMAS queries into XMAS algebra plans (paper Sec. 3).

The body becomes a dataflow of ``source``/``getDescendants`` chains
combined by joins and selections; the head becomes a bottom-up stack of
``groupBy`` / ``concatenate`` / ``createElement`` steps closed by
``tupleDestroy`` -- for the running example this reproduces Figure 4
node for node.

Supported construction fragment
-------------------------------
XMAS's explicit group-by markers make most of the translation direct,
but arbitrary mixtures of collected siblings require outer-union style
plans beyond this reproduction.  Each constructed element may contain,
in any order:

* literal text,
* plain variables (must be group keys of the element or an ancestor),
* EITHER any number of marked variables (``$S {$S}``)
  OR exactly one nested element template (arbitrarily deep),
  OR several nested element templates that all carry the *same* group
  marker and contain no further nesting (the common
  ``<homes>...</homes><schools>...</schools>`` report pattern).

A nested element without a marker defaults to ``{}``: one instance per
enclosing group member.  This covers the paper's queries and the usual
mediated-view patterns; violations raise
:class:`XMASTranslationError` with an explanation.

Collection semantics: ``{$S}`` collects one value per *body binding*
in the group (bag semantics), exactly the paper's groupBy operator --
note Figure 4 contains no duplicate elimination.  Over a body that is
a cartesian product of unjoined sources this multiplies collected
values; join the sources, query them separately, or wrap the body
variable in an explicit distinct plan when set semantics is wanted.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..algebra.operators import (
    Concatenate,
    Constant,
    CreateElement,
    GetDescendants,
    GroupBy,
    Join,
    Operator,
    Select,
    Source,
    TupleDestroy,
)
from ..algebra.predicates import Comparison, Const, Predicate, Var
from ..xtree.tree import Tree, leaf
from .ast import (
    ComparisonCondition,
    ElementTemplate,
    LiteralContent,
    PathCondition,
    VarUse,
    XMASQuery,
)

__all__ = ["translate", "XMASTranslationError"]


from ..errors import ReproError


class XMASTranslationError(ReproError):
    """Raised when a query is outside the supported XMAS fragment or
    semantically ill-formed (unbound/rebinding variables, etc.)."""


class _Fresh:
    """Generator of internal variable names that cannot clash with
    user variables (user vars never start with '_')."""

    def __init__(self):
        self.counter = 0

    def __call__(self, hint: str = "v") -> str:
        self.counter += 1
        return "_%s%d" % (hint, self.counter)


def translate(query: XMASQuery,
              source_urls: Optional[Dict[str, str]] = None
              ) -> TupleDestroy:
    """Translate a parsed XMAS query into a full algebra plan.

    ``source_urls`` optionally maps body source names to URLs (default:
    the names themselves are the URLs).
    """
    fresh = _Fresh()
    body = _translate_body(query, source_urls or {}, fresh)
    head_vars = _head_variables(query.head)
    bound = set(body.output_variables())
    unbound = head_vars - bound
    if unbound:
        raise XMASTranslationError(
            "head uses unbound variable(s): %s"
            % ", ".join("$" + v for v in sorted(unbound)))
    for var, _desc in query.order_by:
        if var not in bound:
            raise XMASTranslationError(
                "ORDER BY over unbound variable $%s" % var)
    # Mixed-direction multi-key ordering needs per-key stable passes,
    # applied in reverse significance order.
    from ..algebra.operators import OrderBy
    for var, descending in reversed(query.order_by):
        body = OrderBy(body, [var], descending)
    plan, out_var = _build_element(query.head, body, [], fresh)
    return TupleDestroy(plan, out_var)


# ----------------------------------------------------------------------
# Body
# ----------------------------------------------------------------------

def _translate_body(query: XMASQuery, source_urls: Dict[str, str],
                    fresh: _Fresh) -> Operator:
    path_conditions = [c for c in query.conditions
                       if isinstance(c, PathCondition)]
    comparisons = [c for c in query.conditions
                   if isinstance(c, ComparisonCondition)]

    # One component per source, keyed by the variables it binds.
    components: List[Tuple[Operator, Set[str]]] = []
    source_roots: Dict[str, str] = {}
    for name in query.source_names():
        root_var = fresh("root_" + name)
        url = source_urls.get(name, name)
        components.append((Source(url, root_var), {root_var}))
        source_roots[name] = root_var

    bound: Set[str] = set()
    for cond in path_conditions:
        if cond.var in bound:
            raise XMASTranslationError(
                "variable $%s is bound more than once" % cond.var)
        bound.add(cond.var)

    pending = list(path_conditions)
    while pending:
        progressed = False
        for cond in list(pending):
            base_var = (source_roots[cond.base] if cond.base_is_source
                        else cond.base[1])
            for index, (plan, vars_) in enumerate(components):
                if base_var in vars_:
                    components[index] = (
                        GetDescendants(plan, base_var, cond.path,
                                       cond.var),
                        vars_ | {cond.var},
                    )
                    pending.remove(cond)
                    progressed = True
                    break
        if not progressed:
            broken = ", ".join(str(c) for c in pending)
            raise XMASTranslationError(
                "path condition(s) with unbound base: %s" % broken)

    # Comparisons: same-component ones become selects; cross-component
    # ones become join predicates.
    def predicate_of(cond: ComparisonCondition) -> Predicate:
        right = (Var(cond.right[1]) if isinstance(cond.right, tuple)
                 else Const(cond.right))
        return Comparison(Var(cond.left), cond.op, right)

    def component_of(var: str) -> int:
        for index, (_plan, vars_) in enumerate(components):
            if var in vars_:
                return index
        raise XMASTranslationError(
            "comparison uses unbound variable $%s" % var)

    for cond in comparisons:
        pred = predicate_of(cond)
        involved = sorted({component_of(v) for v in pred.variables()})
        if not involved:
            continue
        if len(involved) == 1:
            index = involved[0]
            plan, vars_ = components[index]
            components[index] = (Select(plan, pred), vars_)
        else:
            # Join the first two involved components on this predicate;
            # additional components (3-way predicates) are unusual and
            # handled by folding.
            first, second = involved[0], involved[1]
            left_plan, left_vars = components[first]
            right_plan, right_vars = components[second]
            merged = (Join(left_plan, right_plan, pred),
                      left_vars | right_vars)
            remaining = [c for i, c in enumerate(components)
                         if i not in (first, second)]
            components = [merged] + remaining
            extra = involved[2:]
            if extra:
                raise XMASTranslationError(
                    "predicates spanning three or more sources are "
                    "not supported: %s" % cond)

    # Any components never tied by a predicate combine via product.
    from ..algebra.operators import product
    plan, vars_ = components[0]
    for other_plan, other_vars in components[1:]:
        plan = product(plan, other_plan)
        vars_ |= other_vars
    return plan


# ----------------------------------------------------------------------
# Head
# ----------------------------------------------------------------------

def _head_variables(template: ElementTemplate) -> Set[str]:
    names: Set[str] = set(template.group or [])
    for child in template.children:
        if isinstance(child, ElementTemplate):
            names |= _head_variables(child)
        elif isinstance(child, VarUse):
            names.add(child.name)
            names |= set(child.group or [])
    return names


def _build_sibling_elements(parent: ElementTemplate,
                            nested: List[ElementTemplate],
                            plan: Operator,
                            keys: Sequence[str],
                            fresh: _Fresh) -> Tuple[Operator, Dict]:
    """Several nested element templates under one parent.

    Supported when they all carry the same group marker and contain no
    further nesting: one joint groupBy collects every marked variable
    of every sibling, the siblings' instances are created per collapsed
    binding, and a second groupBy collects the instances per parent
    group.  Returns (plan, {id(child): list_var}).
    """
    markers = {tuple(c.group if c.group is not None else [])
               for c in nested}
    if len(markers) != 1:
        raise XMASTranslationError(
            "<%s> has nested elements with different group markers; "
            "only equal markers are supported for sibling templates"
            % parent.tag)
    sub_own = list(markers.pop())
    sub_keys = list(keys) + [v for v in sub_own if v not in keys]

    # Validate the siblings and gather their collected variables.
    agg_out: Dict[str, str] = {}
    aggregations: List[Tuple[str, str]] = []
    for child in nested:
        for item in child.children:
            if isinstance(item, ElementTemplate):
                raise XMASTranslationError(
                    "nested element <%s> inside the sibling group of "
                    "<%s> nests further; only one nested element per "
                    "element supports arbitrary depth"
                    % (item.tag, parent.tag))
            if isinstance(item, VarUse):
                if item.group is None:
                    if item.name not in sub_keys:
                        raise XMASTranslationError(
                            "plain variable $%s in <%s> is not a "
                            "group key (keys: %s)"
                            % (item.name, child.tag,
                               ", ".join("$" + k for k in sub_keys)))
                else:
                    if item.group != [item.name]:
                        raise XMASTranslationError(
                            "marker {%s} on $%s: only {$%s} is "
                            "supported"
                            % (", ".join("$" + g for g in item.group),
                               item.name, item.name))
                    if item.name not in agg_out:
                        out = fresh("L")
                        agg_out[item.name] = out
                        aggregations.append((item.name, out))

    plan = GroupBy(plan, sub_keys, aggregations)

    # Build each sibling's instance per collapsed binding.
    instance_vars: List[Tuple[ElementTemplate, str]] = []
    for child in nested:
        content_vars: List[str] = []
        for item in child.children:
            if isinstance(item, LiteralContent):
                const_var = fresh("c")
                plan = Constant(plan, leaf(item.text), const_var)
                content_vars.append(const_var)
            elif isinstance(item, VarUse) and item.group is None:
                content_vars.append(item.name)
            else:
                content_vars.append(agg_out[item.name])
        content_var = fresh("C")
        if content_vars:
            plan = Concatenate(plan, content_vars, content_var)
        else:
            plan = Constant(plan, Tree("list"), content_var)
        element_var = fresh("E")
        plan = CreateElement(plan, child.tag, content_var, element_var)
        instance_vars.append((child, element_var))

    # Collect the instances per parent group.
    parent_aggs = [(var, fresh("L")) for _child, var in instance_vars]
    plan = GroupBy(plan, list(keys), parent_aggs)
    collected = {
        id(child): out
        for (child, _var), (_in, out) in zip(instance_vars, parent_aggs)
    }
    return plan, collected


def _build_element(template: ElementTemplate, plan: Operator,
                   context_keys: Sequence[str],
                   fresh: _Fresh) -> Tuple[Operator, str]:
    """Build one element template.

    Returns a plan whose bindings are collapsed to one per distinct
    combination of ``context_keys + template.group``, with a variable
    holding the constructed element of each binding.
    """
    own = template.group if template.group is not None else []
    keys = list(context_keys) + [v for v in own
                                 if v not in context_keys]

    marked = [c for c in template.children
              if isinstance(c, VarUse) and c.group is not None]
    nested = [c for c in template.children
              if isinstance(c, ElementTemplate)]
    plain = [c for c in template.children
             if isinstance(c, VarUse) and c.group is None]

    if nested and marked:
        raise XMASTranslationError(
            "<%s> mixes a collected variable with a nested element; "
            "this is outside the supported XMAS fragment" % template.tag)

    for child in plain:
        if child.name not in keys:
            raise XMASTranslationError(
                "plain variable $%s in <%s> is not a group key of the "
                "element or an ancestor (keys here: %s); add a marker "
                "to collect it or group by it"
                % (child.name, template.tag,
                   ", ".join("$" + k for k in keys) or "none"))

    # Collapse the plan to `keys` granularity, collecting what needs
    # collecting.
    collected: Dict[int, str] = {}
    if len(nested) == 1:
        plan, instance_var = _build_element(nested[0], plan, keys, fresh)
        list_var = fresh("L")
        plan = GroupBy(plan, keys, [(instance_var, list_var)])
        collected[id(nested[0])] = list_var
    elif len(nested) > 1:
        plan, collected = _build_sibling_elements(template, nested,
                                                 plan, keys, fresh)
    else:
        aggregations = []
        for child in marked:
            if child.group != [child.name]:
                raise XMASTranslationError(
                    "marker {%s} on $%s: only the collect-self form "
                    "{$%s} is supported"
                    % (", ".join("$" + g for g in child.group),
                       child.name, child.name))
            out = fresh("L")
            aggregations.append((child.name, out))
            collected[id(child)] = out
        plan = GroupBy(plan, keys, aggregations)

    # Assemble the content in template order.
    content_vars: List[str] = []
    for child in template.children:
        if isinstance(child, LiteralContent):
            const_var = fresh("c")
            plan = Constant(plan, leaf(child.text), const_var)
            content_vars.append(const_var)
        elif isinstance(child, VarUse) and child.group is None:
            content_vars.append(child.name)
        else:
            content_vars.append(collected[id(child)])

    content_var = fresh("C")
    if content_vars:
        plan = Concatenate(plan, content_vars, content_var)
    else:
        plan = Constant(plan, Tree("list"), content_var)

    element_var = fresh("E")
    plan = CreateElement(plan, template.tag, content_var, element_var)
    return plan, element_var
