"""Shared wrapper helpers: wiring a wrapper + buffer into a navigable
source in one call, plus the source-native pushdown capability
contract.

The pushdown contract
---------------------

A wrapper may advertise that it can evaluate a compiled single-source
subplan natively by implementing two methods (no base class; the
capability is negotiated by presence):

``push_compile(compiled: CompiledSubplan) -> Optional[request]``
    Inspect the compiled chain and answer with a backend-specific
    request object (carrying a ``describe() -> str``), or None to
    decline.  Declining must be the answer whenever the wrapper
    cannot reproduce the lazy export byte-for-byte; accepting a chain
    it can only serve *conservatively* (shipping a superset of what
    the chain needs) is always sound, because the mediator replays
    the original subplan over the pushed result.

``push(request) -> Tree``
    Execute one previously compiled request against the backend in a
    single native evaluation and return the complete exported view
    (restricted as the request allows) as a closed tree.  The reply
    must be shaped exactly like the wrapper's incremental LXP export
    with every hole resolved.

Wrappers without the capability are never asked twice:
``negotiate_push`` answers None for them and the mediator keeps the
lazy chain, byte-identical to a pushdown-off run.
"""

from __future__ import annotations

from typing import Any, Optional, TYPE_CHECKING

from ..buffer.batch import BatchingBuffer
from ..buffer.component import BufferComponent
from ..buffer.lxp import LXPServer
from ..buffer.prefetch import AsyncPrefetchingBuffer, PrefetchingBuffer
from ..navigation.counting import CountingDocument
from ..navigation.interface import NavigableDocument

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..pushdown.compiled import CompiledSubplan

__all__ = ["buffered", "buffered_counting", "negotiate_push"]


def negotiate_push(server: Any,
                   compiled: "CompiledSubplan") -> Optional[Any]:
    """Offer ``compiled`` to ``server``; a request on acceptance.

    The capability negotiation of the pushdown seam: servers that do
    not implement ``push_compile`` (every plain LXP wrapper and
    document) keep today's lazy behavior untouched.
    """
    push_compile = getattr(server, "push_compile", None)
    if push_compile is None:
        return None
    return push_compile(compiled)


def buffered(server: LXPServer, prefetch: int = 0,
             workers: int = 0, batch: bool = False,
             tracer=None, name: str = "") -> BufferComponent:
    """Stack the generic buffer component on top of an LXP wrapper
    (the refined VXD architecture of Figure 7).

    ``prefetch`` is the lookahead budget; ``workers`` backs it with a
    thread pool (:class:`AsyncPrefetchingBuffer`); ``batch`` switches
    the demand path to pipelined ``fill_batch`` exchanges
    (:class:`BatchingBuffer`), with ``prefetch`` as the server-side
    speculation budget.  Batching subsumes the lookahead -- the
    speculative fills travel *inside* the demand round trip -- so it
    takes precedence when both are requested.  All defaults off
    reproduce the plain buffer byte-for-byte.

    ``tracer``/``name`` make the buffer's fills show up as
    ``buffer.fill`` / ``buffer.prefetch_fill`` spans in the causal
    trace (idle tracers cost nothing).
    """
    if batch:
        return BatchingBuffer(server, speculate=prefetch,
                              tracer=tracer, name=name)
    if workers > 0:
        return AsyncPrefetchingBuffer(server, lookahead=prefetch,
                                      workers=workers,
                                      tracer=tracer, name=name)
    if prefetch > 0:
        return PrefetchingBuffer(server, lookahead=prefetch,
                                 tracer=tracer, name=name)
    return BufferComponent(server, tracer=tracer, name=name)


def buffered_counting(server: LXPServer, name: str = "",
                      prefetch: int = 0, workers: int = 0,
                      batch: bool = False) -> CountingDocument:
    """A buffered wrapper with a navigation meter on top -- the
    standard experiment rig: mediator -> meter -> buffer -> wrapper."""
    return CountingDocument(buffered(server, prefetch, workers, batch),
                            name=name)
