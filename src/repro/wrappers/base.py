"""Shared wrapper helpers: wiring a wrapper + buffer into a navigable
source in one call."""

from __future__ import annotations

from typing import Optional

from ..buffer.batch import BatchingBuffer
from ..buffer.component import BufferComponent
from ..buffer.lxp import LXPServer
from ..buffer.prefetch import AsyncPrefetchingBuffer, PrefetchingBuffer
from ..navigation.counting import CountingDocument
from ..navigation.interface import NavigableDocument

__all__ = ["buffered", "buffered_counting"]


def buffered(server: LXPServer, prefetch: int = 0,
             workers: int = 0, batch: bool = False,
             tracer=None, name: str = "") -> BufferComponent:
    """Stack the generic buffer component on top of an LXP wrapper
    (the refined VXD architecture of Figure 7).

    ``prefetch`` is the lookahead budget; ``workers`` backs it with a
    thread pool (:class:`AsyncPrefetchingBuffer`); ``batch`` switches
    the demand path to pipelined ``fill_batch`` exchanges
    (:class:`BatchingBuffer`), with ``prefetch`` as the server-side
    speculation budget.  Batching subsumes the lookahead -- the
    speculative fills travel *inside* the demand round trip -- so it
    takes precedence when both are requested.  All defaults off
    reproduce the plain buffer byte-for-byte.

    ``tracer``/``name`` make the buffer's fills show up as
    ``buffer.fill`` / ``buffer.prefetch_fill`` spans in the causal
    trace (idle tracers cost nothing).
    """
    if batch:
        return BatchingBuffer(server, speculate=prefetch,
                              tracer=tracer, name=name)
    if workers > 0:
        return AsyncPrefetchingBuffer(server, lookahead=prefetch,
                                      workers=workers,
                                      tracer=tracer, name=name)
    if prefetch > 0:
        return PrefetchingBuffer(server, lookahead=prefetch,
                                 tracer=tracer, name=name)
    return BufferComponent(server, tracer=tracer, name=name)


def buffered_counting(server: LXPServer, name: str = "",
                      prefetch: int = 0, workers: int = 0,
                      batch: bool = False) -> CountingDocument:
    """A buffered wrapper with a navigation meter on top -- the
    standard experiment rig: mediator -> meter -> buffer -> wrapper."""
    return CountingDocument(buffered(server, prefetch, workers, batch),
                            name=name)
