"""Shared wrapper helpers: wiring a wrapper + buffer into a navigable
source in one call."""

from __future__ import annotations

from typing import Optional

from ..buffer.component import BufferComponent
from ..buffer.lxp import LXPServer
from ..buffer.prefetch import PrefetchingBuffer
from ..navigation.counting import CountingDocument
from ..navigation.interface import NavigableDocument

__all__ = ["buffered", "buffered_counting"]


def buffered(server: LXPServer, prefetch: int = 0) -> BufferComponent:
    """Stack the generic buffer component on top of an LXP wrapper
    (the refined VXD architecture of Figure 7)."""
    if prefetch > 0:
        return PrefetchingBuffer(server, lookahead=prefetch)
    return BufferComponent(server)


def buffered_counting(server: LXPServer, name: str = "",
                      prefetch: int = 0) -> CountingDocument:
    """A buffered wrapper with a navigation meter on top -- the
    standard experiment rig: mediator -> meter -> buffer -> wrapper."""
    return CountingDocument(buffered(server, prefetch), name=name)
