"""The XML-file wrapper: native XML sources through LXP.

A thin veneer over :class:`~repro.buffer.lxp.TreeLXPServer` that also
parses raw XML text and wraps the document in the exported document
node (labeled with the source name) whose children the mediator's path
expressions start from.
"""

from __future__ import annotations

from typing import Optional, Union

from ..buffer.holes import LXPProtocolError
from ..buffer.lxp import TreeLXPServer
from ..pushdown.compiled import CompiledSubplan, XPathScanRequest
from ..xtree.parse import parse_xml
from ..xtree.tree import Tree

__all__ = ["XMLFileWrapper", "document_node"]


def document_node(source_name: str, root: Tree) -> Tree:
    """Wrap a root element into the exported document node.

    The convention throughout the system: a source exports a root node
    whose children are the document's top-level elements, so paths like
    ``homes.home`` include the element name of the document root.
    """
    return Tree(source_name, [root])


class XMLFileWrapper(TreeLXPServer):
    """LXP server over an XML document (string or parsed tree).

    ``chunk_size``/``depth`` control the export granularity exactly as
    in TreeLXPServer.
    """

    def __init__(self, source_name: str,
                 document: Union[str, Tree],
                 chunk_size: int = 10, depth: int = 1000000,
                 keep_attributes: bool = True):
        if isinstance(document, str):
            document = parse_xml(document,
                                 keep_attributes=keep_attributes)
        super().__init__(document_node(source_name, document),
                         chunk_size=chunk_size, depth=depth)
        self.source_name = source_name

    # -- pushdown -------------------------------------------------------------
    def push_compile(self, compiled: CompiledSubplan
                     ) -> Optional[XPathScanRequest]:
        """Compile a chain into one XPath-style scan of the document.

        The document is already a single tree, so the native
        evaluation is one scan shipping it whole: the request records
        the chain's paths (the scan's guides, and what an XPath
        engine would receive), and the LXP chunk/depth dialogue
        disappears entirely.
        """
        return XPathScanRequest(
            self.source_name,
            tuple(str(step.path) for step in compiled.steps))

    def push(self, request: XPathScanRequest) -> Tree:
        """Evaluate a compiled scan: the complete document node."""
        if not isinstance(request, XPathScanRequest) or \
                request.source != self.source_name:
            raise LXPProtocolError(
                "request %r does not belong to source %r"
                % (request, self.source_name))
        return self.tree
