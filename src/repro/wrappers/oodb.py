"""The OODB LXP wrapper over the object-store substrate.

Exported view::

    storename[ ClassName[ object[oid[...], attr[...], ...], ..., hole ],
               ... ]

Atoms become text leaves, references become ``ref[oid]`` leaves (the
client can dereference by querying the class extents), list attributes
fan out into repeated children.  Extents ship ``chunk_size`` objects
per fill with a trailing hole -- the OODB's natural granularity is the
object, mirroring the relational wrapper's tuple.
"""

from __future__ import annotations

from typing import List, Optional

from ..buffer.holes import FragElem, FragHole, Fragment, LXPProtocolError
from ..buffer.lxp import LXPServer, LXPStats, measure_fragment
from ..oodb.store import ObjectStore, OObject
from ..pushdown.compiled import (
    CompiledSubplan,
    OODBPathQuery,
    child_restriction,
)
from ..runtime.config import validate_granularity
from ..xtree.tree import Tree

__all__ = ["OODBLXPWrapper"]


class OODBLXPWrapper(LXPServer):
    """LXP server over an object store (see module docstring for the
    exported view shape).  ``chunk_size`` objects ship per extent
    fill."""

    def __init__(self, store: ObjectStore,
                 chunk_size: Optional[int] = None):
        self.store = store
        self.chunk_size, _ = validate_granularity(chunk_size)
        self.stats = LXPStats()

    def get_root(self) -> FragHole:
        return FragHole(("store",))

    def _ship_value(self, value) -> List[FragElem]:
        if isinstance(value, OObject):
            return [FragElem("ref", (FragElem(value.oid),))]
        if isinstance(value, list):
            shipped: List[FragElem] = []
            for item in value:
                shipped.extend(self._ship_value(item))
            return shipped
        return [FragElem(_atom(value))]

    def _ship_object(self, obj: OObject) -> FragElem:
        children = [FragElem("oid", (FragElem(obj.oid),))]
        for attribute in obj.oclass.attributes:
            value = obj.get(attribute)
            if value is None:
                children.append(FragElem(attribute))
            else:
                children.append(
                    FragElem(attribute, tuple(self._ship_value(value))))
        return FragElem("object", tuple(children))

    # -- pushdown -------------------------------------------------------------
    def push_compile(self, compiled: CompiledSubplan
                     ) -> Optional[OODBPathQuery]:
        """Compile a chain into one path query over the class extents.

        The OODB's native bulk operation is shipping whole extents;
        when the chain provably touches only some classes
        (``child_restriction`` on the store root) the query names just
        those, otherwise every extent ships -- either way in a single
        native evaluation.
        """
        keep = child_restriction(compiled, compiled.root_var)
        classes: Optional[tuple] = None
        if keep is not None:
            classes = tuple(name for name in self.store.class_names
                            if name in keep)
        return OODBPathQuery(self.store.name, classes)

    def push(self, request: OODBPathQuery) -> Tree:
        """Evaluate a compiled path query: the kept extents, complete,
        as the closed export tree."""
        if not isinstance(request, OODBPathQuery) or \
                request.store != self.store.name:
            raise LXPProtocolError(
                "request %r does not belong to store %r"
                % (request, self.store.name))
        names = self.store.class_names if request.classes is None \
            else request.classes
        classes = tuple(
            Tree(name, tuple(self._object_tree(obj)
                             for obj in self.store.extent(name)))
            for name in names)
        return Tree(self.store.name, classes)

    def _value_trees(self, value) -> List[Tree]:
        if isinstance(value, OObject):
            return [Tree("ref", (Tree(value.oid),))]
        if isinstance(value, list):
            shipped: List[Tree] = []
            for item in value:
                shipped.extend(self._value_trees(item))
            return shipped
        return [Tree(_atom(value))]

    def _object_tree(self, obj: OObject) -> Tree:
        children = [Tree("oid", (Tree(obj.oid),))]
        for attribute in obj.oclass.attributes:
            value = obj.get(attribute)
            if value is None:
                children.append(Tree(attribute))
            else:
                children.append(
                    Tree(attribute, tuple(self._value_trees(value))))
        return Tree("object", tuple(children))

    def fill(self, hole_id) -> List[Fragment]:
        if hole_id == ("store",):
            classes = tuple(
                FragElem(name, (FragHole(("extent", name, 0)),))
                for name in self.store.class_names
            )
            reply: List[Fragment] = [FragElem(self.store.name, classes)]
            measure_fragment(self.stats, reply)
            return reply
        try:
            kind, class_name, start = hole_id
        except (TypeError, ValueError):
            raise LXPProtocolError("unknown hole id %r" % (hole_id,))
        if kind != "extent":
            raise LXPProtocolError("unknown hole id %r" % (hole_id,))
        extent = self.store.extent(class_name)
        end = min(start + self.chunk_size, len(extent))
        reply = [self._ship_object(obj) for obj in extent[start:end]]
        if end < len(extent):
            reply.append(FragHole(("extent", class_name, end)))
        measure_fragment(self.stats, reply)
        return reply


def _atom(value) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)
