"""The relational LXP wrapper (paper Section 4, "Relational LXP
Wrapper"), over the :mod:`repro.relational` engine.

The exported XML view is::

    db_name[ table1[ row1[a11[v11], ...], ..., hole ], table2[...], ... ]

with the paper's stateless hole identifiers::

    hole[db_name]                  the whole database
    hole[db_name.table]            a table's rows, from the start
    hole[db_name.table.j]          rows j, j+1, ... of a table

On each row-level fill the wrapper returns the next ``n`` tuples
*completely* ("the wrapper does not have to deal with navigations at
the attribute level") and one trailing hole when rows remain.  The
underlying cursor traffic is visible via the connection's statement
counter and each cursor's ``advances`` -- the quantities experiment E4
sweeps against chunk size.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..algebra.predicates import compare_values
from ..buffer.holes import FragElem, FragHole, Fragment, LXPProtocolError
from ..buffer.lxp import LXPServer, LXPStats, measure_fragment
from ..pushdown.compiled import (
    CompiledSubplan,
    RelationalPushRequest,
    TableScan,
    child_restriction,
    comparison_filter,
    first_labels,
    single_hop_value_column,
    sql_exact_filter,
)
from ..relational.database import Connection
from ..runtime.config import validate_granularity
from ..xtree.tree import Tree

__all__ = ["RelationalLXPWrapper", "RelationalQueryWrapper"]


class RelationalLXPWrapper(LXPServer):
    """LXP server over a relational connection.

    Parameters
    ----------
    connection:
        An open :class:`repro.relational.Connection`.
    chunk_size:
        ``n``: rows shipped per table/row-level fill.
    """

    def __init__(self, connection: Connection,
                 chunk_size: Optional[int] = None):
        self.connection = connection
        self.chunk_size, _ = validate_granularity(chunk_size)
        self.stats = LXPStats()
        #: per-table row cursors kept across fills so that consecutive
        #: row-level fills advance rather than restart
        self._cursors: Dict[str, object] = {}
        self._cursor_pos: Dict[str, int] = {}

    @property
    def db_name(self) -> str:
        return self.connection.database.name

    # -- LXP -----------------------------------------------------------------
    def get_root(self) -> FragHole:
        return FragHole(self.db_name)

    def fill(self, hole_id) -> List[Fragment]:
        parts = str(hole_id).split(".")
        if parts[0] != self.db_name:
            raise LXPProtocolError(
                "hole %r does not belong to database %r"
                % (hole_id, self.db_name))
        if len(parts) == 1:
            reply = [self._fill_database()]
        elif len(parts) == 2:
            reply = self._fill_rows(parts[1], 0)
        elif len(parts) == 3:
            reply = self._fill_rows(parts[1], int(parts[2]))
        else:
            raise LXPProtocolError("malformed hole id %r" % (hole_id,))
        measure_fragment(self.stats, reply)
        return reply

    # -- levels ---------------------------------------------------------------
    def _fill_database(self) -> FragElem:
        """Database level: the schema -- one table element per table,
        rows unexplored."""
        tables = []
        for name in self.connection.tables():
            tables.append(FragElem(
                name, (FragHole("%s.%s" % (self.db_name, name)),)))
        return FragElem(self.db_name, tuple(tables))

    def _rows_cursor(self, table: str, start: int):
        """A cursor positioned so its next advance yields row ``start``.

        Reuses the live cursor when the request continues where the
        previous fill stopped (the common forward-browsing case);
        otherwise opens a fresh SELECT and skips forward.
        """
        cursor = self._cursors.get(table)
        if cursor is None or self._cursor_pos[table] != start:
            cursor = self.connection.execute(
                "SELECT * FROM %s" % table)
            skipped = 0
            while skipped < start:
                if cursor.advance() is None:
                    break
                skipped += 1
            self._cursors[table] = cursor
            self._cursor_pos[table] = start
        return cursor

    def _fill_rows(self, table: str, start: int) -> List[Fragment]:
        columns = self.connection.columns(table)
        cursor = self._rows_cursor(table, start)
        reply: List[Fragment] = []
        shipped = 0
        while shipped < self.chunk_size:
            row = cursor.advance()
            if row is None:
                break
            attrs = tuple(
                FragElem(col, (FragElem(_atom(value)),)
                         if value is not None and _atom(value) != ""
                         else ())
                for col, value in zip(columns, row)
            )
            reply.append(FragElem("row%d" % (start + shipped + 1),
                                  attrs))
            shipped += 1
        self._cursor_pos[table] = start + shipped
        if shipped == self.chunk_size and not cursor.exhausted:
            reply.append(FragHole(
                "%s.%s.%d" % (self.db_name, table, start + shipped)))
        return reply

    # -- pushdown -------------------------------------------------------------
    def push_compile(self, compiled: CompiledSubplan
                     ) -> Optional[RelationalPushRequest]:
        """Compile a pushable chain into one merged SELECT per table.

        Tables the chain can never reach are dropped entirely; within
        a kept table, recognized ``col OP literal`` filters become row
        filters and -- when the row elements themselves are
        unobservable -- unread columns are projected away and
        surviving rows renumbered.  Anything not provably foldable is
        simply shipped, leaving the mediator's residual replay to
        finish the job, so this never declines.
        """
        keep = child_restriction(compiled, compiled.root_var)
        scans = tuple(
            self._compile_scan(compiled, table)
            for table in self.connection.tables()
            if keep is None or table in keep)
        return RelationalPushRequest(self.db_name, scans)

    def _compile_scan(self, compiled: CompiledSubplan,
                      table: str) -> TableScan:
        # The canonical row step: the unique chain hop out of the
        # database root that can reach this table's rows, in the
        # ``table._`` shape the export guarantees binds whole rows.
        candidates = []
        for step in compiled.steps_from(compiled.root_var):
            labels = first_labels(step.path)
            if labels is None or table in labels:
                candidates.append(step)
        if len(candidates) != 1 or \
                single_hop_value_column(candidates[0].path) != table:
            return TableScan(table)
        row_var = candidates[0].out_var
        renumber = row_var not in compiled.output_vars
        filters = self._row_filters(compiled, row_var, table,
                                    sql_only=renumber)
        columns: Optional[Tuple[str, ...]] = None
        if renumber:
            keep_cols = child_restriction(compiled, row_var)
            if keep_cols is not None:
                all_cols = self.connection.columns(table)
                selected = tuple(c for c in all_cols if c in keep_cols)
                if selected and len(selected) < len(all_cols):
                    columns = selected
        return TableScan(table, columns, filters, renumber=renumber)

    def _row_filters(self, compiled: CompiledSubplan, row_var: str,
                     table: str, sql_only: bool
                     ) -> Tuple[Tuple[str, str, str], ...]:
        """The chain filters this table scan may apply itself.

        A filter folds only when its variable is bound by a single-hop
        ``col._`` step out of the row; with ``sql_only`` (the
        renumbering SELECT actually executes the WHERE clause) it must
        additionally name a real column and survive the SQL dialect's
        weak typing exactly (``sql_exact_filter``) -- otherwise the
        wrapper evaluates it with the mediator's own
        ``compare_values``, where a column the schema lacks just means
        every row is dead, exactly as the lazy chain would find.
        """
        steps_by_out = {s.out_var: s for s in compiled.steps}
        schema = set(self.connection.columns(table))
        filters = []
        for predicate in compiled.filters:
            recognized = comparison_filter(predicate)
            if recognized is None:
                continue
            var, op, literal = recognized
            step = steps_by_out.get(var)
            if step is None or step.parent_var != row_var:
                continue
            column = single_hop_value_column(step.path)
            if column is None:
                continue
            if sql_only and (column not in schema
                             or not sql_exact_filter(op, literal)):
                continue
            filters.append((column, op, literal))
        return tuple(filters)

    def push(self, request: RelationalPushRequest) -> Tree:
        """Evaluate a compiled request: one native statement per scan,
        shipped as the complete closed export tree."""
        if not isinstance(request, RelationalPushRequest) or \
                request.database != self.db_name:
            raise LXPProtocolError(
                "request %r does not belong to database %r"
                % (request, self.db_name))
        return Tree(self.db_name, tuple(
            self._scan_tree(scan) for scan in request.scans))

    def _scan_tree(self, scan: TableScan) -> Tree:
        if scan.renumber:
            cursor = self.connection.execute(scan.sql)
        else:
            cursor = self.connection.execute(
                "SELECT * FROM %s" % scan.table)
        columns = cursor.column_names
        rows: List[Tree] = []
        position = 0
        while True:
            row = cursor.advance()
            if row is None:
                break
            position += 1
            if not scan.renumber and not _row_passes(
                    columns, row, scan.row_filters):
                continue
            number = len(rows) + 1 if scan.renumber else position
            cells = tuple(
                Tree(col, (Tree(_atom(value)),))
                if value is not None and _atom(value) != "" else
                Tree(col, ())
                for col, value in zip(columns, row))
            rows.append(Tree("row%d" % number, cells))
        return Tree(scan.table, tuple(rows))


def _row_passes(columns: Tuple[str, ...], row,
                filters: Tuple[Tuple[str, str, str], ...]) -> bool:
    """Mediator-exact row filtering for un-renumbered scans: a row
    survives only if every filtered cell would have produced a binding
    the chain's Select keeps."""
    if not filters:
        return True
    by_column = dict(zip(columns, row))
    for column, op, literal in filters:
        value = by_column.get(column)
        if value is None:
            return False
        text = _atom(value)
        if text == "" or not compare_values(text, op, literal):
            return False
    return True


def _atom(value) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)


class RelationalQueryWrapper(LXPServer):
    """A relational wrapper serving one SQL query's result (Example 5
    and Figure 6 of the paper).

    "Consider a relational wrapper that has translated a XMAS query
    into an SQL query.  The resulting view on the source has the
    following format: view[tuple[att1[...], ..., attk[...]]]".

    The wrapper holds the live cursor; each fill advances it by up to
    ``chunk_size`` tuples and ships them *completely* (attribute-level
    navigation never reaches the database).  Hole ids are plain row
    offsets; because cursors are forward-only, random re-fills re-run
    the query and skip (footnote: real systems would use scrollable
    cursors -- the re-run cost is visible in the connection's
    statement counter, which is the honest substitute).
    """

    def __init__(self, connection: Connection, sql: str,
                 chunk_size: Optional[int] = None,
                 view_label: str = "view", tuple_label: str = "tuple"):
        chunk_size, _ = validate_granularity(chunk_size)
        self.connection = connection
        self.sql = sql
        self.chunk_size = chunk_size
        self.view_label = view_label
        self.tuple_label = tuple_label
        self.stats = LXPStats()
        self._cursor = None
        self._cursor_pos = 0

    def _cursor_at(self, start: int):
        if self._cursor is None or self._cursor_pos != start:
            self._cursor = self.connection.execute(self.sql)
            skipped = 0
            while skipped < start:
                if self._cursor.advance() is None:
                    break
                skipped += 1
            self._cursor_pos = start
        return self._cursor

    def get_root(self) -> FragHole:
        return FragHole(("view",))

    def _ship_tuples(self, start: int) -> List[Fragment]:
        cursor = self._cursor_at(start)
        columns = cursor.column_names
        reply: List[Fragment] = []
        shipped = 0
        while shipped < self.chunk_size:
            row = cursor.advance()
            if row is None:
                break
            attrs = tuple(
                FragElem(col, (FragElem(_atom(value)),)
                         if value is not None and _atom(value) != ""
                         else ())
                for col, value in zip(columns, row)
            )
            reply.append(FragElem(self.tuple_label, attrs))
            shipped += 1
        self._cursor_pos = start + shipped
        if shipped == self.chunk_size and not cursor.exhausted:
            reply.append(FragHole(("rows", start + shipped)))
        return reply

    def fill(self, hole_id) -> List[Fragment]:
        if hole_id == ("view",):
            reply: List[Fragment] = [FragElem(
                self.view_label, tuple(self._ship_tuples(0)))]
        else:
            try:
                kind, start = hole_id
            except (TypeError, ValueError):
                raise LXPProtocolError(
                    "unknown hole id %r" % (hole_id,))
            if kind != "rows":
                raise LXPProtocolError(
                    "unknown hole id %r" % (hole_id,))
            reply = self._ship_tuples(start)
        measure_fragment(self.stats, reply)
        return reply
