"""The relational LXP wrapper (paper Section 4, "Relational LXP
Wrapper"), over the :mod:`repro.relational` engine.

The exported XML view is::

    db_name[ table1[ row1[a11[v11], ...], ..., hole ], table2[...], ... ]

with the paper's stateless hole identifiers::

    hole[db_name]                  the whole database
    hole[db_name.table]            a table's rows, from the start
    hole[db_name.table.j]          rows j, j+1, ... of a table

On each row-level fill the wrapper returns the next ``n`` tuples
*completely* ("the wrapper does not have to deal with navigations at
the attribute level") and one trailing hole when rows remain.  The
underlying cursor traffic is visible via the connection's statement
counter and each cursor's ``advances`` -- the quantities experiment E4
sweeps against chunk size.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..buffer.holes import FragElem, FragHole, Fragment, LXPProtocolError
from ..buffer.lxp import LXPServer, LXPStats, measure_fragment
from ..relational.database import Connection
from ..runtime.config import validate_granularity

__all__ = ["RelationalLXPWrapper", "RelationalQueryWrapper"]


class RelationalLXPWrapper(LXPServer):
    """LXP server over a relational connection.

    Parameters
    ----------
    connection:
        An open :class:`repro.relational.Connection`.
    chunk_size:
        ``n``: rows shipped per table/row-level fill.
    """

    def __init__(self, connection: Connection,
                 chunk_size: Optional[int] = None):
        self.connection = connection
        self.chunk_size, _ = validate_granularity(chunk_size)
        self.stats = LXPStats()
        #: per-table row cursors kept across fills so that consecutive
        #: row-level fills advance rather than restart
        self._cursors: Dict[str, object] = {}
        self._cursor_pos: Dict[str, int] = {}

    @property
    def db_name(self) -> str:
        return self.connection.database.name

    # -- LXP -----------------------------------------------------------------
    def get_root(self) -> FragHole:
        return FragHole(self.db_name)

    def fill(self, hole_id) -> List[Fragment]:
        parts = str(hole_id).split(".")
        if parts[0] != self.db_name:
            raise LXPProtocolError(
                "hole %r does not belong to database %r"
                % (hole_id, self.db_name))
        if len(parts) == 1:
            reply = [self._fill_database()]
        elif len(parts) == 2:
            reply = self._fill_rows(parts[1], 0)
        elif len(parts) == 3:
            reply = self._fill_rows(parts[1], int(parts[2]))
        else:
            raise LXPProtocolError("malformed hole id %r" % (hole_id,))
        measure_fragment(self.stats, reply)
        return reply

    # -- levels ---------------------------------------------------------------
    def _fill_database(self) -> FragElem:
        """Database level: the schema -- one table element per table,
        rows unexplored."""
        tables = []
        for name in self.connection.tables():
            tables.append(FragElem(
                name, (FragHole("%s.%s" % (self.db_name, name)),)))
        return FragElem(self.db_name, tuple(tables))

    def _rows_cursor(self, table: str, start: int):
        """A cursor positioned so its next advance yields row ``start``.

        Reuses the live cursor when the request continues where the
        previous fill stopped (the common forward-browsing case);
        otherwise opens a fresh SELECT and skips forward.
        """
        cursor = self._cursors.get(table)
        if cursor is None or self._cursor_pos[table] != start:
            cursor = self.connection.execute(
                "SELECT * FROM %s" % table)
            skipped = 0
            while skipped < start:
                if cursor.advance() is None:
                    break
                skipped += 1
            self._cursors[table] = cursor
            self._cursor_pos[table] = start
        return cursor

    def _fill_rows(self, table: str, start: int) -> List[Fragment]:
        columns = self.connection.columns(table)
        cursor = self._rows_cursor(table, start)
        reply: List[Fragment] = []
        shipped = 0
        while shipped < self.chunk_size:
            row = cursor.advance()
            if row is None:
                break
            attrs = tuple(
                FragElem(col, (FragElem(_atom(value)),)
                         if value is not None and _atom(value) != ""
                         else ())
                for col, value in zip(columns, row)
            )
            reply.append(FragElem("row%d" % (start + shipped + 1),
                                  attrs))
            shipped += 1
        self._cursor_pos[table] = start + shipped
        if shipped == self.chunk_size and not cursor.exhausted:
            reply.append(FragHole(
                "%s.%s.%d" % (self.db_name, table, start + shipped)))
        return reply


def _atom(value) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)


class RelationalQueryWrapper(LXPServer):
    """A relational wrapper serving one SQL query's result (Example 5
    and Figure 6 of the paper).

    "Consider a relational wrapper that has translated a XMAS query
    into an SQL query.  The resulting view on the source has the
    following format: view[tuple[att1[...], ..., attk[...]]]".

    The wrapper holds the live cursor; each fill advances it by up to
    ``chunk_size`` tuples and ships them *completely* (attribute-level
    navigation never reaches the database).  Hole ids are plain row
    offsets; because cursors are forward-only, random re-fills re-run
    the query and skip (footnote: real systems would use scrollable
    cursors -- the re-run cost is visible in the connection's
    statement counter, which is the honest substitute).
    """

    def __init__(self, connection: Connection, sql: str,
                 chunk_size: Optional[int] = None,
                 view_label: str = "view", tuple_label: str = "tuple"):
        chunk_size, _ = validate_granularity(chunk_size)
        self.connection = connection
        self.sql = sql
        self.chunk_size = chunk_size
        self.view_label = view_label
        self.tuple_label = tuple_label
        self.stats = LXPStats()
        self._cursor = None
        self._cursor_pos = 0

    def _cursor_at(self, start: int):
        if self._cursor is None or self._cursor_pos != start:
            self._cursor = self.connection.execute(self.sql)
            skipped = 0
            while skipped < start:
                if self._cursor.advance() is None:
                    break
                skipped += 1
            self._cursor_pos = start
        return self._cursor

    def get_root(self) -> FragHole:
        return FragHole(("view",))

    def _ship_tuples(self, start: int) -> List[Fragment]:
        cursor = self._cursor_at(start)
        columns = cursor.column_names
        reply: List[Fragment] = []
        shipped = 0
        while shipped < self.chunk_size:
            row = cursor.advance()
            if row is None:
                break
            attrs = tuple(
                FragElem(col, (FragElem(_atom(value)),)
                         if value is not None and _atom(value) != ""
                         else ())
                for col, value in zip(columns, row)
            )
            reply.append(FragElem(self.tuple_label, attrs))
            shipped += 1
        self._cursor_pos = start + shipped
        if shipped == self.chunk_size and not cursor.exhausted:
            reply.append(FragHole(("rows", start + shipped)))
        return reply

    def fill(self, hole_id) -> List[Fragment]:
        if hole_id == ("view",):
            reply: List[Fragment] = [FragElem(
                self.view_label, tuple(self._ship_tuples(0)))]
        else:
            try:
                kind, start = hole_id
            except (TypeError, ValueError):
                raise LXPProtocolError(
                    "unknown hole id %r" % (hole_id,))
            if kind != "rows":
                raise LXPProtocolError(
                    "unknown hole id %r" % (hole_id,))
            reply = self._ship_tuples(start)
        measure_fragment(self.stats, reply)
        return reply
