"""Source wrappers (Figure 1 / Section 4): relational, web, OODB and
native-XML LXP servers, plus buffer wiring helpers."""

from .base import buffered, buffered_counting
from .oodb import OODBLXPWrapper
from .relational import RelationalLXPWrapper, RelationalQueryWrapper
from .web import WebLXPWrapper
from .xmlfile import XMLFileWrapper, document_node

__all__ = [
    "RelationalLXPWrapper", "RelationalQueryWrapper",
    "WebLXPWrapper", "OODBLXPWrapper",
    "XMLFileWrapper", "document_node", "buffered", "buffered_counting",
]
