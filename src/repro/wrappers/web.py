"""The HTML/Web LXP wrapper over the synthetic web substrate.

The exported view of a paginated catalog site is one element holding
*all* items of the listing, with the pagination dissolved::

    sitename[ item, item, ..., hole ]

The wrapper fetches pages on demand through the cost-charging
:class:`~repro.webstore.site.HttpSimulator`; each fill ships one whole
page of items ("a wrapper for Web (HTML) sources may ship data at a
page-at-a-time granularity") and leaves a hole carrying the next-page
URL.  Following the chain of ``next`` links lazily is what lets a
client browse the first results of a huge bookseller listing without
downloading the catalog.
"""

from __future__ import annotations

from typing import List, Optional

from ..buffer.holes import FragElem, FragHole, Fragment, LXPProtocolError
from ..buffer.lxp import LXPServer, LXPStats, measure_fragment
from ..pushdown.compiled import CompiledSubplan, PageFetchRequest
from ..webstore.site import HttpSimulator
from ..xtree.tree import Tree

__all__ = ["WebLXPWrapper"]


def _closed(tree: Tree) -> FragElem:
    return FragElem(tree.label,
                    tuple(_closed(c) for c in tree.children))


class WebLXPWrapper(LXPServer):
    """LXP server over a paginated web site.

    Parameters
    ----------
    http:
        The HttpSimulator wired to the site (carries the traffic
        stats the experiments read).
    first_page:
        URL of the first listing page.
    root_label:
        Label of the exported root element (defaults to the site name).
    """

    NEXT_LABEL = "next"

    def __init__(self, http: HttpSimulator, first_page: str = "/page/0",
                 root_label: Optional[str] = None):
        self.http = http
        self.first_page = first_page
        self.root_label = root_label or http.site.name
        self.stats = LXPStats()

    def get_root(self) -> FragHole:
        return FragHole(("page", self.first_page, True))

    def _page_items(self, url: str):
        page = self.http.fetch(url)
        items = []
        next_url = None
        for child in page.children:
            if child.label == self.NEXT_LABEL:
                next_url = child.text()
            else:
                items.append(_closed(child))
        return items, next_url

    # -- pushdown -------------------------------------------------------------
    def push_compile(self, compiled: CompiledSubplan
                     ) -> Optional[PageFetchRequest]:
        """Compile any chain into one drain of the page chain.

        A paginated listing offers no finer native operation than
        "follow the next links to the end", so every chain compiles to
        the same request; the gain is collapsing the per-page LXP
        dialogue into a single round that the mediator then navigates
        buffer-locally.
        """
        del compiled  # every chain compiles to the full drain
        return PageFetchRequest(self.first_page)

    def push(self, request: PageFetchRequest) -> Tree:
        """Fetch the whole listing in one request chain and return the
        dissolved-pagination export, closed."""
        if not isinstance(request, PageFetchRequest):
            raise LXPProtocolError("unknown request %r" % (request,))
        items: List[Tree] = []
        url: Optional[str] = request.first_page
        while url is not None:
            page = self.http.fetch(url)
            next_url = None
            for child in page.children:
                if child.label == self.NEXT_LABEL:
                    next_url = child.text()
                else:
                    items.append(child)
            url = next_url
        return Tree(self.root_label, tuple(items))

    def fill(self, hole_id) -> List[Fragment]:
        try:
            kind, url, is_root = hole_id
        except (TypeError, ValueError):
            raise LXPProtocolError("unknown hole id %r" % (hole_id,))
        if kind != "page":
            raise LXPProtocolError("unknown hole id %r" % (hole_id,))
        items, next_url = self._page_items(url)
        tail: List[Fragment] = []
        if next_url is not None:
            tail = [FragHole(("page", next_url, False))]
        if is_root:
            reply: List[Fragment] = [
                FragElem(self.root_label, tuple(items) + tuple(tail))]
        else:
            reply = list(items) + tail
        measure_fragment(self.stats, reply)
        return reply
