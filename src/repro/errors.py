"""The common exception hierarchy.

Every error this library raises for *expected* failure modes (bad
queries, protocol violations, unknown names, malformed inputs) derives
from :class:`ReproError`, so downstream code can write one handler::

    try:
        root = mediator.query(text)
    except ReproError as err:
        ...

Programming errors (wrong types passed to constructors and the like)
still surface as the builtin TypeError/ValueError.
"""

__all__ = ["ReproError"]


class ReproError(Exception):
    """Base class of all expected repro errors."""
