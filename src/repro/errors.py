"""The common exception hierarchy.

Every error this library raises for *expected* failure modes (bad
queries, protocol violations, unknown names, malformed inputs) derives
from :class:`ReproError`, so downstream code can write one handler::

    try:
        root = mediator.query(text)
    except ReproError as err:
        ...

Programming errors (wrong types passed to constructors and the like)
still surface as the builtin TypeError/ValueError.

Source-failure taxonomy
-----------------------

The resilience layer (:mod:`repro.runtime.resilience`) needs to know
which failures are worth retrying.  Wrappers and channels classify
their faults into two branches of :class:`SourceError`:

* :class:`TransientSourceError` -- the operation *may* succeed if
  repeated: a dropped connection, a timeout, an overloaded source.
  Retry policies apply; circuit breakers count these.
* :class:`PermanentSourceError` -- repeating the identical request
  cannot help: unknown hole ids, protocol violations, missing pages,
  schema errors.  These fail (or degrade) immediately, never retry.

Failures raised by code outside this library are classified by
:func:`classify_failure`: the builtin ``ConnectionError`` and
``TimeoutError`` count as transient, everything else as permanent.
"""

__all__ = [
    "ReproError",
    "SourceError",
    "StaticAnalysisError",
    "TransientSourceError",
    "PermanentSourceError",
    "classify_failure",
    "is_transient",
]


class ReproError(Exception):
    """Base class of all expected repro errors."""


class StaticAnalysisError(ReproError):
    """A query was rejected by the static plan analyzer.

    Raised by ``MIXMediator.prepare(..., analyze="static")`` when the
    analysis finds errors (or, with ``analyze="strict"``, warnings).
    Carries the full :class:`~repro.analysis.findings.AnalysisReport`
    as :attr:`report` so callers can render or export the findings.
    """

    def __init__(self, message: str, report=None):
        super().__init__(message)
        self.report = report


class SourceError(ReproError):
    """A failure attributable to a source or a channel."""


class TransientSourceError(SourceError):
    """A source/channel failure that may heal on retry."""


class PermanentSourceError(SourceError):
    """A source/channel failure that retrying cannot fix."""


#: exception types the resilience layer treats as *expected* failures
#: (eligible for retry accounting and degrade mode); anything else is
#: a programming error and propagates untouched.
FAILURE_TYPES = (SourceError, ReproError, ConnectionError, TimeoutError,
                 OSError)


def is_transient(error: BaseException) -> bool:
    """Whether ``error`` is worth retrying."""
    if isinstance(error, TransientSourceError):
        return True
    if isinstance(error, SourceError):
        return False
    return isinstance(error, (ConnectionError, TimeoutError))


def classify_failure(error: BaseException) -> str:
    """``"transient"`` or ``"permanent"`` for any exception.

    Library errors carry their class in the taxonomy; foreign
    exceptions are classified conservatively (only the builtins that
    plainly mean "try again" are transient).
    """
    return "transient" if is_transient(error) else "permanent"
