"""Navigation over an in-memory tree (the "ideal source").

Pointers are child-index paths (tuples of ints), so they are hashable,
stable, and encode their own position -- the same design philosophy as
the mediator's Skolem-style node-ids.  A pointer cache avoids repeated
root-to-node walks for interactive access patterns.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..xtree.tree import Tree
from .interface import NavigableDocument

__all__ = ["MaterializedDocument", "TreePointer"]

#: A pointer into a materialized document: the child-index path from
#: the root ('()' is the root itself).
TreePointer = Tuple[int, ...]


class MaterializedDocument(NavigableDocument):
    """Expose a :class:`Tree` through the DOM-VXD interface."""

    def __init__(self, tree: Tree):
        self.tree = tree
        self._nodes: Dict[TreePointer, Tree] = {(): tree}

    # -- helpers ---------------------------------------------------------
    def node_at(self, pointer: TreePointer) -> Tree:
        """Resolve a pointer to its tree node (cached)."""
        node = self._nodes.get(pointer)
        if node is not None:
            return node
        parent = self.node_at(pointer[:-1])
        node = parent.child(pointer[-1])
        self._nodes[pointer] = node
        return node

    # -- NavigableDocument -----------------------------------------------
    def root(self) -> TreePointer:
        return ()

    def down(self, pointer: TreePointer) -> Optional[TreePointer]:
        node = self.node_at(pointer)
        if node.is_leaf:
            return None
        return pointer + (0,)

    def right(self, pointer: TreePointer) -> Optional[TreePointer]:
        if not pointer:
            return None  # the root has no siblings
        parent = self.node_at(pointer[:-1])
        index = pointer[-1] + 1
        if index >= len(parent.children):
            return None
        return pointer[:-1] + (index,)

    def fetch(self, pointer: TreePointer) -> str:
        return self.node_at(pointer).label
