"""DOM-VXD navigation model (paper Section 2): commands, navigable
documents, explored parts, instrumentation, and the empirical
browsability classifier."""

from .commands import (
    DOWN,
    FETCH,
    RIGHT,
    Down,
    Fetch,
    LabelPredicate,
    NavCommand,
    NavResult,
    NavStep,
    Navigation,
    Right,
    Select,
    label_is,
)
from .complexity import (
    Browsability,
    ComplexityReport,
    CostCurve,
    browsability_order,
    classify,
    compose_classes,
    measure_cost,
)
from .counting import CountingDocument, NavCounters
from .explored import UNFETCHED_LABEL, ExploredPart, explored_part
from .interface import (
    NavigableDocument,
    child_labels,
    iter_children,
    materialize,
    run_navigation,
)
from .materialized import MaterializedDocument, TreePointer
from .profiler import (
    NavigationProfile,
    OperatorProfile,
    expected_verdict,
    profile_classify,
    profiled_cost,
)

__all__ = [
    "Down", "Right", "Fetch", "Select", "DOWN", "RIGHT", "FETCH",
    "NavCommand", "NavStep", "Navigation", "NavResult", "LabelPredicate",
    "label_is",
    "NavigableDocument", "run_navigation", "materialize", "iter_children",
    "child_labels",
    "MaterializedDocument", "TreePointer",
    "CountingDocument", "NavCounters",
    "ExploredPart", "explored_part", "UNFETCHED_LABEL",
    "Browsability", "CostCurve", "ComplexityReport", "classify",
    "measure_cost", "browsability_order", "compose_classes",
    "NavigationProfile", "OperatorProfile", "profiled_cost",
    "profile_classify", "expected_verdict",
]
