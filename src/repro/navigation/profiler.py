"""The empirical browsability profiler (paper Definition 2, measured).

:mod:`repro.navigation.complexity` classifies a view by metering whole
runs over growing source families; the static analyzer
(:mod:`repro.rewriter.analyzer`) classifies the plan without running it
at all.  This module adds the third view: consume the *causal span
stream* of an observed run (client spans -> operator spans -> buffer
fills -> channel round trips -> source commands) and report, per
operator and for the whole view, the observed client->source
navigation amplification -- how many source commands one client
navigation provokes -- with a verdict:

``bounded``
    amplification independent of the data (Definition 2's bounded
    browsable),
``growing``
    answerable without exhausting any source list, but at
    data-dependent cost (browsable),
``unbounded-suspect``
    the cost pattern of a view that consumes some source list entirely
    (unbrowsable).

Two classification paths:

* :func:`profile_classify` *sweeps* source families exactly like
  :func:`repro.navigation.complexity.classify` -- same early/late
  families, same flat/grows decision rule -- but reads its costs off
  the trace's ``source`` events instead of the meters.  Since every
  metered command emits exactly one ``source`` event, the sweep
  verdict provably agrees with the meter-based classification (and,
  on the paper's examples, with the static analyzer).
* :meth:`NavigationProfile.verdict` judges a *single* observed run
  from the shape of its per-navigation cost sequence.  A single run
  cannot vary the data, so this is an honest heuristic -- useful in
  ``QueryResult.explain(analyze=True)``, authoritative never.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from ..runtime.context import Tracer
from ..runtime.observability import SpanForest, build_span_tree
from ..xtree.tree import Tree
from .commands import Navigation
from .complexity import Browsability, ComplexityReport, CostCurve
from .counting import CountingDocument
from .interface import NavigableDocument, run_navigation
from .materialized import MaterializedDocument

__all__ = [
    "OperatorProfile", "NavigationProfile",
    "profiled_cost", "profile_classify", "expected_verdict",
    "VERDICT_BOUNDED", "VERDICT_GROWING", "VERDICT_UNBOUNDED",
]

VERDICT_BOUNDED = "bounded"
VERDICT_GROWING = "growing"
VERDICT_UNBOUNDED = "unbounded-suspect"

#: Definition 2 class -> profiler verdict.  The cross-check contract:
#: a profiler sweep over the same families must land on exactly this
#: verdict for a view of the given static class.
_VERDICT_BY_CLASS = {
    Browsability.BOUNDED: VERDICT_BOUNDED,
    Browsability.BROWSABLE: VERDICT_GROWING,
    Browsability.UNBROWSABLE: VERDICT_UNBOUNDED,
}


def expected_verdict(classification: Browsability) -> str:
    """The profiler verdict a view of the given Definition 2 class
    must receive from a family sweep."""
    return _VERDICT_BY_CLASS[classification]


@dataclass
class OperatorProfile:
    """Observed behaviour of one spanned operator across a run.

    ``source_commands`` is *inclusive*: every ``source`` event in the
    subtree of one of this operator's spans counts, so a command
    reached through a chain of operators is attributed to each
    operator on the chain (amplification composes down the tower,
    which is exactly Definition 2's composition argument).
    """

    name: str
    calls: int = 0
    input_calls: int = 0       # operator spans directly below ours
    source_commands: int = 0   # source events in our spans' subtrees
    max_per_call: int = 0      # worst single call

    @property
    def amplification(self) -> float:
        """Source commands per protocol call received."""
        if self.calls == 0:
            return 0.0
        return self.source_commands / self.calls


@dataclass
class NavigationProfile:
    """The whole-view profile of one observed run."""

    client_navigations: int = 0
    #: source commands under each client span, in navigation order
    per_navigation: List[int] = field(default_factory=list)
    source_commands: int = 0   # every source event in the stream
    round_trips: int = 0       # every channel event in the stream
    operators: Dict[str, OperatorProfile] = field(default_factory=dict)
    orphan_spans: int = 0      # non-zero means broken propagation

    @property
    def amplification(self) -> float:
        """Source commands per client navigation, whole view."""
        if self.client_navigations == 0:
            return 0.0
        return self.source_commands / self.client_navigations

    @classmethod
    def from_events(cls, events: Iterable) -> "NavigationProfile":
        """Build the profile from a trace event stream (any iterable
        of :class:`~repro.runtime.context.TraceEvent`)."""
        events = list(events)
        forest = build_span_tree(events)
        profile = cls(orphan_spans=len(forest.orphans))
        profile.source_commands = sum(
            1 for e in events if e.layer == "source")
        profile.round_trips = sum(
            1 for e in events if e.layer == "channel")
        for span in forest.spans.values():
            if span.layer == "client":
                profile.client_navigations += 1
            elif span.layer == "operator":
                op = span.data.get("op", "?")
                entry = profile.operators.get(op)
                if entry is None:
                    entry = profile.operators[op] = \
                        OperatorProfile(op)
                entry.calls += 1
                entry.input_calls += sum(
                    1 for child in span.children
                    if child.layer == "operator")
                cost = len(span.leaf_events("source"))
                entry.source_commands += cost
                entry.max_per_call = max(entry.max_per_call, cost)
        # Navigation-order cost sequence: client spans in begin order.
        client_spans = [s for s in forest.spans.values()
                        if s.layer == "client"]
        client_spans.sort(key=lambda s: s.span_id)
        profile.per_navigation = [
            len(s.leaf_events("source")) for s in client_spans]
        return profile

    def verdict(self) -> str:
        """A single-run *heuristic* verdict from the per-navigation
        cost shape (see the module docstring; use
        :func:`profile_classify` for the authoritative sweep):

        * empty / flat-tailed cheap sequence -> ``bounded``;
        * one navigation dominating the whole run's cost (the
          signature of a full list scan) -> ``unbounded-suspect``;
        * otherwise -> ``growing``.
        """
        costs = self.per_navigation
        if not costs or max(costs) == 0:
            return VERDICT_BOUNDED
        peak = max(costs)
        rest = sum(costs) - peak
        if len(costs) > 1 and peak > 4 * max(rest, 1):
            return VERDICT_UNBOUNDED
        tail = costs[-3:]
        if len(set(tail)) == 1 and peak <= 4 * max(tail[0], 1):
            return VERDICT_BOUNDED
        return VERDICT_GROWING

    def summary(self) -> str:
        """The profile as an aligned text report."""
        lines = [
            "client navigations: %d" % self.client_navigations,
            "source commands:    %d" % self.source_commands,
            "round trips:        %d" % self.round_trips,
            "amplification:      %.2f source/client"
            % self.amplification,
            "verdict:            %s (single-run heuristic)"
            % self.verdict(),
        ]
        if self.orphan_spans:
            lines.append("orphan spans:       %d (broken propagation!)"
                         % self.orphan_spans)
        if self.operators:
            lines.append("per-operator:")
            lines.append("  %-24s %7s %7s %8s %7s"
                         % ("operator", "calls", "source", "amplif.",
                            "max"))
            for name in sorted(self.operators):
                op = self.operators[name]
                lines.append(
                    "  %-24s %7d %7d %8.2f %7d"
                    % (op.name, op.calls, op.source_commands,
                       op.amplification, op.max_per_call))
        return "\n".join(lines)


# ----------------------------------------------------------------------
# The family sweep: trace-measured Definition 2 classification
# ----------------------------------------------------------------------

def profiled_cost(view_factory, source_trees: Sequence[Tree],
                  navigation: Navigation) -> int:
    """Source commands incurred by one client navigation, measured
    from the trace.

    The trace-side mirror of :func:`repro.navigation.complexity.
    measure_cost`: same wrapping (materialized documents behind
    counting proxies), but the cost is the count of ``source`` events
    a recording tracer saw.  Each metered command emits exactly one
    event, so the two measures are identical by construction.
    """
    tracer = Tracer(record=True)
    meters = [CountingDocument(MaterializedDocument(tree),
                               name="src%d" % i, tracer=tracer)
              for i, tree in enumerate(source_trees)]
    view = view_factory(meters)
    run_navigation(view, navigation)
    return sum(1 for e in tracer.events if e.layer == "source")


def profile_classify(view_factory, early_family, late_family,
                     navigation: Navigation,
                     sizes: Sequence[int] = (4, 8, 16, 32, 64)
                     ) -> ComplexityReport:
    """Classify a view by sweeping source families, trace-measured.

    Same decision rule as :func:`repro.navigation.complexity.
    classify` (flat on both families -> bounded; early flat ->
    browsable; else unbrowsable), so
    ``expected_verdict(profile_classify(...).classification)`` is the
    profiler's authoritative verdict for the view.
    """
    sizes = list(sizes)
    early = CostCurve(sizes, [
        profiled_cost(view_factory, early_family(n), navigation)
        for n in sizes
    ])
    late = CostCurve(sizes, [
        profiled_cost(view_factory, late_family(n), navigation)
        for n in sizes
    ])
    if early.is_flat() and late.is_flat():
        classification = Browsability.BOUNDED
    elif not early.grows():
        classification = Browsability.BROWSABLE
    else:
        classification = Browsability.UNBROWSABLE
    return ComplexityReport(classification, early, late, navigation)
