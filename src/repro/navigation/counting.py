"""Instrumentation: count and log navigation commands.

The central quantity of the paper is *how many source navigations a
client navigation costs* (navigational complexity, Definition 2).
:class:`CountingDocument` is a transparent proxy that meters every
command crossing it; stacking one between a mediator and each source
yields exactly the measurements the browsability experiments need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from .commands import LabelPredicate
from .interface import NavigableDocument
from ..runtime.locks import make_rlock

if False:  # pragma: no cover - import cycle guard, typing only
    from ..runtime.context import Tracer

__all__ = ["NavCounters", "CountingDocument"]


@dataclass
class NavCounters:
    """Per-command navigation counts."""

    down: int = 0
    right: int = 0
    fetch: int = 0
    select: int = 0

    @property
    def total(self) -> int:
        return self.down + self.right + self.fetch + self.select

    def reset(self) -> None:
        self.down = self.right = self.fetch = self.select = 0

    def snapshot(self) -> "NavCounters":
        return NavCounters(self.down, self.right, self.fetch, self.select)

    def __sub__(self, other: "NavCounters") -> "NavCounters":
        return NavCounters(
            self.down - other.down,
            self.right - other.right,
            self.fetch - other.fetch,
            self.select - other.select,
        )

    def __add__(self, other: "NavCounters") -> "NavCounters":
        return NavCounters(
            self.down + other.down,
            self.right + other.right,
            self.fetch + other.fetch,
            self.select + other.select,
        )

    def as_dict(self) -> dict:
        """Per-command counts as a plain dict (for stats reports)."""
        return {"down": self.down, "right": self.right,
                "fetch": self.fetch, "select": self.select,
                "total": self.total}

    def __str__(self) -> str:
        return ("d=%d r=%d f=%d sel=%d total=%d"
                % (self.down, self.right, self.fetch, self.select,
                   self.total))


class CountingDocument(NavigableDocument):
    """Metering proxy around any NavigableDocument.

    Parameters
    ----------
    inner:
        The document to instrument.
    name:
        Optional name shown in logs (e.g. the source URL).
    log:
        When True, every command is appended to :attr:`trace` as
        ``(command_name, pointer)`` pairs.
    tracer:
        Optional :class:`~repro.runtime.context.Tracer`; when it has
        subscribers (or records), every command crossing this layer is
        emitted as a ``source`` event -- the per-navigation hook of
        the execution context.
    """

    def __init__(self, inner: NavigableDocument, name: str = "",
                 log: bool = False, tracer: "Optional[Tracer]" = None,
                 metrics=None):
        self.inner = inner
        self.name = name
        self.counters = NavCounters()
        self.log = log
        self.tracer = tracer
        #: optional MetricsRegistry; every command also increments
        #: ``source_navigations_total{source=,command=}``
        self.metrics = metrics
        self.trace: List[Tuple[str, object]] = []
        #: guards counters and the command log: with fan-out and
        #: prefetch workers, one meter is crossed by several threads.
        #: Re-entrant because a tracer callback may itself navigate.
        self._lock = make_rlock("source.meter")

    def _note_locked(self, command: str, pointer) -> None:
        """Record the command in the log; the caller holds the lock."""
        if self.log:
            self.trace.append((command, pointer))

    def _publish(self, command: str) -> None:
        """Tracer/metrics fan-out -- called *outside* the meter lock.

        Both sinks run foreign code (tracer subscribers, metric
        factories); invoking them while holding the meter RLock puts
        every subscriber under this lock in the order graph (L012).
        """
        if self.tracer is not None and self.tracer.active:
            # lint: allow=E002 -- command is "d"/"r"/"f"/"select"
            self.tracer.emit("source", command, source=self.name)
        metrics = self.metrics
        if metrics is not None and metrics.enabled:
            metrics.counter("source_navigations_total").inc(
                source=self.name or "unnamed", command=command)

    # -- NavigableDocument ----------------------------------------------
    def root(self):
        # Obtaining the root handle is free: the paper's preprocessing
        # returns it without source access.
        return self.inner.root()

    def down(self, pointer):
        with self._lock:
            self.counters.down += 1
            self._note_locked("d", pointer)
        self._publish("d")
        return self.inner.down(pointer)

    def right(self, pointer):
        with self._lock:
            self.counters.right += 1
            self._note_locked("r", pointer)
        self._publish("r")
        return self.inner.right(pointer)

    def fetch(self, pointer) -> str:
        with self._lock:
            self.counters.fetch += 1
            self._note_locked("f", pointer)
        self._publish("f")
        return self.inner.fetch(pointer)

    def select(self, pointer, predicate: LabelPredicate):
        with self._lock:
            self.counters.select += 1
            self._note_locked("select", pointer)
        self._publish("select")
        return self.inner.select(pointer, predicate)

    # -- measurement helpers ----------------------------------------------
    def reset(self) -> None:
        self.counters.reset()
        self.trace.clear()

    @property
    def total(self) -> int:
        return self.counters.total
