"""The NavigableDocument protocol: what every VXD layer speaks.

Everything in the architecture of Figure 1 -- wrapped sources, buffer
components, individual lazy-mediator operators, whole plans, and the
virtual answer document handed to the client -- exposes this same small
interface.  That uniformity is what lets algebraic plans be assembled
as trees of lazy mediators.

Pointers are opaque, hashable values minted by the document they belong
to.  ``None`` plays the paper's bottom (⊥).
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from ..xtree.tree import Tree
from .commands import (
    Down,
    Fetch,
    LabelPredicate,
    NavCommand,
    Navigation,
    NavResult,
    Right,
    Select,
    label_is,
)

__all__ = ["NavigableDocument", "run_navigation", "materialize",
           "iter_children", "child_labels"]


class NavigableDocument:
    """Abstract base for documents navigable with DOM-VXD commands."""

    def root(self):
        """Return a handle (pointer) to the root element.

        Obtaining the handle must not touch any source -- the paper's
        preprocessing phase ends by returning the root handle "without
        even accessing the sources".
        """
        raise NotImplementedError

    def down(self, pointer):
        """First child of ``pointer`` or None for leaves."""
        raise NotImplementedError

    def right(self, pointer):
        """Right sibling of ``pointer`` or None."""
        raise NotImplementedError

    def fetch(self, pointer) -> str:
        """The label of ``pointer``."""
        raise NotImplementedError

    def select(self, pointer, predicate: LabelPredicate):
        """First sibling to the right of ``pointer`` whose label
        satisfies ``predicate``; None when exhausted.

        The default implementation scans with ``right``/``fetch``; a
        document backed by a capable source may override it with a
        single source operation (which is exactly what upgrades the
        sigma-filter view of Example 1 to bounded browsable).
        """
        current = self.right(pointer)
        while current is not None:
            if label_is(predicate, self.fetch(current)):
                return current
            current = self.right(current)
        return None

    def apply(self, command: NavCommand, pointer):
        """Dynamic dispatch of a single navigation command."""
        if isinstance(command, Down):
            return self.down(pointer)
        if isinstance(command, Right):
            return self.right(pointer)
        if isinstance(command, Fetch):
            return self.fetch(pointer)
        if isinstance(command, Select):
            return self.select(pointer, command.predicate)
        raise TypeError("unknown navigation command %r" % (command,))


def run_navigation(document: NavigableDocument,
                   navigation: Navigation) -> NavResult:
    """Execute a Definition-1 navigation and collect its results.

    Pointer-producing steps that start from an already-None pointer
    produce None (navigating past bottom is a no-op, matching the
    client library's behaviour).
    """
    result = NavResult(pointers=[document.root()])
    for step in navigation:
        source = step.source if step.source != -1 else _last_pointer_index(
            result.pointers)
        base = result.pointers[source]
        if base is None:
            result.pointers.append(None)
            continue
        outcome = document.apply(step.command, base)
        if isinstance(step.command, Fetch):
            result.labels.append(outcome)
            result.pointers.append(None)
        else:
            result.pointers.append(outcome)
    return result


def _last_pointer_index(pointers: List[object]) -> int:
    for index in range(len(pointers) - 1, -1, -1):
        if pointers[index] is not None:
            return index
    return 0


def iter_children(document: NavigableDocument, pointer) -> Iterator[object]:
    """Iterate the child pointers of ``pointer`` via d/r commands."""
    child = document.down(pointer)
    while child is not None:
        yield child
        child = document.right(child)


def child_labels(document: NavigableDocument, pointer) -> List[str]:
    """Fetch the labels of all children of ``pointer``."""
    return [document.fetch(c) for c in iter_children(document, pointer)]


def materialize(document: NavigableDocument,
                pointer=None,
                max_nodes: Optional[int] = None) -> Tree:
    """Exhaustively navigate ``document`` into an in-memory Tree.

    This is the "navigate everything" client; comparing
    ``materialize(virtual_view)`` against the eager evaluator's output
    is the core correctness oracle of the test-suite.

    ``max_nodes`` guards tests against accidentally infinite virtual
    documents.
    """
    if pointer is None:
        pointer = document.root()
    budget = [max_nodes if max_nodes is not None else -1]

    def build(p) -> Tree:
        if budget[0] == 0:
            raise RuntimeError(
                "materialize() exceeded max_nodes=%d" % max_nodes)
        budget[0] -= 1
        label = document.fetch(p)
        children = [build(c) for c in iter_children(document, p)]
        return Tree(label, children)

    return build(pointer)
