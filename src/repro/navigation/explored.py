"""Explored parts of navigations (Definition 1).

``explored_part(tree, navigation)`` computes ``c(t)``: the unique
subtree comprising only those node-ids and labels of ``t`` that the
navigation accessed.  Nodes whose pointer was obtained but whose label
was never fetched appear with the placeholder label ``"?"``; holes left
for unexplored siblings/children simply do not appear.

This gives the test-suite a precise oracle for *laziness*: running a
client navigation against the virtual view must touch no more of the
source than the corresponding explored part requires.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set

from ..xtree.tree import Tree
from .commands import Fetch, Navigation
from .interface import run_navigation
from .materialized import MaterializedDocument, TreePointer

__all__ = ["ExploredPart", "explored_part", "UNFETCHED_LABEL"]

#: Placeholder for nodes whose pointer was visited but label not fetched.
UNFETCHED_LABEL = "?"


@dataclass
class ExploredPart:
    """The result of exploring a tree with a navigation.

    Attributes
    ----------
    visited:
        pointers (child-index paths) whose node-ids were accessed.
    fetched:
        subset of ``visited`` whose labels were fetched.
    """

    visited: Set[TreePointer] = field(default_factory=set)
    fetched: Set[TreePointer] = field(default_factory=set)

    @property
    def node_count(self) -> int:
        return len(self.visited)

    def to_tree(self, source: Tree) -> Optional[Tree]:
        """Render the explored part as a tree with ``?`` placeholders.

        Returns None when nothing (not even the root) was visited.
        """
        if () not in self.visited:
            return None

        def build(pointer: TreePointer, node: Tree) -> Tree:
            label = (node.label if pointer in self.fetched
                     else UNFETCHED_LABEL)
            children: List[Tree] = []
            for index, child in enumerate(node.children):
                child_pointer = pointer + (index,)
                if child_pointer in self.visited:
                    children.append(build(child_pointer, child))
            return Tree(label, children)

        return build((), source)


def explored_part(tree: Tree, navigation: Navigation) -> ExploredPart:
    """Run ``navigation`` over ``tree`` and record what it accessed.

    The root handle counts as visited (it is returned for free), but its
    label counts as fetched only if an ``f`` command asked for it.
    """
    doc = _RecordingDocument(tree)
    result = run_navigation(doc, navigation)
    # Fetches are attributed inside the recording document; pointer
    # visits likewise.  The run result is returned to callers who need
    # the final point or fetched labels too.
    doc.explored.result = result  # type: ignore[attr-defined]
    return doc.explored


class _RecordingDocument(MaterializedDocument):
    """MaterializedDocument that records visits for explored_part."""

    def __init__(self, tree: Tree):
        super().__init__(tree)
        self.explored = ExploredPart()
        self.explored.visited.add(())

    def down(self, pointer: TreePointer) -> Optional[TreePointer]:
        child = super().down(pointer)
        if child is not None:
            self.explored.visited.add(child)
        return child

    def right(self, pointer: TreePointer) -> Optional[TreePointer]:
        sibling = super().right(pointer)
        if sibling is not None:
            self.explored.visited.add(sibling)
        return sibling

    def fetch(self, pointer: TreePointer) -> str:
        self.explored.fetched.add(pointer)
        return super().fetch(pointer)
