"""DOM-VXD navigation commands and navigation sequences (paper Sec. 2).

The minimal command set ``NC`` is::

    d (down)   p' := d(p)   -- first child of p, or None for a leaf
    r (right)  p' := r(p)   -- right sibling of p, or None
    f (fetch)  l  := f(p)   -- the label of p

plus the optional sibling-selection command ``select(sigma)`` in the
style of XPointer: the first sibling to the *right* of ``p`` whose label
satisfies a predicate.

A :class:`Navigation` (Definition 1) is a sequence of steps, each
applying a command to a previously obtained pointer: step ``i`` names
the index ``j < i`` of the pointer it starts from (index ``0`` is the
root handle).  Unlike a relational cursor, navigation may resume from
*any* previously visited node -- the key difference the paper draws
against pipelined relational execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Sequence, Union

__all__ = [
    "Down", "Right", "Fetch", "Select", "NavCommand",
    "NavStep", "Navigation", "LabelPredicate", "label_is",
]


#: A predicate over labels: either an exact label string or a callable.
LabelPredicate = Union[str, Callable[[str], bool]]


def label_is(predicate: LabelPredicate, label: str) -> bool:
    """Apply a label predicate (string equality or callable)."""
    if callable(predicate):
        return bool(predicate(label))
    return label == predicate


@dataclass(frozen=True)
class Down:
    """``d``: move to the first child."""

    def __str__(self) -> str:
        return "d"


@dataclass(frozen=True)
class Right:
    """``r``: move to the right sibling."""

    def __str__(self) -> str:
        return "r"


@dataclass(frozen=True)
class Fetch:
    """``f``: fetch the label (returns data, not a pointer)."""

    def __str__(self) -> str:
        return "f"


@dataclass(frozen=True)
class Select:
    """``select(sigma)``: first right sibling whose label satisfies
    ``predicate``.  With this command in NC, the label-filter view of
    Example 1 becomes bounded browsable."""

    predicate: LabelPredicate

    def __str__(self) -> str:
        name = (self.predicate if isinstance(self.predicate, str)
                else getattr(self.predicate, "__name__", "sigma"))
        return "select(%s)" % name


NavCommand = Union[Down, Right, Fetch, Select]

#: Shared singletons for the three basic commands.
DOWN = Down()
RIGHT = Right()
FETCH = Fetch()


@dataclass(frozen=True)
class NavStep:
    """One step of a navigation: apply ``command`` to pointer ``source``.

    ``source`` indexes the pointer sequence: 0 is the root handle, i>0
    is the pointer produced by step i (fetch steps produce no pointer
    and may not be used as sources).
    """

    command: NavCommand
    source: int = -1  # -1 means "previous pointer-producing step"

    def __str__(self) -> str:
        if self.source == -1:
            return str(self.command)
        return "%s@%d" % (self.command, self.source)


class Navigation:
    """A Definition-1 navigation: an ordered list of steps.

    Convenience constructors accept compact string syntax::

        Navigation.parse("d;f;r;f")        # linear navigation
        Navigation.parse("d;r;d@1;f")      # resume from pointer #1
    """

    def __init__(self, steps: Sequence[NavStep] = ()):
        self.steps: List[NavStep] = list(steps)

    # -- construction ---------------------------------------------------
    def then(self, command: NavCommand, source: int = -1) -> "Navigation":
        """Return a new navigation extended by one step."""
        return Navigation(self.steps + [NavStep(command, source)])

    @classmethod
    def linear(cls, commands: Sequence[NavCommand]) -> "Navigation":
        """A navigation where every step continues from the previous
        pointer (the common straight-line case)."""
        return cls([NavStep(c) for c in commands])

    @classmethod
    def parse(cls, text: str) -> "Navigation":
        """Parse ``"d;f;r@2;select(x)"`` into a Navigation."""
        steps: List[NavStep] = []
        for raw in text.split(";"):
            raw = raw.strip()
            if not raw:
                continue
            source = -1
            if "@" in raw:
                raw, _, src = raw.partition("@")
                source = int(src)
            if raw == "d":
                command: NavCommand = DOWN
            elif raw == "r":
                command = RIGHT
            elif raw == "f":
                command = FETCH
            elif raw.startswith("select(") and raw.endswith(")"):
                command = Select(raw[len("select("):-1])
            else:
                raise ValueError("unknown navigation command %r" % raw)
            steps.append(NavStep(command, source))
        return cls(steps)

    # -- inspection -----------------------------------------------------
    def __len__(self) -> int:
        return len(self.steps)

    def __iter__(self):
        return iter(self.steps)

    def __str__(self) -> str:
        return ";".join(str(s) for s in self.steps)

    def __repr__(self) -> str:
        return "Navigation(%s)" % self


@dataclass
class NavResult:
    """Outcome of running a Navigation against a document.

    Attributes
    ----------
    pointers:
        pointer produced by each step (None for fetch steps or misses).
        Index 0 holds the root handle, so ``pointers[i]`` is the result
        of step ``i``.
    labels:
        labels returned by fetch steps, in step order.
    """

    pointers: List[object] = field(default_factory=list)
    labels: List[str] = field(default_factory=list)

    @property
    def final(self):
        """The last non-None pointer produced (Definition 1's c(t) as a
        point), or None."""
        for pointer in reversed(self.pointers):
            if pointer is not None:
                return pointer
        return None
