"""Navigational complexity: the browsability classification (Def. 2).

The paper classifies a view ``q`` under a client navigation ``c`` as

* **bounded browsable** -- the number of source navigations needed to
  answer ``c`` is bounded by ``f(len(c))``, independent of the source;
* **(unbounded) browsable** -- ``c`` can be answered without reading
  any source list in its entirety, but the cost depends on the data;
* **unbrowsable** -- answering ``c`` requires consuming at least one
  source list entirely, whatever the data.

This module measures the classes *empirically*: it evaluates the view
over families of growing sources (one family placing the relevant data
early, one placing it late), meters the source navigations with
:class:`~repro.navigation.counting.CountingDocument`, and reads the
class off the two cost curves.  The static, per-plan analysis lives in
:mod:`repro.rewriter.analyzer`; the benchmark suite checks that the two
agree on the paper's examples.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, List, Sequence

from ..xtree.tree import Tree
from .commands import Navigation
from .counting import CountingDocument
from .interface import NavigableDocument, run_navigation
from .materialized import MaterializedDocument

__all__ = [
    "Browsability",
    "CostCurve",
    "ComplexityReport",
    "browsability_order",
    "compose_classes",
    "measure_cost",
    "classify",
]


class Browsability(enum.Enum):
    """The three navigational-complexity classes of Definition 2."""

    BOUNDED = "bounded browsable"
    BROWSABLE = "browsable"
    UNBROWSABLE = "unbrowsable"

    def __str__(self) -> str:
        return self.value


#: Definition 2 is a chain: bounded < browsable < unbrowsable.
_CLASS_ORDER = {
    Browsability.BOUNDED: 0,
    Browsability.BROWSABLE: 1,
    Browsability.UNBROWSABLE: 2,
}


def browsability_order(cls: Browsability) -> int:
    """Position in the Definition 2 chain (0 = bounded browsable).

    Comparisons between classes ("never more optimistic than") go
    through this so every consumer agrees on the direction.
    """
    return _CLASS_ORDER[cls]


def compose_classes(*classes: Browsability) -> Browsability:
    """The class of a navigation that chains the given sub-navigations.

    Definition 2's classes are closed under composition: answering one
    client step by performing one step of each part costs the *worst*
    part (a bounded step through an unbrowsable collection is still
    unbrowsable, a bounded step through a bounded collection stays
    bounded).  This is the one place the "composed class, not max of
    syntactic parts" rule lives -- the static analyzer composes the
    path class of a ``getDescendants`` with the *streaming* class of
    the collection it navigates, instead of taking the max over the
    operators that happen to appear in the plan text.
    """
    result = Browsability.BOUNDED
    for cls in classes:
        if _CLASS_ORDER[cls] > _CLASS_ORDER[result]:
            result = cls
    return result


#: Builds the virtual view document from the (already wrapped and
#: metered) source documents, one per source.
ViewFactory = Callable[[Sequence[NavigableDocument]], NavigableDocument]

#: Builds the list of source trees for a given size parameter.
SourceFamily = Callable[[int], Sequence[Tree]]


@dataclass
class CostCurve:
    """Source-navigation cost as a function of the size parameter."""

    sizes: List[int]
    costs: List[int]

    def is_flat(self, tail: int = 3) -> bool:
        """True when the last ``tail`` measurements are identical --
        the empirical signature of a bound independent of the input."""
        window = self.costs[-tail:]
        return len(set(window)) == 1

    def grows(self) -> bool:
        """True when cost keeps increasing with input size."""
        if len(self.costs) < 2:
            return False
        return self.costs[-1] > self.costs[0]

    def growth_ratio(self) -> float:
        """cost growth per unit of size growth over the measured range."""
        dsize = self.sizes[-1] - self.sizes[0]
        if dsize == 0:
            return 0.0
        return (self.costs[-1] - self.costs[0]) / dsize


@dataclass
class ComplexityReport:
    """Outcome of an empirical classification run."""

    classification: Browsability
    early: CostCurve
    late: CostCurve
    navigation: Navigation

    def summary(self) -> str:
        lines = [
            "navigation: %s" % self.navigation,
            "class:      %s" % self.classification,
            "sizes:      %s" % self.early.sizes,
            "cost/early: %s" % self.early.costs,
            "cost/late:  %s" % self.late.costs,
        ]
        return "\n".join(lines)


def measure_cost(view_factory: ViewFactory,
                 source_trees: Sequence[Tree],
                 navigation: Navigation) -> int:
    """Total source navigations incurred by one client navigation.

    Each source tree is wrapped in a materialized document and a
    counting proxy; the view under test sees only the proxies.
    """
    meters = [CountingDocument(MaterializedDocument(tree), name="src%d" % i)
              for i, tree in enumerate(source_trees)]
    view = view_factory(meters)
    run_navigation(view, navigation)
    return sum(m.total for m in meters)


def classify(view_factory: ViewFactory,
             early_family: SourceFamily,
             late_family: SourceFamily,
             navigation: Navigation,
             sizes: Sequence[int] = (4, 8, 16, 32, 64)) -> ComplexityReport:
    """Empirically classify ``view_factory`` under ``navigation``.

    Parameters
    ----------
    early_family / late_family:
        Source generators parameterized by size.  The *early* family
        must place whatever the navigation looks for at the front of
        the relevant source lists; the *late* family at the back.  For
        a truly size-independent view the two families may coincide.

    Classification logic:

    * flat cost on both families  ->  bounded browsable
    * flat (or sub-linear) cost on the early family but growing cost on
      the late family -> browsable: the cost depends on where the data
      sits, but early data can be served cheaply
    * growing cost even when the data is early -> some list is being
      consumed entirely regardless of the input: unbrowsable
    """
    sizes = list(sizes)
    early = CostCurve(sizes, [
        measure_cost(view_factory, early_family(n), navigation)
        for n in sizes
    ])
    late = CostCurve(sizes, [
        measure_cost(view_factory, late_family(n), navigation)
        for n in sizes
    ])

    # Definition 2's bound f(n) only depends on the navigation, not
    # the data: flat cost curves on BOTH families (the absolute values
    # may differ -- where the data sits can change the constant).
    if early.is_flat() and late.is_flat():
        classification = Browsability.BOUNDED
    elif not early.grows():
        classification = Browsability.BROWSABLE
    else:
        classification = Browsability.UNBROWSABLE
    return ComplexityReport(classification, early, late, navigation)
