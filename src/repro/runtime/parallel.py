"""Parallel source fan-out: concurrent sub-navigations, one dispatcher.

The lazy operators whose inputs are independent -- ``concatenate``
across its argument variables, the set operators across their two
inputs, the nested-loop ``join`` across its outer and inner sides --
spend most of their latency waiting on one source at a time even
though the sources are autonomous and could answer concurrently
(paper Sec. 2: the mediator integrates *live, distributed* sources).
:class:`FanoutDispatcher` gives them a shared, bounded thread pool to
overlap those waits.

Design constraints, in order:

* **Zero-cost default.**  ``workers == 0`` (the config default) makes
  :meth:`run`/:meth:`submit` execute inline on the calling thread, in
  argument order -- the exact sequential navigation order the golden
  trace suite locks down.
* **No nested parallelism.**  A task already running on a fanout
  worker executes any further fan-out inline.  This removes the
  classic pool-starvation deadlock (a worker blocking on a future
  that is queued behind itself) and bounds the thread count at
  ``workers`` regardless of operator nesting depth.
* **Errors propagate.**  A task's exception is re-raised on the
  calling thread by ``Future.result()``, so the resilience seams
  (retries, breakers, ``<mix:error>`` degradation) compose unchanged:
  they live *below* the dispatcher, around the actual source I/O.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Any, Callable, List, Optional
from .locks import make_lock

__all__ = ["FanoutDispatcher"]


class FanoutDispatcher:
    """A bounded thread pool for operator-level source fan-out.

    One dispatcher per :class:`~repro.runtime.context.
    ExecutionContext`; every operator of the query shares it, so the
    total concurrency of one query is capped at ``workers`` no matter
    how the plan is shaped.  The pool is created lazily on the first
    parallel call and torn down by :meth:`close` (or interpreter
    exit).
    """

    def __init__(self, workers: int = 0,
                 tracer: Optional[Any] = None) -> None:
        if workers < 0:
            raise ValueError("workers must be >= 0")
        self.workers = workers
        #: optional tracer whose current span is propagated onto
        #: worker threads, keeping pooled sub-navigations inside the
        #: causal span tree of the navigation that dispatched them
        self.tracer = tracer
        self._executor: Optional[ThreadPoolExecutor] = None
        self._lock = make_lock("fanout.dispatcher")
        self._local = threading.local()

    @property
    def active(self) -> bool:
        """Whether parallel dispatch is on at all."""
        return self.workers > 0

    def _inline(self) -> bool:
        """True when calls must run on the current thread: fan-out is
        off, or we already are a fanout worker (no nesting)."""
        return not self.active or getattr(self._local, "in_worker",
                                          False)

    def _ensure_executor(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.workers,
                    thread_name_prefix="mix-fanout")
            return self._executor

    def _run_in_worker(self, thunk: Callable) -> Any:
        self._local.in_worker = True
        try:
            return thunk()
        finally:
            self._local.in_worker = False

    def _propagate(self, thunk: Callable) -> Callable:
        """Wrap ``thunk`` to adopt the dispatching thread's current
        span on the worker thread (no-op for idle tracers: nothing is
        captured, nothing is attached)."""
        tracer = self.tracer
        if tracer is None or not tracer.active:
            return thunk
        parent = tracer.capture()
        if parent is None:
            return thunk

        def attached() -> Any:
            with tracer.attach(parent):
                return thunk()
        return attached

    # -- public API --------------------------------------------------------
    def submit(self, thunk: Callable[[], object]) -> Future:
        """Start ``thunk`` concurrently; returns a Future.

        Inline mode runs it immediately on the calling thread and
        returns an already-completed Future, so callers never branch
        on the mode.
        """
        if self._inline():
            future: Future = Future()
            try:
                future.set_result(thunk())
            except BaseException as err:  # delivered at .result()
                future.set_exception(err)
            return future
        return self._ensure_executor().submit(
            self._run_in_worker, self._propagate(thunk))

    def run(self, *thunks: Callable[[], object]) -> List[object]:
        """Run all thunks to completion, results in argument order.

        The first thunk runs on the calling thread (it is the one the
        sequential path would run first); the rest overlap on the
        pool.  All thunks complete before this returns -- a thunk's
        exception is re-raised only after the others have finished,
        so no task is abandoned mid-navigation.
        """
        if self._inline() or len(thunks) <= 1:
            return [thunk() for thunk in thunks]
        executor = self._ensure_executor()
        futures = [executor.submit(self._run_in_worker,
                                   self._propagate(thunk))
                   for thunk in thunks[1:]]
        first_error: Optional[BaseException] = None
        try:
            head = thunks[0]()
        except BaseException as err:
            first_error = err
            head = None
        results = [head]
        for future in futures:
            try:
                results.append(future.result())
            except BaseException as err:
                if first_error is None:
                    first_error = err
                results.append(None)
        if first_error is not None:
            raise first_error
        return results

    def close(self) -> None:
        """Shut the pool down (idempotent); idle dispatchers no-op."""
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)

    def __repr__(self) -> str:
        return "FanoutDispatcher(workers=%d)" % self.workers
