"""Named locks: one stable dotted identity per lock in the tree.

Every lock under ``src/repro`` is created through :func:`make_lock` /
:func:`make_rlock` with a dotted name such as ``fragcache.shard`` or
``buffer.component``.  The name is the unit both concurrency analyses
speak in:

* the static lock-order analyzer (``tools/lint``) reads the name
  literal at the creation site and builds the whole-repo acquisition
  graph over names, and
* the runtime sanitizer (:mod:`repro.testing.lockcheck`) tags the
  instrumented lock with the same name, so every dynamically observed
  acquisition edge can be checked for containment in the static graph.

On the default path the tag is *free*: ``make_lock`` returns a plain
``threading.Lock`` (CPython's ``_thread.lock`` cannot carry attributes,
and wrapping it would put a Python frame on the hot path), so the
factory is byte-identical to ``threading.Lock()``.  Only when the
sanitizer is armed -- ``REPRO_LOCK_SANITIZER=1`` in the environment at
import time, or an in-process :func:`repro.testing.lockcheck.arm` --
does the factory hand back an instrumented wrapper.  The default path
never imports ``repro.testing.lockcheck`` at all (a subprocess test
pins this).

The canonical name registry lives in docs/PROTOCOLS.md ("Concurrency
discipline"); a doc-sync test keeps the table and the creation sites
in exact agreement.
"""

from __future__ import annotations

import os
import re
import threading
from typing import Any, Callable, Dict, Optional

__all__ = [
    "make_lock",
    "make_rlock",
    "created_locks",
    "set_lock_factory",
    "LOCK_NAME_RE",
]

#: Lock names are dotted lowercase identifiers: subsystem.role[.detail]
LOCK_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)+$")

# Factory hook installed by repro.testing.lockcheck.arm(); when None
# the default (plain threading) path is taken.  The hook receives
# (name, reentrant) and returns a lock-like object.
_factory: Optional[Callable[[str, bool], Any]] = None

# Creation-time census: name -> number of instances made so far.  Cheap
# (one dict bump per lock *creation*, never per acquisition) and lets
# tests assert which named locks a scenario actually instantiated.
_created: Dict[str, int] = {}
_created_guard = threading.Lock()


def _check_name(name: str) -> str:
    if not LOCK_NAME_RE.match(name):
        raise ValueError(
            "lock name %r is not a dotted lowercase identifier "
            "(expected e.g. 'fragcache.shard')" % (name,))
    return name


def _record(name: str) -> None:
    with _created_guard:
        _created[name] = _created.get(name, 0) + 1


def make_lock(name: str) -> Any:
    """Return a mutex tagged with the dotted identity *name*.

    Default path: a plain ``threading.Lock`` -- the name exists only
    statically (at this call site) and in the creation census.
    """
    _check_name(name)
    _record(name)
    if _factory is not None:
        return _factory(name, False)
    return threading.Lock()


def make_rlock(name: str) -> Any:
    """Like :func:`make_lock` but re-entrant (``threading.RLock``)."""
    _check_name(name)
    _record(name)
    if _factory is not None:
        return _factory(name, True)
    return threading.RLock()


def created_locks() -> Dict[str, int]:
    """Snapshot of the creation census: name -> instances created."""
    with _created_guard:
        return dict(_created)


def set_lock_factory(
        factory: Optional[Callable[[str, bool], Any]]) -> None:
    """Install (or clear, with ``None``) the instrumented-lock factory.

    Only :mod:`repro.testing.lockcheck` calls this; it is the single
    seam through which the sanitizer takes over lock creation.
    """
    global _factory
    _factory = factory


# Arm at import when the environment asks for it.  The lazy import
# keeps repro.testing.lockcheck entirely off the default path.
if os.environ.get("REPRO_LOCK_SANITIZER", "") == "1":  # pragma: no cover
    from ..testing import lockcheck as _lockcheck

    _lockcheck.arm()
