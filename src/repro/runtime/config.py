"""The engine configuration: one frozen object instead of booleans.

Before this subsystem existed, cross-cutting evaluator settings
(``cache_enabled``, ``use_sigma``, ...) were threaded as positional
booleans through the mediator, the plan builder, and every lazy
operator constructor.  :class:`EngineConfig` replaces that plumbing
with a single immutable value that the :class:`~repro.runtime.context.
ExecutionContext` carries down the whole tower (client -> mediator ->
lazy operators -> buffer), the shape mediator stacks such as XLive use
for evaluator configuration.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional

__all__ = ["EngineConfig", "ConfigError"]


from ..errors import ReproError


class ConfigError(ReproError):
    """Raised for invalid engine configurations."""


@dataclass(frozen=True)
class EngineConfig:
    """Immutable evaluator configuration for one mediator session.

    Instances are frozen: derive variants with :meth:`replace`.

    Cache policy
        ``cache_enabled`` toggles the paper's operator caches (the E7
        ablation switch); ``cache_budget`` bounds how many *evictable*
        cached entries may live at once across all operator caches of
        one query (None = unbounded).  Eviction is semantically safe:
        every evictable entry is a memo re-derivable from structured
        node-ids (paper Fig. 5), so a bounded budget changes costs,
        never answers.

    Navigation pushdown
        ``use_sigma`` lets getDescendants replace sibling scans by
        ``select(sigma)`` commands pushed to capable sources (paper
        Example 1).

    Optimizer
        ``optimize_plans`` runs the rewriting phase; ``hybrid`` lets it
        insert intermediate eager steps above unbrowsable subplans
        (Section 6).

    Buffer / channel granularity defaults
        ``chunk_size``/``depth`` are the default fragment granularity
        for wrappers and the mediator->client fragment channel;
        ``prefetch`` is the default buffer lookahead;
        ``latency_ms``/``ms_per_kb`` parameterize the simulated remote
        channel.
    """

    optimize_plans: bool = True
    hybrid: bool = False
    cache_enabled: bool = True
    cache_budget: Optional[int] = None
    use_sigma: bool = False
    chunk_size: int = 10
    depth: int = 3
    prefetch: int = 0
    latency_ms: float = 20.0
    ms_per_kb: float = 2.0

    def __post_init__(self) -> None:
        if self.cache_budget is not None and self.cache_budget < 0:
            raise ConfigError("cache_budget must be >= 0 or None")
        if self.chunk_size <= 0:
            raise ConfigError("chunk_size must be positive")
        if self.depth <= 0:
            raise ConfigError("depth must be positive")
        if self.prefetch < 0:
            raise ConfigError("prefetch must be >= 0")
        if self.latency_ms < 0 or self.ms_per_kb < 0:
            raise ConfigError("channel costs must be >= 0")

    def replace(self, **overrides) -> "EngineConfig":
        """A copy with the given fields replaced (validated anew)."""
        return dataclasses.replace(self, **overrides)

    def as_dict(self) -> dict:
        """The configuration as a plain dict (for reports/JSON)."""
        return dataclasses.asdict(self)
