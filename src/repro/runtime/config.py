"""The engine configuration: one frozen object instead of booleans.

Before this subsystem existed, cross-cutting evaluator settings
(``cache_enabled``, ``use_sigma``, ...) were threaded as positional
booleans through the mediator, the plan builder, and every lazy
operator constructor.  :class:`EngineConfig` replaces that plumbing
with a single immutable value that the :class:`~repro.runtime.context.
ExecutionContext` carries down the whole tower (client -> mediator ->
lazy operators -> buffer), the shape mediator stacks such as XLive use
for evaluator configuration.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # import cycle: resilience imports this module
    from .resilience import RetryPolicy

__all__ = ["EngineConfig", "ConfigError", "validate_granularity"]


from ..errors import ReproError


class ConfigError(ReproError, ValueError):
    """Raised for invalid engine configurations.

    Also a ``ValueError``: constructor-level validation failures (bad
    chunk sizes and the like) predate this class and were plain
    ValueErrors; keeping the subclassing lets old handlers keep
    working.
    """


def validate_granularity(chunk_size: Optional[int] = None,
                         depth: Optional[int] = None,
                         ) -> Tuple[int, int]:
    """The one positivity check for fragment granularity.

    Every LXP exporter (the source-side wrappers and the
    mediator->client :class:`~repro.client.remote.NavigableLXPServer`)
    takes a ``chunk_size``/``depth`` pair; they all validate through
    here instead of hand-rolling the checks.  ``None`` defaults the
    value from :class:`EngineConfig`'s field default, so the engine
    config stays the single source of granularity defaults.

    Returns the validated ``(chunk_size, depth)`` pair.
    """
    if chunk_size is None:
        chunk_size = EngineConfig.chunk_size
    if depth is None:
        depth = EngineConfig.depth
    if chunk_size <= 0:
        raise ConfigError("chunk_size must be positive")
    if depth <= 0:
        raise ConfigError("depth must be positive")
    return chunk_size, depth


@dataclass(frozen=True)
class EngineConfig:
    """Immutable evaluator configuration for one mediator session.

    Instances are frozen: derive variants with :meth:`replace`.

    Cache policy
        ``cache_enabled`` toggles the paper's operator caches (the E7
        ablation switch); ``cache_budget`` bounds how many *evictable*
        cached entries may live at once across all operator caches of
        one query (None = unbounded).  Eviction is semantically safe:
        every evictable entry is a memo re-derivable from structured
        node-ids (paper Fig. 5), so a bounded budget changes costs,
        never answers.

    Navigation pushdown
        ``use_sigma`` lets getDescendants replace sibling scans by
        ``select(sigma)`` commands pushed to capable sources (paper
        Example 1).

    Optimizer
        ``optimize_plans`` runs the rewriting phase; ``hybrid`` lets it
        insert intermediate eager steps above unbrowsable subplans
        (Section 6).

    Buffer / channel granularity defaults
        ``chunk_size``/``depth`` are the default fragment granularity
        for wrappers and the mediator->client fragment channel;
        ``prefetch`` is the default buffer lookahead;
        ``latency_ms``/``ms_per_kb`` parameterize the simulated remote
        channel.

    Concurrency
        ``prefetch_workers`` backs the buffer's prefetcher with a
        thread pool of that many workers: outstanding holes are filled
        during client think time and handed over under a lock.  0 (the
        default) keeps the deterministic in-line prefetcher, so the
        seed benchmarks are untouched.  ``batch_navigations`` turns on
        LXP pipelining: a demand fill ships as one *batched* round
        trip that also carries up to ``prefetch`` speculative
        follow-up fills, collapsing a forward scan's chain of round
        trips.  ``fanout_workers`` lets lazy operators with
        independent inputs (``concatenate``, the set operators, the
        outer x inner probe of ``join``) dispatch sub-navigations to
        distinct sources concurrently; 0 keeps the sequential
        navigation order byte-for-byte.

    Fault tolerance
        ``retry_max_attempts`` is the total number of tries per I/O
        operation (1 = no retries); ``retry_base_delay_ms`` /
        ``retry_backoff`` / ``retry_max_delay_ms`` shape the
        exponential backoff (with deterministic jitter), and
        ``retry_deadline_ms`` bounds the *cumulative* time one
        operation may spend retrying.  ``breaker_threshold``
        consecutive failures open a per-source circuit breaker that
        fails fast until ``breaker_reset_ms`` has elapsed (then one
        half-open probe decides).  ``on_source_failure`` picks what an
        exhausted failure does: ``"fail"`` aborts the query;
        ``"degrade"`` splices a marked ``<mix:error source=...>``
        placeholder into the virtual answer and lets sibling sources
        continue.  Resilience wrapping only engages when
        :attr:`resilience_active` is true, so the default healthy path
        is byte-for-byte the PR 1 code path.

    Observability
        ``metrics_enabled`` arms the context's
        :class:`~repro.runtime.observability.MetricsRegistry`
        (counters/gauges/histograms; off by default so instrumented
        hot paths cost one attribute read).  ``observe_operators``
        wraps every lazy operator in a span-emitting proxy so traces
        show per-operator navigation amplification -- the expensive
        half of tracing, and the input to the browsability profiler;
        off by default.

    Static analysis
        ``static_analysis`` gates the compile-time plan analyzer in
        ``prepare()``: ``"off"`` (the default) never even imports it,
        ``"static"`` runs it and rejects plans with *error* findings
        (unsatisfiable paths, joins that can never match),
        ``"strict"`` also rejects on warnings (unbrowsable views,
        unbounded amplification).  The per-call ``analyze=`` argument
        of ``prepare``/``query`` overrides this default.

    Source-native pushdown
        ``pushdown`` lets ``prepare()`` compile maximal single-source
        subplans into one native request each (a merged SQL SELECT, a
        page-chain drain, an extent path query, an XPath-style scan)
        negotiated with the registered wrapper.  Answers are
        byte-identical either way -- the mediator replays the original
        chain over the pushed result -- but source navigations for a
        pushed chain collapse to a single native round trip
        (experiment E16).  Off by default: the lazy navigation-driven
        path of the paper stays the reference behavior.

    Cross-session fragment caching
        ``fragment_cache`` routes every admissible wrapper's fills
        through the process-wide
        :class:`~repro.runtime.fragcache.FragmentStore`: session N
        answers ``d``/``r``/``f`` demands from fragments session N-1
        already paid sources for, keyed by ``(view, region)`` and
        tagged with the source's snapshot version (stale entries are
        invalidated, never served).  A wrapper is admissible only when
        it advertises ``snapshot_version()``, declares no side
        effects, and its export is browsable under Definition 2 --
        every registered wrapper gets a decision record in
        ``stats()``/``explain()``.  Off by default: the module is not
        even imported and every session re-navigates from scratch, as
        in the paper.

    Session server (``serve_*``)
        Hardening knobs for the socket-facing mediator daemon
        (:class:`~repro.server.daemon.MediatorServer`; the in-process
        paths never read them).  ``serve_host``/``serve_port`` are the
        bind address (port 0 = ephemeral); ``serve_max_sessions`` is
        the admission-control ceiling on concurrently open sessions
        (excess connections receive a typed ``mix:busy`` reply and are
        closed); ``serve_accept_backlog`` bounds the kernel accept
        queue behind the admission gate.  ``serve_idle_timeout_ms``
        kills sessions whose client stops talking mid-dialogue (the
        slow-loris defense); ``serve_send_timeout_ms`` kills sessions
        whose client stops *reading* (backpressure on stalled
        readers); ``serve_request_deadline_ms`` bounds the server-side
        navigation work of one request (overruns answer
        ``mix:deadline`` and kill the session).
        ``serve_session_max_fills`` / ``serve_session_max_bytes``
        budget how much navigation / shipped-fragment volume one
        session may consume before ``mix:budget`` cuts it off (None =
        unbudgeted).  ``serve_max_frame_bytes`` caps a single wire
        frame in either direction;  ``serve_send_buffer_bytes`` clamps
        the kernel send buffer of accepted connections (None = kernel
        default) so backpressure from a non-reading client surfaces at
        a predictable volume; ``serve_drain_timeout_ms`` is how long a
        SIGTERM drain waits for in-flight sessions before
        force-closing the stragglers.

    Distributed tracing & live telemetry
        ``trace_sample_rate`` is the fraction of traces actually
        recorded when tracing is armed (a recording tracer or
        subscribers): the decision is a deterministic hash of the
        trace id (:func:`~repro.runtime.observability.sample_trace`),
        so the same trace id samples the same way in every process,
        and the sampled bit travels on the LXP wire so the daemon
        skips ``server.request`` spans for unsampled traces.  1.0
        (the default) records everything; the default-off path (no
        tracer armed) never consults it.  ``slow_request_ms`` is the
        daemon's slow-request threshold: requests that take at least
        this long are logged through the always-on flight recorder
        (and as ``server.slow_request`` events when tracing); None
        disables the log.  ``serve_flight_recorder_events`` bounds
        the daemon's flight-recorder ring (the last N operational
        entries kept for incident dumps); ``serve_incident_dir``
        names a directory where each session kill / drain dumps the
        ring as a JSONL incident file (None keeps incident snapshots
        in memory only).
    """

    optimize_plans: bool = True
    hybrid: bool = False
    cache_enabled: bool = True
    cache_budget: Optional[int] = None
    use_sigma: bool = False
    chunk_size: int = 10
    depth: int = 3
    prefetch: int = 0
    prefetch_workers: int = 0
    batch_navigations: bool = False
    fanout_workers: int = 0
    latency_ms: float = 20.0
    ms_per_kb: float = 2.0
    retry_max_attempts: int = 1
    retry_base_delay_ms: float = 10.0
    retry_backoff: float = 2.0
    retry_max_delay_ms: float = 1000.0
    retry_deadline_ms: Optional[float] = None
    breaker_threshold: int = 5
    breaker_reset_ms: float = 30000.0
    on_source_failure: str = "fail"
    metrics_enabled: bool = False
    observe_operators: bool = False
    static_analysis: str = "off"
    pushdown: bool = False
    fragment_cache: bool = False
    serve_host: str = "127.0.0.1"
    serve_port: int = 0
    serve_max_sessions: int = 64
    serve_accept_backlog: int = 16
    serve_idle_timeout_ms: float = 30000.0
    serve_send_timeout_ms: float = 5000.0
    serve_request_deadline_ms: Optional[float] = None
    serve_session_max_fills: Optional[int] = None
    serve_session_max_bytes: Optional[int] = None
    serve_max_frame_bytes: int = 1 << 20
    serve_send_buffer_bytes: Optional[int] = None
    serve_drain_timeout_ms: float = 5000.0
    trace_sample_rate: float = 1.0
    slow_request_ms: Optional[float] = None
    serve_flight_recorder_events: int = 256
    serve_incident_dir: Optional[str] = None

    def __post_init__(self) -> None:
        if self.cache_budget is not None and self.cache_budget < 0:
            raise ConfigError("cache_budget must be >= 0 or None")
        validate_granularity(self.chunk_size, self.depth)
        if self.prefetch < 0:
            raise ConfigError("prefetch must be >= 0")
        if self.prefetch_workers < 0:
            raise ConfigError("prefetch_workers must be >= 0")
        if self.fanout_workers < 0:
            raise ConfigError("fanout_workers must be >= 0")
        if self.latency_ms < 0 or self.ms_per_kb < 0:
            raise ConfigError("channel costs must be >= 0")
        if self.retry_max_attempts < 1:
            raise ConfigError("retry_max_attempts must be >= 1")
        if self.retry_base_delay_ms < 0 or self.retry_max_delay_ms < 0:
            raise ConfigError("retry delays must be >= 0")
        if self.retry_backoff < 1.0:
            raise ConfigError("retry_backoff must be >= 1.0")
        if self.retry_deadline_ms is not None \
                and self.retry_deadline_ms <= 0:
            raise ConfigError("retry_deadline_ms must be positive "
                              "or None")
        if self.breaker_threshold < 1:
            raise ConfigError("breaker_threshold must be >= 1")
        if self.breaker_reset_ms < 0:
            raise ConfigError("breaker_reset_ms must be >= 0")
        if self.on_source_failure not in ("fail", "degrade"):
            raise ConfigError(
                "on_source_failure must be 'fail' or 'degrade', not %r"
                % (self.on_source_failure,))
        if self.static_analysis not in ("off", "static", "strict"):
            raise ConfigError(
                "static_analysis must be 'off', 'static' or 'strict', "
                "not %r" % (self.static_analysis,))
        if not self.serve_host:
            raise ConfigError("serve_host must be non-empty")
        if not (0 <= self.serve_port <= 65535):
            raise ConfigError("serve_port must be in [0, 65535]")
        if self.serve_max_sessions < 1:
            raise ConfigError("serve_max_sessions must be >= 1")
        if self.serve_accept_backlog < 1:
            raise ConfigError("serve_accept_backlog must be >= 1")
        if self.serve_idle_timeout_ms <= 0:
            raise ConfigError("serve_idle_timeout_ms must be positive")
        if self.serve_send_timeout_ms <= 0:
            raise ConfigError("serve_send_timeout_ms must be positive")
        if self.serve_request_deadline_ms is not None \
                and self.serve_request_deadline_ms <= 0:
            raise ConfigError(
                "serve_request_deadline_ms must be positive or None")
        if self.serve_session_max_fills is not None \
                and self.serve_session_max_fills < 1:
            raise ConfigError(
                "serve_session_max_fills must be >= 1 or None")
        if self.serve_session_max_bytes is not None \
                and self.serve_session_max_bytes < 1:
            raise ConfigError(
                "serve_session_max_bytes must be >= 1 or None")
        if self.serve_max_frame_bytes < 64:
            raise ConfigError("serve_max_frame_bytes must be >= 64")
        if self.serve_send_buffer_bytes is not None \
                and self.serve_send_buffer_bytes < 1024:
            raise ConfigError(
                "serve_send_buffer_bytes must be >= 1024 or None")
        if self.serve_drain_timeout_ms < 0:
            raise ConfigError("serve_drain_timeout_ms must be >= 0")
        if not (0.0 <= self.trace_sample_rate <= 1.0):
            raise ConfigError(
                "trace_sample_rate must be in [0.0, 1.0]")
        if self.slow_request_ms is not None \
                and self.slow_request_ms < 0:
            raise ConfigError(
                "slow_request_ms must be >= 0 or None")
        if self.serve_flight_recorder_events < 1:
            raise ConfigError(
                "serve_flight_recorder_events must be >= 1")
        if self.serve_incident_dir is not None \
                and not self.serve_incident_dir:
            raise ConfigError(
                "serve_incident_dir must be non-empty or None")

    @property
    def resilience_active(self) -> bool:
        """Whether the resilience layer wraps the I/O seams at all.

        True when the configuration asks for something the plain path
        cannot deliver: retries, a retry deadline, or degrade mode.
        With the defaults this is False and no wrapping happens, so
        healthy-path performance is unchanged.
        """
        return (self.retry_max_attempts > 1
                or self.retry_deadline_ms is not None
                or self.on_source_failure != "fail")

    def retry_policy(self) -> "RetryPolicy":
        """The :class:`~repro.runtime.resilience.RetryPolicy` these
        fields describe."""
        from .resilience import RetryPolicy
        return RetryPolicy(
            max_attempts=self.retry_max_attempts,
            base_delay_ms=self.retry_base_delay_ms,
            backoff=self.retry_backoff,
            max_delay_ms=self.retry_max_delay_ms,
            deadline_ms=self.retry_deadline_ms,
        )

    def replace(self, **overrides: object) -> "EngineConfig":
        """A copy with the given fields replaced (validated anew)."""
        return dataclasses.replace(self, **overrides)

    def as_dict(self) -> dict:
        """The configuration as a plain dict (for reports/JSON)."""
        return dataclasses.asdict(self)
