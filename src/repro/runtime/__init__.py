"""The unified runtime spine: config, caches, and telemetry.

Everything cross-cutting in the evaluation tower lives here:

* :class:`EngineConfig` -- one frozen configuration object replacing
  the old ``cache_enabled``/``use_sigma`` boolean plumbing;
* :class:`CacheManager`/:class:`ManagedCache` -- the paper's operator
  caches under one memory-budgeted, LRU-evicting registry with
  per-cache hit/miss/eviction counters;
* :class:`ExecutionContext`/:class:`Tracer` -- the per-query carrier
  of config, caches, and span/event hooks, created per ``prepare()``
  and threaded client -> mediator -> lazy operators -> buffer.
"""

from .cache import MISS, CacheManager, CacheStats, ManagedCache
from .config import ConfigError, EngineConfig
from .context import ExecutionContext, TraceEvent, Tracer

__all__ = [
    "EngineConfig", "ConfigError",
    "MISS", "CacheStats", "ManagedCache", "CacheManager",
    "ExecutionContext", "Tracer", "TraceEvent",
]
