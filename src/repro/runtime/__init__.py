"""The unified runtime spine: config, caches, telemetry, resilience.

Everything cross-cutting in the evaluation tower lives here:

* :class:`EngineConfig` -- one frozen configuration object replacing
  the old ``cache_enabled``/``use_sigma`` boolean plumbing;
* :class:`CacheManager`/:class:`ManagedCache` -- the paper's operator
  caches under one memory-budgeted, LRU-evicting registry with
  per-cache hit/miss/eviction counters;
* :class:`ExecutionContext`/:class:`Tracer` -- the per-query carrier
  of config, caches, and span/event hooks, created per ``prepare()``
  and threaded client -> mediator -> lazy operators -> buffer;
* :class:`RetryPolicy`/:class:`CircuitBreaker`/
  :class:`ResilientLXPServer` -- fault tolerance at the I/O seams:
  bounded retries with deterministic backoff, per-source breakers,
  and ``<mix:error>`` partial-answer degradation;
* :class:`MetricsRegistry` + the span/exporter toolkit
  (:mod:`repro.runtime.observability`) -- counters/gauges/histograms,
  causal span trees over the tracer's event stream, and JSONL /
  Chrome-trace / Prometheus exporters.
"""

from .cache import MISS, CacheManager, CacheStats, ManagedCache
from .config import ConfigError, EngineConfig, validate_granularity
from .context import ExecutionContext, TraceEvent, Tracer
from .observability import (
    EVENT_NAMES,
    Counter,
    FlightRecorder,
    Gauge,
    Histogram,
    MetricsRegistry,
    SpanForest,
    SpanNode,
    TraceRecord,
    build_span_tree,
    contract_violations,
    export_chrome_trace,
    export_jsonl,
    export_prometheus,
    load_jsonl,
    merge_traces,
    sample_trace,
)
from .parallel import FanoutDispatcher
from .resilience import (
    ERROR_LABEL,
    SYSTEM_CLOCK,
    BreakerOpenError,
    CircuitBreaker,
    Clock,
    MonotonicClock,
    ResilienceStats,
    ResilientCaller,
    ResilientDocument,
    ResilientLXPServer,
    RetryPolicy,
    error_placeholder,
    is_error_label,
    resilient_document,
    resilient_server,
)

__all__ = [
    "EngineConfig", "ConfigError", "validate_granularity",
    "MISS", "CacheStats", "ManagedCache", "CacheManager",
    "ExecutionContext", "Tracer", "TraceEvent",
    "FanoutDispatcher",
    "Clock", "MonotonicClock", "SYSTEM_CLOCK",
    "RetryPolicy", "BreakerOpenError", "CircuitBreaker",
    "ResilienceStats", "ResilientCaller",
    "ERROR_LABEL", "error_placeholder", "is_error_label",
    "ResilientLXPServer", "ResilientDocument",
    "resilient_server", "resilient_document",
    "MetricsRegistry", "Counter", "Gauge", "Histogram",
    "SpanNode", "SpanForest", "build_span_tree",
    "export_jsonl", "export_chrome_trace", "export_prometheus",
    "EVENT_NAMES", "contract_violations",
    "FlightRecorder", "TraceRecord",
    "load_jsonl", "merge_traces", "sample_trace",
]
