"""The execution context: the spine threaded through the tower.

One :class:`ExecutionContext` is created per :meth:`MIXMediator.
prepare` and handed down through plan building into every lazy
operator; buffers and remote channels register their stats objects
with it.  It carries exactly four things:

* the frozen :class:`~repro.runtime.config.EngineConfig`,
* the :class:`~repro.runtime.cache.CacheManager` holding every
  operator cache of the query under one budget,
* a :class:`Tracer` whose span/event callbacks see each navigation
  crossing the layers (mediator, lazy operators, sources, channel),
  now with causal span ids linking the crossings into one tree,
* a :class:`~repro.runtime.observability.MetricsRegistry` of
  counters, gauges, and histograms (disabled by default; enable with
  ``EngineConfig(metrics_enabled=True)``).

``QueryResult.stats()`` aggregates the context into a single report:
source navigations, per-cache hit/miss/eviction counts, and -- for
remote sessions -- channel messages/bytes.
"""

from __future__ import annotations

import itertools
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import (Any, Callable, ContextManager, Dict, Iterator,
                    List, Optional, TYPE_CHECKING)

if TYPE_CHECKING:  # import cycle: resilience imports this module
    from .resilience import Clock

from .cache import CacheManager
from .config import EngineConfig
from .observability import MetricsRegistry
from .parallel import FanoutDispatcher
from .locks import make_lock

__all__ = ["TraceEvent", "Tracer", "ExecutionContext"]


@dataclass
class TraceEvent:
    """One crossing of a layer boundary.

    ``span_id``/``parent_id`` place the event in the causal span tree
    of the navigation that produced it: ``*.begin``/``*.end`` pairs
    carry their span's id, point events carry the enclosing span in
    ``parent_id``.  ``ts_ms`` is the tracer clock's reading (a
    :class:`~repro.testing.faults.FakeClock` in tests makes it
    deterministic) and ``thread`` the emitting thread's identity.

    The span fields deliberately stay out of :meth:`__str__`: the
    golden navigation traces under ``tests/golden/`` compare the
    string form, which remains exactly ``layer.event key=value ...``.
    """

    layer: str
    event: str
    data: dict = field(default_factory=dict)
    span_id: Optional[int] = None
    parent_id: Optional[int] = None
    ts_ms: Optional[float] = None
    thread: Optional[int] = None

    def __str__(self) -> str:
        # Keyed on str(key): heterogeneous data dicts (int and str
        # keys mixed) must render, not raise -- sorting the raw items
        # compares unlike types on Python 3.9.  All-string dicts sort
        # exactly as before, keeping the golden traces stable.
        detail = " ".join(
            "%s=%r" % kv
            for kv in sorted(self.data.items(),
                             key=lambda kv: str(kv[0])))
        return ("%s.%s %s" % (self.layer, self.event, detail)).rstrip()

    def to_dict(self) -> dict:
        """The stable serialization shape of one event (what the JSONL
        exporter writes, one object per line)."""
        return {
            "layer": self.layer,
            "event": self.event,
            "data": {str(k): v for k, v in self.data.items()},
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "ts_ms": self.ts_ms,
            "thread": self.thread,
        }


class Tracer:
    """Span/event hooks for the execution tower.

    Subscribing a callback makes every layer's :meth:`emit` call it
    with a :class:`TraceEvent`; with ``record=True`` events are also
    kept in :attr:`events`.  An idle tracer (no subscribers, not
    recording) is near-free: instrumented layers check :attr:`active`
    before building events.

    The tracer is safe under concurrent emitters and subscribers:
    prefetch workers and fan-out threads emit through the same
    instance the client thread reads, so the subscriber list and the
    event record are guarded by a lock.  Callbacks are invoked
    *outside* the lock (a callback may itself navigate, which may
    emit).

    **Causal spans.**  :meth:`span` mints a span id, remembers the
    enclosing span on a thread-local stack, and stamps both onto the
    begin/end events; :meth:`emit` stamps the current span as the
    point event's ``parent_id``.  One client navigation therefore
    yields a *tree* of spans down through mediator -> lazy operators
    -> buffer -> channel -> source (reconstructable with
    :func:`~repro.runtime.observability.build_span_tree`).  Work that
    hops threads keeps the tree connected through :meth:`capture` /
    :meth:`attach`: the dispatching side captures the current span,
    the worker attaches it before running (the fan-out dispatcher and
    the async prefetcher do this automatically).

    ``clock`` supplies the event timestamps; tests inject a
    :class:`~repro.testing.faults.FakeClock` so traces are
    deterministic.  The default reads the system monotonic clock.

    **Trace identity & sampling.**  :attr:`trace_id` names the whole
    causal trace (one id per client session; minted lazily by
    :meth:`ensure_trace_id`); it travels on the LXP wire so client
    and server exports can be merged into one forest.  :meth:`sample`
    applies the deterministic hash decision of
    :func:`~repro.runtime.observability.sample_trace` and flips
    :attr:`sampled`; an unsampled tracer reports :attr:`active` False
    even while recording, so sampling bounds the record-mode cost
    without touching any emit site.
    """

    def __init__(self, record: bool = False,
                 clock: Optional["Clock"] = None,
                 trace_id: Optional[str] = None) -> None:
        self._callbacks: List[Callable[[TraceEvent], None]] = []
        self.record = record
        self.events: List[TraceEvent] = []
        self.trace_id = trace_id
        self.sampled = True
        self._lock = make_lock("trace.tracer")
        self._clock = clock
        self._span_ids = itertools.count(1)
        self._tls = threading.local()

    @property
    def active(self) -> bool:
        """Whether emitting is observable at all."""
        return self.sampled and (self.record or bool(self._callbacks))

    @property
    def configured(self) -> bool:
        """Whether anything asked for tracing (pre-sampling).

        Distinct from :attr:`active`: a recording tracer whose trace
        was sampled *out* is configured but not active.  The client
        only mints and ships trace context on the wire when this is
        true, so the default-off path stays byte-identical.
        """
        return self.record or bool(self._callbacks)

    def ensure_trace_id(self) -> str:
        """The trace id, minted on first use.

        The lazy ``uuid`` import is deliberate: the default path never
        calls this, and the E18 subprocess proof asserts the module
        stays unimported.
        """
        if self.trace_id is None:
            import uuid
            self.trace_id = uuid.uuid4().hex[:16]
        return self.trace_id

    def sample(self, rate: float) -> bool:
        """Apply the deterministic sampling decision for ``rate``.

        Ensures a trace id, hashes it through
        :func:`~repro.runtime.observability.sample_trace`, records the
        verdict in :attr:`sampled`, and returns it.
        """
        from .observability import sample_trace
        self.sampled = sample_trace(self.ensure_trace_id(), rate)
        return self.sampled

    def _now(self) -> float:
        clock = self._clock
        if clock is None:
            from .resilience import SYSTEM_CLOCK
            clock = self._clock = SYSTEM_CLOCK
        return clock.now_ms()

    # -- span context ------------------------------------------------------
    def _stack(self) -> List[int]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    def current_span(self) -> Optional[int]:
        """The innermost open span on this thread (None outside)."""
        stack = getattr(self._tls, "stack", None)
        return stack[-1] if stack else None

    def capture(self) -> Optional[int]:
        """The current span id, for handing to another thread."""
        return self.current_span()

    @contextmanager
    def attach(self, span_id: Optional[int]) -> Iterator["Tracer"]:
        """Adopt a captured span as this thread's current span.

        Worker threads bracket their task with this so the spans and
        events they emit stay children of the navigation that
        scheduled the work -- one connected tree, no orphans.
        Attaching ``None`` is a no-op (the dispatching side had no
        open span).
        """
        if span_id is None:
            yield self
            return
        stack = self._stack()
        stack.append(span_id)
        try:
            yield self
        finally:
            stack.pop()

    def subscribe(self, callback: Callable[[TraceEvent], None]) -> None:
        """Register a callback invoked on every event."""
        with self._lock:
            self._callbacks.append(callback)

    @contextmanager
    def subscribed(self, callback: Callable[[TraceEvent], None]
                   ) -> Iterator[Callable[[TraceEvent], None]]:
        """Subscribe ``callback`` for the duration of a block.

        The exception-safe pairing of :meth:`subscribe` and
        :meth:`unsubscribe`: the callback is removed on the way out
        even when the block raises, so a failing test or exporter can
        never leak its subscription (and then trip the strict
        double-unsubscribe check elsewhere).
        """
        self.subscribe(callback)
        try:
            yield callback
        finally:
            self.unsubscribe(callback)

    def unsubscribe(self,
                    callback: Callable[[TraceEvent], None]) -> None:
        """Remove a previously subscribed callback.

        Raises ``ValueError`` when the callback was never subscribed
        (or was already removed) -- a silent no-op would mask the
        double-unsubscribe bugs this method exists to prevent.
        """
        with self._lock:
            try:
                self._callbacks.remove(callback)
            except ValueError:
                raise ValueError(
                    "callback %r is not subscribed" % (callback,)
                ) from None

    def emit(self, layer: str, event: str, **data: object) -> None:
        """Publish one point event to subscribers (and the record).

        The event is stamped with the enclosing span (``parent_id``),
        the clock reading, and the emitting thread.
        """
        if not self.active:
            return
        self._publish(TraceEvent(
            layer, event, data,
            parent_id=self.current_span(),
            ts_ms=self._now(),
            thread=threading.get_ident()))

    def _publish(self, record: TraceEvent) -> None:
        with self._lock:
            if self.record:
                self.events.append(record)
            callbacks = list(self._callbacks)
        for callback in callbacks:
            callback(record)

    @contextmanager
    def span(self, layer: str, name: str,
             **data: object) -> Iterator["Tracer"]:
        """A begin/end event pair around a block.

        Mints a span id, stamps it (plus the enclosing span as
        ``parent_id``) on the ``<name>.begin``/``<name>.end`` events,
        and makes it the current span for the block so nested spans
        and point events become its children.  The ``.end`` event is
        emitted even when the block raises.  Idle tracers skip all of
        it -- no id is minted, nothing is pushed.
        """
        if not self.active:
            yield self
            return
        parent = self.current_span()
        span_id = next(self._span_ids)
        thread = threading.get_ident()
        self._publish(TraceEvent(
            layer, name + ".begin", dict(data),
            span_id=span_id, parent_id=parent,
            ts_ms=self._now(), thread=thread))
        stack = self._stack()
        stack.append(span_id)
        try:
            yield self
        finally:
            stack.pop()
            self._publish(TraceEvent(
                layer, name + ".end", dict(data),
                span_id=span_id, parent_id=parent,
                ts_ms=self._now(), thread=thread))


class ExecutionContext:
    """Config + caches + tracing for one prepared query.

    Create one with :meth:`create`; the mediator does so per
    ``prepare()`` and threads it through ``build_virtual_document``
    into every operator, so the query's whole cache footprint lives
    (and is bounded) in one place.
    """

    def __init__(self, config: Optional[EngineConfig] = None,
                 caches: Optional[CacheManager] = None,
                 tracer: Optional[Tracer] = None,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        self.config = config if config is not None else EngineConfig()
        if caches is None:
            caches = CacheManager(budget=self.config.cache_budget,
                                  enabled=self.config.cache_enabled)
        self.caches = caches
        self.tracer = tracer if tracer is not None else Tracer()
        if metrics is None:
            metrics = MetricsRegistry(
                enabled=self.config.metrics_enabled)
        #: the query's metric instruments (counters, gauges,
        #: histograms) -- the fourth registry next to caches, buffers,
        #: and resilience.  Disabled registries short-circuit in the
        #: instruments themselves, so instrumentation costs one
        #: attribute read when metrics are off.
        self.metrics = metrics
        #: buffer stats registered by name (generic buffer components)
        self.buffers: Dict[str, Any] = {}
        #: channel stats registered by name (remote sessions)
        self.channels: Dict[str, Any] = {}
        #: resilience stats registered by name (retry/breaker seams)
        self.resilience: Dict[str, Any] = {}
        #: the shared fragment store's stats, when fragment caching is
        #: on (None otherwise -- the stats report then has no
        #: "fragcache" section, keeping the default shape unchanged)
        self.fragcache: Optional[Any] = None
        #: guards the registries: buffers and channels register from
        #: whichever thread opens them (fan-out tasks, prefetch
        #: workers), and names are minted from registry sizes
        self._registry_lock = make_lock("context.registry")
        self._fanout: Optional[FanoutDispatcher] = None
        #: per-kind serial numbers behind :meth:`mint_operator_name`
        self._operator_serials: Dict[str, int] = {}

    @classmethod
    def create(cls, config: Optional[EngineConfig] = None,
               tracer: Optional[Tracer] = None,
               **overrides: object) -> "ExecutionContext":
        """A fresh context, optionally overriding config fields::

            ctx = ExecutionContext.create(cache_enabled=False)
        """
        config = config if config is not None else EngineConfig()
        if overrides:
            config = config.replace(**overrides)
        return cls(config=config, tracer=tracer)

    # -- tracing -----------------------------------------------------------
    def trace(self, layer: str, event: str, **data: object) -> None:
        """Emit one event through the context's tracer."""
        # lint: allow=E002 -- the forwarding seam; call sites are checked
        self.tracer.emit(layer, event, **data)

    def span(self, layer: str, name: str,
             **data: object) -> ContextManager["Tracer"]:
        """A tracing span (contextmanager) through the tracer."""
        # lint: allow=E002 -- the forwarding seam; call sites are checked
        return self.tracer.span(layer, name, **data)

    def mint_operator_name(self, kind: str) -> str:
        """A fresh ``Kind#N`` label for one observed operator --
        serials are per kind and per context, so names are
        deterministic in plan-build order."""
        with self._registry_lock:
            serial = self._operator_serials.get(kind, 0) + 1
            self._operator_serials[kind] = serial
            return "%s#%d" % (kind, serial)

    # -- concurrency -------------------------------------------------------
    @property
    def fanout(self) -> FanoutDispatcher:
        """The query's shared :class:`FanoutDispatcher` (created on
        first use from ``config.fanout_workers``; inert when 0)."""
        dispatcher = self._fanout
        if dispatcher is None:
            with self._registry_lock:
                if self._fanout is None:
                    self._fanout = FanoutDispatcher(
                        self.config.fanout_workers,
                        tracer=self.tracer)
                dispatcher = self._fanout
        return dispatcher

    def close(self) -> None:
        """Release pooled resources (the fan-out executor)."""
        dispatcher = self._fanout
        if dispatcher is not None:
            dispatcher.close()

    # -- registries --------------------------------------------------------
    def register_buffer(self, name: str, stats: Any) -> None:
        """Attach a buffer's stats object for aggregated reporting."""
        with self._registry_lock:
            self.buffers[name] = stats

    def register_buffer_auto(self, stats: Any) -> str:
        """Register a client-side buffer under a freshly minted
        ``client-buffer#N`` name and return the name (see
        :meth:`register_channel_auto`)."""
        with self._registry_lock:
            name = "client-buffer#%d" % (len(self.buffers) + 1)
            self.buffers[name] = stats
            return name

    def register_channel(self, name: str, stats: Any) -> None:
        """Attach a remote channel's stats for aggregated reporting."""
        with self._registry_lock:
            self.channels[name] = stats

    def register_channel_auto(self, stats: Any) -> str:
        """Register a channel under a freshly minted ``remote#N`` name
        and return the name.  Mint and insert happen under one lock,
        so concurrent sessions opening channels never collide."""
        with self._registry_lock:
            name = "remote#%d" % (len(self.channels) + 1)
            self.channels[name] = stats
            return name

    def register_resilience(self, name: str, stats: Any) -> None:
        """Attach a resilient seam's retry/breaker/degradation stats
        for aggregated reporting."""
        with self._registry_lock:
            self.resilience[name] = stats

    def register_fragcache(self, stats: Any) -> None:
        """Attach the fragment store's hit/miss/invalidation counters
        for aggregated reporting (one store per context: sessions
        share the process-wide store, so later registrations of the
        same object are idempotent)."""
        with self._registry_lock:
            self.fragcache = stats

    def adopt_registries(self, other: "ExecutionContext") -> None:
        """Share another context's registered stats objects (the
        mediator seeds each per-query context with the session-level
        wrapper registrations)."""
        with other._registry_lock:
            buffers = dict(other.buffers)
            channels = dict(other.channels)
            resilience = dict(other.resilience)
            fragcache = other.fragcache
        with self._registry_lock:
            self.buffers.update(buffers)
            self.channels.update(channels)
            self.resilience.update(resilience)
            if fragcache is not None:
                self.fragcache = fragcache

    # -- metrics -----------------------------------------------------------
    def _collect_metrics(self) -> None:
        """Fold the registered stats objects into gauges.

        Pull-based: instead of every cache/buffer/channel pushing on
        each operation, the snapshot reads the registries it already
        has.  Keeps the hot paths free of double accounting and the
        gauges consistent with ``stats_report()``.
        """
        metrics = self.metrics
        if not metrics.enabled:
            return
        cache_dict = self.caches.as_dict()
        hits = metrics.gauge("cache_hits")
        misses = metrics.gauge("cache_misses")
        evictions = metrics.gauge("cache_evictions")
        for name, counts in cache_dict.get("caches", {}).items():
            hits.set(counts["hits"], cache=name)
            misses.set(counts["misses"], cache=name)
            evictions.set(counts["evictions"], cache=name)
        with self._registry_lock:
            buffers = dict(self.buffers)
            channels = dict(self.channels)
            resilience = dict(self.resilience)
        buf_nav = metrics.gauge("buffer_navigations")
        buf_hits = metrics.gauge("buffer_hits")
        buf_fills = metrics.gauge("buffer_hole_fills")
        for name, stats in buffers.items():
            buf_nav.set(stats.navigations, buffer=name)
            buf_hits.set(stats.hits, buffer=name)
            buf_fills.set(stats.fills, buffer=name)
        chan_msgs = metrics.gauge("channel_messages")
        chan_bytes = metrics.gauge("channel_bytes")
        for name, stats in channels.items():
            snap = stats.snapshot()
            chan_msgs.set(snap["messages"], channel=name)
            chan_bytes.set(snap["bytes_transferred"], channel=name)
        res_retries = metrics.gauge("resilience_retries")
        res_giveups = metrics.gauge("resilience_giveups")
        res_degraded = metrics.gauge("resilience_degraded")
        for name, stats in resilience.items():
            counts = stats.snapshot()
            res_retries.set(counts["retries"], source=name)
            res_giveups.set(counts["giveups"], source=name)
            res_degraded.set(counts["degraded"], source=name)

    def metrics_snapshot(self) -> dict:
        """The full metric state as plain dicts (see
        :meth:`MetricsRegistry.snapshot`), with the registry-backed
        gauges refreshed first."""
        self._collect_metrics()
        return self.metrics.snapshot()

    def metrics_prometheus(self) -> str:
        """The metric state in Prometheus text exposition format."""
        self._collect_metrics()
        return self.metrics.to_prometheus()

    # -- reporting ---------------------------------------------------------
    def stats_report(self) -> dict:
        """Caches, buffers, and channels in one plain-dict view."""
        report = {"config": self.config.as_dict(),
                  "caches": self.caches.as_dict()}
        # Copy the registries under their lock: concurrent sessions
        # (fan-out tasks, server handler threads) may be registering
        # new entries while this report is taken.
        with self._registry_lock:
            buffers = dict(self.buffers)
            channels = dict(self.channels)
            resilience = dict(self.resilience)
            fragcache = self.fragcache
        if fragcache is not None:
            report["fragcache"] = fragcache.snapshot()
        if buffers:
            report["buffers"] = {
                name: {"navigations": stats.navigations,
                       "hits": stats.hits, "fills": stats.fills}
                for name, stats in sorted(buffers.items())}
        if resilience:
            # snapshot(), not as_dict(): seams may still be live when
            # a report is taken (server sessions report concurrently).
            per_seam = {name: stats.snapshot()
                        for name, stats in sorted(resilience.items())}
            report["resilience"] = {
                "retries": sum(s["retries"] for s in per_seam.values()),
                "giveups": sum(s["giveups"] for s in per_seam.values()),
                "degraded": sum(s["degraded"]
                                for s in per_seam.values()),
                "breaker_opens": sum(s["breaker_opens"]
                                     for s in per_seam.values()),
                "per_source": per_seam,
            }
        if channels:
            per_channel = {name: stats.snapshot()
                           for name, stats in sorted(channels.items())}
            report["channels"] = {
                "messages": sum(s["messages"]
                                for s in per_channel.values()),
                "bytes_transferred": sum(s["bytes_transferred"]
                                         for s in per_channel.values()),
                "per_channel": {
                    name: {"messages": snap["messages"],
                           "bytes_transferred": snap["bytes_transferred"],
                           "virtual_ms": snap["virtual_ms"]}
                    for name, snap in per_channel.items()},
            }
        if self.metrics.enabled:
            report["metrics"] = self.metrics_snapshot()
        return report
