"""The execution context: the spine threaded through the tower.

One :class:`ExecutionContext` is created per :meth:`MIXMediator.
prepare` and handed down through plan building into every lazy
operator; buffers and remote channels register their stats objects
with it.  It carries exactly three things:

* the frozen :class:`~repro.runtime.config.EngineConfig`,
* the :class:`~repro.runtime.cache.CacheManager` holding every
  operator cache of the query under one budget,
* a :class:`Tracer` whose span/event callbacks see each navigation
  crossing the layers (mediator, lazy operators, sources, channel).

``QueryResult.stats()`` aggregates the context into a single report:
source navigations, per-cache hit/miss/eviction counts, and -- for
remote sessions -- channel messages/bytes.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from .cache import CacheManager
from .config import EngineConfig
from .parallel import FanoutDispatcher

__all__ = ["TraceEvent", "Tracer", "ExecutionContext"]


@dataclass
class TraceEvent:
    """One crossing of a layer boundary."""

    layer: str
    event: str
    data: dict = field(default_factory=dict)

    def __str__(self) -> str:
        detail = " ".join("%s=%r" % kv for kv in sorted(self.data.items()))
        return ("%s.%s %s" % (self.layer, self.event, detail)).rstrip()


class Tracer:
    """Span/event hooks for the execution tower.

    Subscribing a callback makes every layer's :meth:`emit` call it
    with a :class:`TraceEvent`; with ``record=True`` events are also
    kept in :attr:`events`.  An idle tracer (no subscribers, not
    recording) is near-free: instrumented layers check :attr:`active`
    before building events.

    The tracer is safe under concurrent emitters and subscribers:
    prefetch workers and fan-out threads emit through the same
    instance the client thread reads, so the subscriber list and the
    event record are guarded by a lock.  Callbacks are invoked
    *outside* the lock (a callback may itself navigate, which may
    emit).
    """

    def __init__(self, record: bool = False):
        self._callbacks: List[Callable[[TraceEvent], None]] = []
        self.record = record
        self.events: List[TraceEvent] = []
        self._lock = threading.Lock()

    @property
    def active(self) -> bool:
        """Whether emitting is observable at all."""
        return self.record or bool(self._callbacks)

    def subscribe(self, callback: Callable[[TraceEvent], None]) -> None:
        """Register a callback invoked on every event."""
        with self._lock:
            self._callbacks.append(callback)

    def unsubscribe(self,
                    callback: Callable[[TraceEvent], None]) -> None:
        """Remove a previously subscribed callback.

        Raises ``ValueError`` when the callback was never subscribed
        (or was already removed) -- a silent no-op would mask the
        double-unsubscribe bugs this method exists to prevent.
        """
        with self._lock:
            try:
                self._callbacks.remove(callback)
            except ValueError:
                raise ValueError(
                    "callback %r is not subscribed" % (callback,)
                ) from None

    def emit(self, layer: str, event: str, **data) -> None:
        """Publish one event to subscribers (and the record)."""
        if not self.active:
            return
        record = TraceEvent(layer, event, data)
        with self._lock:
            if self.record:
                self.events.append(record)
            callbacks = list(self._callbacks)
        for callback in callbacks:
            callback(record)

    @contextmanager
    def span(self, layer: str, name: str, **data):
        """A begin/end event pair around a block."""
        self.emit(layer, name + ".begin", **data)
        try:
            yield self
        finally:
            self.emit(layer, name + ".end", **data)


class ExecutionContext:
    """Config + caches + tracing for one prepared query.

    Create one with :meth:`create`; the mediator does so per
    ``prepare()`` and threads it through ``build_virtual_document``
    into every operator, so the query's whole cache footprint lives
    (and is bounded) in one place.
    """

    def __init__(self, config: Optional[EngineConfig] = None,
                 caches: Optional[CacheManager] = None,
                 tracer: Optional[Tracer] = None):
        self.config = config if config is not None else EngineConfig()
        if caches is None:
            caches = CacheManager(budget=self.config.cache_budget,
                                  enabled=self.config.cache_enabled)
        self.caches = caches
        self.tracer = tracer if tracer is not None else Tracer()
        #: buffer stats registered by name (generic buffer components)
        self.buffers: Dict[str, object] = {}
        #: channel stats registered by name (remote sessions)
        self.channels: Dict[str, object] = {}
        #: resilience stats registered by name (retry/breaker seams)
        self.resilience: Dict[str, object] = {}
        #: guards the registries: buffers and channels register from
        #: whichever thread opens them (fan-out tasks, prefetch
        #: workers), and names are minted from registry sizes
        self._registry_lock = threading.Lock()
        self._fanout: Optional[FanoutDispatcher] = None

    @classmethod
    def create(cls, config: Optional[EngineConfig] = None,
               tracer: Optional[Tracer] = None,
               **overrides) -> "ExecutionContext":
        """A fresh context, optionally overriding config fields::

            ctx = ExecutionContext.create(cache_enabled=False)
        """
        config = config if config is not None else EngineConfig()
        if overrides:
            config = config.replace(**overrides)
        return cls(config=config, tracer=tracer)

    # -- tracing -----------------------------------------------------------
    def trace(self, layer: str, event: str, **data) -> None:
        """Emit one event through the context's tracer."""
        self.tracer.emit(layer, event, **data)

    def span(self, layer: str, name: str, **data):
        """A tracing span (contextmanager) through the tracer."""
        return self.tracer.span(layer, name, **data)

    # -- concurrency -------------------------------------------------------
    @property
    def fanout(self) -> FanoutDispatcher:
        """The query's shared :class:`FanoutDispatcher` (created on
        first use from ``config.fanout_workers``; inert when 0)."""
        dispatcher = self._fanout
        if dispatcher is None:
            with self._registry_lock:
                if self._fanout is None:
                    self._fanout = FanoutDispatcher(
                        self.config.fanout_workers)
                dispatcher = self._fanout
        return dispatcher

    def close(self) -> None:
        """Release pooled resources (the fan-out executor)."""
        dispatcher = self._fanout
        if dispatcher is not None:
            dispatcher.close()

    # -- registries --------------------------------------------------------
    def register_buffer(self, name: str, stats) -> None:
        """Attach a buffer's stats object for aggregated reporting."""
        with self._registry_lock:
            self.buffers[name] = stats

    def register_buffer_auto(self, stats) -> str:
        """Register a client-side buffer under a freshly minted
        ``client-buffer#N`` name and return the name (see
        :meth:`register_channel_auto`)."""
        with self._registry_lock:
            name = "client-buffer#%d" % (len(self.buffers) + 1)
            self.buffers[name] = stats
            return name

    def register_channel(self, name: str, stats) -> None:
        """Attach a remote channel's stats for aggregated reporting."""
        with self._registry_lock:
            self.channels[name] = stats

    def register_channel_auto(self, stats) -> str:
        """Register a channel under a freshly minted ``remote#N`` name
        and return the name.  Mint and insert happen under one lock,
        so concurrent sessions opening channels never collide."""
        with self._registry_lock:
            name = "remote#%d" % (len(self.channels) + 1)
            self.channels[name] = stats
            return name

    def register_resilience(self, name: str, stats) -> None:
        """Attach a resilient seam's retry/breaker/degradation stats
        for aggregated reporting."""
        with self._registry_lock:
            self.resilience[name] = stats

    def adopt_registries(self, other: "ExecutionContext") -> None:
        """Share another context's registered stats objects (the
        mediator seeds each per-query context with the session-level
        wrapper registrations)."""
        with other._registry_lock:
            buffers = dict(other.buffers)
            channels = dict(other.channels)
            resilience = dict(other.resilience)
        with self._registry_lock:
            self.buffers.update(buffers)
            self.channels.update(channels)
            self.resilience.update(resilience)

    # -- reporting ---------------------------------------------------------
    def stats_report(self) -> dict:
        """Caches, buffers, and channels in one plain-dict view."""
        report = {"config": self.config.as_dict(),
                  "caches": self.caches.as_dict()}
        if self.buffers:
            report["buffers"] = {
                name: {"navigations": stats.navigations,
                       "hits": stats.hits, "fills": stats.fills}
                for name, stats in sorted(self.buffers.items())}
        if self.resilience:
            per_seam = {name: stats.as_dict()
                        for name, stats in sorted(self.resilience.items())}
            report["resilience"] = {
                "retries": sum(s["retries"] for s in per_seam.values()),
                "giveups": sum(s["giveups"] for s in per_seam.values()),
                "degraded": sum(s["degraded"]
                                for s in per_seam.values()),
                "breaker_opens": sum(s["breaker_opens"]
                                     for s in per_seam.values()),
                "per_source": per_seam,
            }
        if self.channels:
            messages = sum(s.messages for s in self.channels.values())
            transferred = sum(s.bytes_transferred
                              for s in self.channels.values())
            report["channels"] = {
                "messages": messages,
                "bytes_transferred": transferred,
                "per_channel": {
                    name: {"messages": stats.messages,
                           "bytes_transferred": stats.bytes_transferred,
                           "virtual_ms": stats.virtual_ms}
                    for name, stats in sorted(self.channels.items())},
            }
        return report
