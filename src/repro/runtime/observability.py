"""The observability layer: metrics, span trees, and exporters.

The paper's central claims are quantitative -- a lazy mediator
translates each client navigation into a bounded (or unbounded) number
of source navigations (Definition 2), and the buffer/LXP layer trades
round trips for fragment granularity.  This module turns every run
into evidence for (or against) those claims:

* :class:`MetricsRegistry` -- counters, gauges, and fixed-bucket
  histograms with Prometheus-style labels, registered on the
  :class:`~repro.runtime.context.ExecutionContext` next to the cache
  and resilience registries and folded into ``QueryResult.stats()``.
  A disabled registry (the default) short-circuits every instrument
  call on one attribute check, keeping the idle path within noise.
* :class:`SpanNode` / :func:`build_span_tree` -- reconstruct the
  causal tree of one (or many) client navigations from a
  :class:`~repro.runtime.context.Tracer` event stream: client span ->
  operator spans -> buffer fills -> channel round trips -> source
  commands.  The tree is what the browsability profiler
  (:mod:`repro.navigation.profiler`) consumes.
* Exporters -- newline-delimited JSON (:func:`export_jsonl`), the
  Chrome ``trace_event`` format loadable in ``chrome://tracing`` and
  Perfetto (:func:`export_chrome_trace`), and a Prometheus text
  exposition snapshot (:func:`export_prometheus`).
* :data:`EVENT_NAMES` -- the stable event-name contract.  The golden
  navigation traces and the documented span taxonomy in
  ``docs/PROTOCOLS.md`` both key off these names; a tier-1 test
  asserts code, docs, and goldens agree, so a rename cannot land
  silently.

Nothing here imports the tracer: exporters and the tree builder are
duck-typed over :class:`~repro.runtime.context.TraceEvent`'s public
fields (``layer``, ``event``, ``data``, ``span_id``, ``parent_id``,
``ts_ms``, ``thread``), which keeps the module free of import cycles
with :mod:`repro.runtime.context`.
"""

from __future__ import annotations

import collections
import itertools
import json
import os
import time
import zlib
from dataclasses import dataclass, field
from typing import (Any, Callable, Deque, Dict, Iterable, List,
                    Optional, Sequence, Tuple, cast)

from .locks import make_lock, make_rlock

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "SpanNode", "SpanForest", "build_span_tree",
    "export_jsonl", "export_chrome_trace", "export_prometheus",
    "EVENT_NAMES", "contract_violations", "span_name_of",
    "FlightRecorder", "TraceRecord", "load_jsonl", "merge_traces",
    "sample_trace",
]


# ----------------------------------------------------------------------
# The event-name contract
# ----------------------------------------------------------------------

#: Every event name each layer may emit, as a stable contract.  Span
#: layers list the *span* names (the wire events are ``<name>.begin``
#: and ``<name>.end``); point layers list the event names verbatim.
#: ``docs/PROTOCOLS.md`` documents this same table and
#: ``tests/test_event_contract.py`` asserts the two never diverge --
#: the golden traces under ``tests/golden/`` depend on these names.
EVENT_NAMES: Dict[str, Dict[str, Tuple[str, ...]]] = {
    "spans": {
        "client": ("down", "right", "fetch", "select"),
        "operator": ("first_binding", "next_binding", "attribute",
                     "v_down", "v_right", "v_fetch", "v_select"),
        "buffer": ("fill", "prefetch_fill"),
        "mediator": ("prepare",),
        "pushdown": ("compile", "execute"),
        "fragcache": ("fill",),
        "server": ("session", "request"),
    },
    "events": {
        "mediator": ("register_source", "prepare.begin", "prepare.end",
                     "optimize", "optimizer.discarded_result",
                     "static_analysis"),
        "source": ("d", "r", "f", "select"),
        "channel": ("round_trip",),
        "resilience": ("failure", "retry", "short_circuit",
                       "breaker_open", "deadline_exceeded",
                       "degraded"),
        "pushdown": ("decision",),
        "fragcache": ("decision", "hit", "miss", "store",
                      "invalidate", "wait", "complete", "adopt"),
        "server": ("listen", "accept", "reject", "open", "close",
                   "kill", "drain", "status", "incident",
                   "slow_request"),
        "trace": ("sample", "adopt"),
    },
}


def _contracted_names() -> Dict[str, set]:
    """layer -> full set of legal wire event names."""
    names: Dict[str, set] = {}
    for layer, spans in EVENT_NAMES["spans"].items():
        bucket = names.setdefault(layer, set())
        for span in spans:
            bucket.add(span + ".begin")
            bucket.add(span + ".end")
    for layer, events in EVENT_NAMES["events"].items():
        names.setdefault(layer, set()).update(events)
    return names


def contract_violations(events: Iterable) -> List[str]:
    """Event names outside :data:`EVENT_NAMES`, as ``layer.event``
    strings (empty when the stream conforms)."""
    contract = _contracted_names()
    violations = []
    for event in events:
        legal = contract.get(event.layer)
        if legal is None or event.event not in legal:
            name = "%s.%s" % (event.layer, event.event)
            if name not in violations:
                violations.append(name)
    return violations


def span_name_of(event: Any) -> Optional[str]:
    """The span name of a ``*.begin``/``*.end`` event, else None."""
    if event.span_id is None:
        return None
    base, _, suffix = event.event.rpartition(".")
    if suffix in ("begin", "end") and base:
        return base
    return None


# ----------------------------------------------------------------------
# Trace sampling
# ----------------------------------------------------------------------

#: hash-space granularity of the sampling decision: rates are
#: effectively quantized to 1/10000.
_SAMPLE_BUCKETS = 10000


def sample_trace(trace_id: str, rate: float) -> bool:
    """The deterministic head-sampling decision for one trace.

    Hashes the trace id (CRC32, the repo's convention for
    deterministic decisions -- retry jitter and fragment-store
    sharding use the same trick) into one of ``_SAMPLE_BUCKETS``
    buckets and keeps the trace when its bucket falls under ``rate``.
    The decision is a pure function of ``(trace_id, rate)``: every
    process that sees the same trace id -- the client that minted it
    and the daemon that adopted it off the wire -- reaches the same
    verdict without coordination, so a trace is always recorded
    end-to-end or not at all.
    """
    if rate >= 1.0:
        return True
    if rate <= 0.0:
        return False
    bucket = zlib.crc32(trace_id.encode("utf-8")) % _SAMPLE_BUCKETS
    return bucket < int(rate * _SAMPLE_BUCKETS)


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: dict) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class _Instrument:
    """Shared series storage of the three instrument kinds."""

    kind = "untyped"

    def __init__(self, name: str,
                 registry: "MetricsRegistry") -> None:
        self.name = name
        self.help = ""
        self._registry = registry
        self._series: Dict[LabelKey, object] = {}

    def _labels_of(self, key: LabelKey) -> str:
        return ",".join("%s=%s" % kv for kv in key)

    def series(self) -> Dict[str, object]:
        """label-string -> value snapshot (plain data)."""
        with self._registry._lock:
            return {self._labels_of(key): self._value_of(raw)
                    for key, raw in sorted(self._series.items())}

    def _value_of(self, raw: Any) -> Any:
        return raw


class Counter(_Instrument):
    """A monotonically increasing sum, per label set."""

    kind = "counter"

    def inc(self, amount: float = 1, **labels: object) -> None:
        if not self._registry.enabled:
            return
        key = _label_key(labels)
        with self._registry._lock:
            self._series[key] = self._series.get(key, 0) + amount

    def value(self, **labels: object) -> float:
        with self._registry._lock:
            return cast(float, self._series.get(_label_key(labels), 0))


class Gauge(_Instrument):
    """A last-write-wins point-in-time value, per label set."""

    kind = "gauge"

    def set(self, value: float, **labels: object) -> None:
        if not self._registry.enabled:
            return
        with self._registry._lock:
            self._series[_label_key(labels)] = value

    def value(self, **labels: object) -> float:
        with self._registry._lock:
            return cast(float, self._series.get(_label_key(labels), 0))


#: default histogram buckets: byte-ish powers of four
DEFAULT_BUCKETS: Tuple[float, ...] = (
    64, 256, 1024, 4096, 16384, 65536, 262144)


@dataclass
class _HistogramSeries:
    counts: List[int]
    total: float = 0.0
    observations: int = 0


class Histogram(_Instrument):
    """A fixed-bucket histogram (cumulative on export), per label set.

    ``buckets`` are the inclusive upper bounds of the finite buckets;
    an implicit ``+Inf`` bucket catches the rest.  Bounds are fixed at
    creation -- there is no dynamic resizing, so concurrent observers
    never contend on anything but the counter increments.
    """

    kind = "histogram"

    def __init__(self, name: str, registry: "MetricsRegistry",
                 buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        super().__init__(name, registry)
        self.buckets: Tuple[float, ...] = tuple(sorted(buckets))

    def observe(self, value: float, **labels: object) -> None:
        if not self._registry.enabled:
            return
        key = _label_key(labels)
        with self._registry._lock:
            series = self._series.get(key)
            if series is None:
                series = _HistogramSeries([0] * (len(self.buckets) + 1))
                self._series[key] = series
            index = len(self.buckets)
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    index = i
                    break
            series.counts[index] += 1
            series.total += value
            series.observations += 1

    def _value_of(self, raw: _HistogramSeries) -> dict:
        return {"buckets": dict(zip([str(b) for b in self.buckets]
                                    + ["+Inf"], raw.counts)),
                "sum": raw.total, "count": raw.observations}


class MetricsRegistry:
    """Named instruments under one lock, with an enable switch.

    A *disabled* registry is the default on every
    :class:`~repro.runtime.context.ExecutionContext`: instruments can
    still be fetched and called, but every mutation short-circuits on
    the ``enabled`` check, so instrumented hot paths cost one
    attribute read when observability is off.  Enable it through
    ``EngineConfig(metrics_enabled=True)`` (or flip
    :attr:`enabled` directly on a context's registry).
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._lock = make_rlock("metrics.registry")
        self._instruments: Dict[str, _Instrument] = {}

    def _get(self, name: str, factory: Callable,
             help_text: Optional[str] = None) -> _Instrument:
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                # the factory is one of the registry's own
                # constructors (_Counter/_Gauge/_Histogram), never
                # user code; it touches no locks
                # lint: allow=L012
                instrument = factory()
                self._instruments[name] = instrument
            if help_text and not instrument.help:
                instrument.help = help_text
            return instrument

    def counter(self, name: str,
                help_text: Optional[str] = None) -> Counter:
        """Get-or-create the counter called ``name``.

        ``help_text``, when given on any call, becomes the metric's
        ``# HELP`` line in the Prometheus exposition (first writer
        wins; instruments without help render no HELP line, as
        before).
        """
        instrument = self._get(name, lambda: Counter(name, self),
                               help_text)
        if not isinstance(instrument, Counter):
            raise TypeError("%r is a %s, not a counter"
                            % (name, instrument.kind))
        return instrument

    def gauge(self, name: str,
              help_text: Optional[str] = None) -> Gauge:
        """Get-or-create the gauge called ``name``."""
        instrument = self._get(name, lambda: Gauge(name, self),
                               help_text)
        if not isinstance(instrument, Gauge):
            raise TypeError("%r is a %s, not a gauge"
                            % (name, instrument.kind))
        return instrument

    def histogram(self, name: str,
                  buckets: Sequence[float] = DEFAULT_BUCKETS,
                  help_text: Optional[str] = None,
                  ) -> Histogram:
        """Get-or-create the histogram called ``name``."""
        instrument = self._get(
            name, lambda: Histogram(name, self, buckets), help_text)
        if not isinstance(instrument, Histogram):
            raise TypeError("%r is a %s, not a histogram"
                            % (name, instrument.kind))
        return instrument

    # -- snapshots ---------------------------------------------------------
    def snapshot(self) -> dict:
        """Every instrument's series as plain data, sorted by name."""
        with self._lock:
            instruments = sorted(self._instruments.items())
        return {name: {"type": instrument.kind,
                       "series": instrument.series()}
                for name, instrument in instruments}

    def to_prometheus(self) -> str:
        """A Prometheus text-exposition snapshot of the registry."""
        lines: List[str] = []
        with self._lock:
            instruments = sorted(self._instruments.items())
        for name, instrument in instruments:
            metric = _prometheus_name(name)
            if instrument.help:
                lines.append("# HELP %s %s"
                             % (metric, _escape_help(instrument.help)))
            lines.append("# TYPE %s %s" % (metric, instrument.kind))
            with self._lock:
                series = sorted(instrument._series.items())
            for key, raw in series:
                if isinstance(instrument, Histogram):
                    lines.extend(_prometheus_histogram(
                        metric, instrument.buckets, key, raw))
                else:
                    lines.append("%s%s %s"
                                 % (metric, _prometheus_labels(key),
                                    _format_number(raw)))
        return "\n".join(lines) + ("\n" if lines else "")


def _prometheus_name(name: str) -> str:
    cleaned = "".join(c if (c.isalnum() or c == "_") else "_"
                      for c in name)
    return "repro_" + cleaned


def _format_number(value: object) -> str:
    if isinstance(value, float) and value == int(value):
        return str(int(value))
    return str(value)


def _escape_help(text: str) -> str:
    """HELP-line escaping per the text exposition format: backslash
    and line feed only."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(value: str) -> str:
    """Label-value escaping per the text exposition format:
    backslash, double quote, and line feed."""
    return (value.replace("\\", "\\\\")
            .replace('"', '\\"')
            .replace("\n", "\\n"))


def _prometheus_labels(key: LabelKey, extra: Tuple[Tuple[str, str], ...] = ()
                       ) -> str:
    pairs = tuple(key) + tuple(extra)
    if not pairs:
        return ""
    return "{%s}" % ",".join(
        '%s="%s"' % (name, _escape_label_value(value))
        for name, value in pairs)


def _prometheus_histogram(metric: str, buckets: Tuple[float, ...],
                          key: LabelKey,
                          raw: _HistogramSeries) -> List[str]:
    lines = []
    cumulative = 0
    bounds = [_format_number(b) for b in buckets] + ["+Inf"]
    for bound, count in zip(bounds, raw.counts):
        cumulative += count
        lines.append("%s_bucket%s %d"
                     % (metric, _prometheus_labels(key, (("le", bound),)),
                        cumulative))
    lines.append("%s_sum%s %s" % (metric, _prometheus_labels(key),
                                  _format_number(raw.total)))
    lines.append("%s_count%s %d" % (metric, _prometheus_labels(key),
                                    raw.observations))
    return lines


# ----------------------------------------------------------------------
# Span trees
# ----------------------------------------------------------------------

@dataclass
class SpanNode:
    """One reconstructed span: a begin/end pair plus everything that
    happened causally inside it."""

    span_id: int
    parent_id: Optional[int]
    layer: str
    name: str
    data: dict = field(default_factory=dict)
    begin_ms: Optional[float] = None
    end_ms: Optional[float] = None
    thread: Optional[int] = None
    children: List["SpanNode"] = field(default_factory=list)
    #: point events (source commands, channel round trips, ...) whose
    #: causal parent is this span
    events: List[object] = field(default_factory=list)

    @property
    def duration_ms(self) -> Optional[float]:
        if self.begin_ms is None or self.end_ms is None:
            return None
        return self.end_ms - self.begin_ms

    def walk(self) -> Iterable["SpanNode"]:
        """This span and every descendant span, preorder."""
        yield self
        for child in self.children:
            for node in child.walk():
                yield node

    def leaf_events(self, layer: Optional[str] = None) -> List[object]:
        """Point events in this subtree, optionally layer-filtered."""
        found = []
        for node in self.walk():
            for event in node.events:
                if layer is None or event.layer == layer:
                    found.append(event)
        return found


@dataclass
class SpanForest:
    """The reconstructed span trees of one trace.

    ``roots`` are spans with no parent (one per client navigation in a
    typical run); ``orphans`` are spans whose ``parent_id`` never
    appeared in the stream -- a propagation bug when non-empty;
    ``stray_events`` are point events emitted outside any span (the
    mediator's registration/prepare events are the legitimate case).
    """

    roots: List[SpanNode] = field(default_factory=list)
    orphans: List[SpanNode] = field(default_factory=list)
    spans: Dict[int, SpanNode] = field(default_factory=dict)
    stray_events: List[object] = field(default_factory=list)

    def events(self, layer: Optional[str] = None) -> List[object]:
        """Every in-tree point event, optionally layer-filtered."""
        found = []
        for root in self.roots + self.orphans:
            found.extend(root.leaf_events(layer))
        return found


def build_span_tree(events: Iterable) -> SpanForest:
    """Reconstruct the causal span forest from a trace event stream.

    ``*.begin`` events open spans, ``*.end`` events close them, and
    every other event is attached as a point event to the span named
    by its ``parent_id``.  The input order only matters for the
    ordering of children; parentage is carried entirely by ids, so
    interleaved streams from worker threads reconstruct correctly.
    """
    forest = SpanForest()
    for event in events:
        name = span_name_of(event)
        if name is not None and event.event.endswith(".begin"):
            node = SpanNode(event.span_id, event.parent_id,
                            event.layer, name, dict(event.data),
                            begin_ms=event.ts_ms,
                            thread=event.thread)
            forest.spans[event.span_id] = node
        elif name is not None:
            node = forest.spans.get(event.span_id)
            if node is not None:
                node.end_ms = event.ts_ms
        else:
            parent = (forest.spans.get(event.parent_id)
                      if event.parent_id is not None else None)
            if parent is not None:
                parent.events.append(event)
            else:
                forest.stray_events.append(event)
    for node in forest.spans.values():
        if node.parent_id is None:
            forest.roots.append(node)
        else:
            parent = forest.spans.get(node.parent_id)
            if parent is None:
                forest.orphans.append(node)
            else:
                parent.children.append(node)
    return forest


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------

def _open_sink(sink: Any, mode: str = "w") -> Tuple[Any, bool]:
    if hasattr(sink, "write"):
        return sink, False
    return open(sink, mode), True


def export_jsonl(events: Iterable, sink: Any) -> int:
    """Dump a trace as newline-delimited JSON, one event per line.

    ``sink`` is a path or a writable file object.  Events serialize
    through their stable ``to_dict()`` shape; non-JSON-native data
    values are stringified rather than dropped.  Returns the number of
    events written.
    """
    handle, owned = _open_sink(sink)
    written = 0
    try:
        for event in events:
            handle.write(json.dumps(event.to_dict(), sort_keys=True,
                                    default=repr))
            handle.write("\n")
            written += 1
    finally:
        if owned:
            handle.close()
    return written


def export_chrome_trace(events: Sequence, sink: Any) -> int:
    """Dump a trace in Chrome ``trace_event`` JSON (the array-of-events
    object form), loadable in ``chrome://tracing`` and Perfetto.

    Span begin/end events become ``B``/``E`` duration events; point
    events become ``i`` instants.  Thread identities are remapped to
    small integers in first-seen order, so exports are deterministic
    for deterministic runs.  Timestamps are microseconds as the format
    requires (the tracer records milliseconds).  Returns the number of
    trace records written.
    """
    tids: Dict[object, int] = {}

    def tid_of(event: Any) -> int:
        return tids.setdefault(event.thread, len(tids) + 1)

    records = []
    for event in events:
        ts_us = round((event.ts_ms or 0.0) * 1000.0, 3)
        args = {str(k): (v if isinstance(v, (str, int, float, bool,
                                             type(None))) else repr(v))
                for k, v in sorted(event.data.items(),
                                   key=lambda kv: str(kv[0]))}
        name = span_name_of(event)
        base = {"cat": event.layer, "pid": 1, "tid": tid_of(event),
                "ts": ts_us, "args": args}
        if name is not None:
            base["name"] = "%s.%s" % (event.layer, name)
            base["ph"] = "B" if event.event.endswith(".begin") else "E"
            base["args"]["span_id"] = event.span_id
            if event.parent_id is not None:
                base["args"]["parent_id"] = event.parent_id
        else:
            base["name"] = "%s.%s" % (event.layer, event.event)
            base["ph"] = "i"
            base["s"] = "t"
            if event.parent_id is not None:
                base["args"]["parent_id"] = event.parent_id
        records.append(base)
    payload = {"traceEvents": records, "displayTimeUnit": "ms"}
    handle, owned = _open_sink(sink)
    try:
        json.dump(payload, handle, indent=1, sort_keys=True)
        handle.write("\n")
    finally:
        if owned:
            handle.close()
    return len(records)


def export_prometheus(registry: MetricsRegistry, sink: Any) -> str:
    """Write the registry's Prometheus text exposition to ``sink``
    (path or file object) and return it."""
    text = registry.to_prometheus()
    handle, owned = _open_sink(sink)
    try:
        handle.write(text)
    finally:
        if owned:
            handle.close()
    return text


# ----------------------------------------------------------------------
# The flight recorder
# ----------------------------------------------------------------------

class FlightRecorder:
    """A bounded ring of the last N operational entries, always on.

    The daemon's black box: unlike the tracer (armed only when
    someone asks for a trace) the flight recorder runs
    unconditionally, so when a session dies there is *always* a
    recent history to dump.  Recording is one lock acquire plus a
    ``deque`` append onto a ``maxlen`` ring -- cheap enough to sit on
    the request path of every dispatch.

    :meth:`incident` freezes the ring into an incident record: kept
    in the bounded :attr:`incidents` history, and -- when
    ``incident_dir`` is configured -- dumped as a JSONL file (one
    header object naming the reason/session, then one entry per
    line, newest last).  The daemon calls it on every session kill,
    on unhandled handler errors, and once on drain.

    ``clock`` is any object with ``now_ms()`` (tests inject a
    :class:`~repro.testing.faults.FakeClock`); the default reads the
    system monotonic clock.
    """

    def __init__(self, capacity: int = 256,
                 incident_dir: Optional[str] = None,
                 max_incidents: int = 32,
                 clock: Optional[Any] = None) -> None:
        self.capacity = max(1, int(capacity))
        self.incident_dir = incident_dir
        self._clock = clock
        self._lock = make_lock("observability.recorder")
        self._ring: Deque[Dict[str, Any]] = collections.deque(
            maxlen=self.capacity)
        self._recorded = 0
        self._serials = itertools.count(1)
        #: bounded history of incident summaries (no event payloads)
        self.incidents: Deque[Dict[str, Any]] = collections.deque(
            maxlen=max(1, int(max_incidents)))

    def _now_ms(self) -> float:
        clock = self._clock
        if clock is not None:
            return float(clock.now_ms())
        return time.monotonic() * 1000.0

    def record(self, layer: str, event: str, **data: object) -> None:
        """Append one entry to the ring (evicting the oldest)."""
        entry: Dict[str, Any] = {"layer": layer, "event": event,
                                 "data": data,
                                 "ts_ms": self._now_ms()}
        with self._lock:
            self._ring.append(entry)
            self._recorded += 1

    def record_trace_event(self, event: Any) -> None:
        """Mirror a :class:`TraceEvent`-shaped record into the ring
        (the subscriber form, for daemons that also trace)."""
        with self._lock:
            self._ring.append(event.to_dict())
            self._recorded += 1

    def snapshot(self) -> List[Dict[str, Any]]:
        """The ring's entries, oldest first (shallow copies)."""
        with self._lock:
            return [dict(entry) for entry in self._ring]

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {"capacity": self.capacity,
                    "size": len(self._ring),
                    "recorded": self._recorded,
                    "incidents": len(self.incidents)}

    def incident(self, reason: str, session: Optional[str] = None,
                 detail: str = "") -> Dict[str, Any]:
        """Freeze the ring into an incident record (and maybe a file).

        Returns the full record including the frozen ``events``; the
        bounded :attr:`incidents` history keeps only the summary.
        ``path`` is the JSONL dump's location, or None when no
        ``incident_dir`` is configured (or the write failed -- an
        incident dump must never take the daemon down with it).
        """
        with self._lock:
            serial = next(self._serials)
            events = [dict(entry) for entry in self._ring]
        record: Dict[str, Any] = {
            "incident": serial,
            "reason": str(reason),
            "session": session,
            "detail": str(detail),
            "ts_ms": self._now_ms(),
            "path": None,
            "events": events,
        }
        if self.incident_dir is not None:
            slug = "".join(c if c.isalnum() else "-"
                           for c in str(reason)) or "unknown"
            path = os.path.join(
                self.incident_dir,
                "incident-%03d-%s.jsonl" % (serial, slug))
            try:
                os.makedirs(self.incident_dir, exist_ok=True)
                with open(path, "w") as handle:
                    header = {key: value
                              for key, value in record.items()
                              if key not in ("events", "path")}
                    header["events"] = len(events)
                    handle.write(json.dumps(header, sort_keys=True,
                                            default=repr) + "\n")
                    for entry in events:
                        handle.write(json.dumps(entry, sort_keys=True,
                                                default=repr) + "\n")
                record["path"] = path
            except OSError:
                record["path"] = None
        summary = {key: record[key]
                   for key in ("incident", "reason", "session",
                               "detail", "ts_ms", "path")}
        with self._lock:
            self.incidents.append(summary)
        return record


# ----------------------------------------------------------------------
# Cross-process trace merging
# ----------------------------------------------------------------------

@dataclass
class TraceRecord:
    """A concrete event record with the duck-typed trace shape.

    What :func:`load_jsonl` yields and :func:`merge_traces` returns:
    structurally identical to
    :class:`~repro.runtime.context.TraceEvent` (every exporter and
    :func:`build_span_tree` accept either), but plain data -- no
    tracer attached, ``thread`` may be a normalized token rather
    than a live thread id.
    """

    layer: str
    event: str
    data: Dict[str, Any] = field(default_factory=dict)
    span_id: Optional[int] = None
    parent_id: Optional[int] = None
    ts_ms: Optional[float] = None
    thread: Optional[object] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "layer": self.layer,
            "event": self.event,
            "data": {str(k): v for k, v in self.data.items()},
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "ts_ms": self.ts_ms,
            "thread": self.thread,
        }


def _as_record(event: Any) -> TraceRecord:
    return TraceRecord(
        layer=event.layer, event=event.event, data=dict(event.data),
        span_id=event.span_id, parent_id=event.parent_id,
        ts_ms=event.ts_ms, thread=event.thread)


def load_jsonl(source: Any) -> List[TraceRecord]:
    """Load a JSONL trace export (the :func:`export_jsonl` format)
    back into :class:`TraceRecord` objects.

    ``source`` is a path or a readable file object.  Blank lines are
    skipped; missing fields default (old or hand-built exports stay
    loadable).
    """
    handle, owned = _open_sink(source, mode="r")
    records: List[TraceRecord] = []
    try:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            payload = json.loads(line)
            records.append(TraceRecord(
                layer=str(payload.get("layer", "")),
                event=str(payload.get("event", "")),
                data=dict(payload.get("data") or {}),
                span_id=payload.get("span_id"),
                parent_id=payload.get("parent_id"),
                ts_ms=payload.get("ts_ms"),
                thread=payload.get("thread")))
    finally:
        if owned:
            handle.close()
    return records


def merge_traces(client_events: Iterable[Any],
                 server_events: Iterable[Any]) -> List[TraceRecord]:
    """Join a client and a server trace into one causal stream.

    Each process mints span ids from its own counter, so the two id
    spaces collide; the server's ids are remapped above the client's
    maximum.  The stitch is the wire trace context: a
    ``server.request`` span that adopted one carries the client's
    issuing span id as ``client_parent`` in its span data, and every
    such span is re-parented under that client span -- after which
    :func:`build_span_tree` over the merged stream reconstructs one
    forest whose client navigations *contain* the server work they
    caused.  Thread identities are normalized to ``c<n>``/``s<n>``
    tokens in first-seen order, so merged exports of deterministic
    runs are byte-stable.
    """
    client = [_as_record(event) for event in client_events]
    server = [_as_record(event) for event in server_events]
    client_ids = {record.span_id for record in client
                  if isinstance(record.span_id, int)}
    used = [record.span_id for record in client
            if isinstance(record.span_id, int)]
    used += [record.parent_id for record in client
             if isinstance(record.parent_id, int)]
    offset = max(used, default=0)

    mapping: Dict[int, int] = {}

    def remap(old: Optional[int]) -> Optional[int]:
        if not isinstance(old, int):
            return old
        if old not in mapping:
            mapping[old] = offset + len(mapping) + 1
        return mapping[old]

    threads: Dict[Tuple[str, object], str] = {}

    def thread_token(prefix: str, raw: object) -> str:
        key = (prefix, raw)
        token = threads.get(key)
        if token is None:
            ordinal = sum(1 for existing in threads
                          if existing[0] == prefix) + 1
            token = threads[key] = "%s%d" % (prefix, ordinal)
        return token

    merged: List[TraceRecord] = []
    for record in client:
        record.thread = thread_token("c", record.thread)
        merged.append(record)
    for record in server:
        record.span_id = remap(record.span_id)
        client_parent = record.data.get("client_parent")
        if isinstance(client_parent, int) \
                and client_parent in client_ids:
            record.parent_id = client_parent
        else:
            record.parent_id = remap(record.parent_id)
        record.thread = thread_token("s", record.thread)
        merged.append(record)
    return merged
