"""The observability layer: metrics, span trees, and exporters.

The paper's central claims are quantitative -- a lazy mediator
translates each client navigation into a bounded (or unbounded) number
of source navigations (Definition 2), and the buffer/LXP layer trades
round trips for fragment granularity.  This module turns every run
into evidence for (or against) those claims:

* :class:`MetricsRegistry` -- counters, gauges, and fixed-bucket
  histograms with Prometheus-style labels, registered on the
  :class:`~repro.runtime.context.ExecutionContext` next to the cache
  and resilience registries and folded into ``QueryResult.stats()``.
  A disabled registry (the default) short-circuits every instrument
  call on one attribute check, keeping the idle path within noise.
* :class:`SpanNode` / :func:`build_span_tree` -- reconstruct the
  causal tree of one (or many) client navigations from a
  :class:`~repro.runtime.context.Tracer` event stream: client span ->
  operator spans -> buffer fills -> channel round trips -> source
  commands.  The tree is what the browsability profiler
  (:mod:`repro.navigation.profiler`) consumes.
* Exporters -- newline-delimited JSON (:func:`export_jsonl`), the
  Chrome ``trace_event`` format loadable in ``chrome://tracing`` and
  Perfetto (:func:`export_chrome_trace`), and a Prometheus text
  exposition snapshot (:func:`export_prometheus`).
* :data:`EVENT_NAMES` -- the stable event-name contract.  The golden
  navigation traces and the documented span taxonomy in
  ``docs/PROTOCOLS.md`` both key off these names; a tier-1 test
  asserts code, docs, and goldens agree, so a rename cannot land
  silently.

Nothing here imports the tracer: exporters and the tree builder are
duck-typed over :class:`~repro.runtime.context.TraceEvent`'s public
fields (``layer``, ``event``, ``data``, ``span_id``, ``parent_id``,
``ts_ms``, ``thread``), which keeps the module free of import cycles
with :mod:`repro.runtime.context`.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field
from typing import (Any, Callable, Dict, Iterable, List, Optional,
                    Sequence, Tuple, cast)

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "SpanNode", "SpanForest", "build_span_tree",
    "export_jsonl", "export_chrome_trace", "export_prometheus",
    "EVENT_NAMES", "contract_violations", "span_name_of",
]


# ----------------------------------------------------------------------
# The event-name contract
# ----------------------------------------------------------------------

#: Every event name each layer may emit, as a stable contract.  Span
#: layers list the *span* names (the wire events are ``<name>.begin``
#: and ``<name>.end``); point layers list the event names verbatim.
#: ``docs/PROTOCOLS.md`` documents this same table and
#: ``tests/test_event_contract.py`` asserts the two never diverge --
#: the golden traces under ``tests/golden/`` depend on these names.
EVENT_NAMES: Dict[str, Dict[str, Tuple[str, ...]]] = {
    "spans": {
        "client": ("down", "right", "fetch", "select"),
        "operator": ("first_binding", "next_binding", "attribute",
                     "v_down", "v_right", "v_fetch", "v_select"),
        "buffer": ("fill", "prefetch_fill"),
        "mediator": ("prepare",),
        "pushdown": ("compile", "execute"),
        "fragcache": ("fill",),
        "server": ("session", "request"),
    },
    "events": {
        "mediator": ("register_source", "prepare.begin", "prepare.end",
                     "optimize", "optimizer.discarded_result",
                     "static_analysis"),
        "source": ("d", "r", "f", "select"),
        "channel": ("round_trip",),
        "resilience": ("failure", "retry", "short_circuit",
                       "breaker_open", "deadline_exceeded",
                       "degraded"),
        "pushdown": ("decision",),
        "fragcache": ("decision", "hit", "miss", "store",
                      "invalidate", "wait", "complete", "adopt"),
        "server": ("listen", "accept", "reject", "open", "close",
                   "kill", "drain"),
    },
}


def _contracted_names() -> Dict[str, set]:
    """layer -> full set of legal wire event names."""
    names: Dict[str, set] = {}
    for layer, spans in EVENT_NAMES["spans"].items():
        bucket = names.setdefault(layer, set())
        for span in spans:
            bucket.add(span + ".begin")
            bucket.add(span + ".end")
    for layer, events in EVENT_NAMES["events"].items():
        names.setdefault(layer, set()).update(events)
    return names


def contract_violations(events: Iterable) -> List[str]:
    """Event names outside :data:`EVENT_NAMES`, as ``layer.event``
    strings (empty when the stream conforms)."""
    contract = _contracted_names()
    violations = []
    for event in events:
        legal = contract.get(event.layer)
        if legal is None or event.event not in legal:
            name = "%s.%s" % (event.layer, event.event)
            if name not in violations:
                violations.append(name)
    return violations


def span_name_of(event: Any) -> Optional[str]:
    """The span name of a ``*.begin``/``*.end`` event, else None."""
    if event.span_id is None:
        return None
    base, _, suffix = event.event.rpartition(".")
    if suffix in ("begin", "end") and base:
        return base
    return None


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: dict) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class _Instrument:
    """Shared series storage of the three instrument kinds."""

    kind = "untyped"

    def __init__(self, name: str,
                 registry: "MetricsRegistry") -> None:
        self.name = name
        self._registry = registry
        self._series: Dict[LabelKey, object] = {}

    def _labels_of(self, key: LabelKey) -> str:
        return ",".join("%s=%s" % kv for kv in key)

    def series(self) -> Dict[str, object]:
        """label-string -> value snapshot (plain data)."""
        with self._registry._lock:
            return {self._labels_of(key): self._value_of(raw)
                    for key, raw in sorted(self._series.items())}

    def _value_of(self, raw: Any) -> Any:
        return raw


class Counter(_Instrument):
    """A monotonically increasing sum, per label set."""

    kind = "counter"

    def inc(self, amount: float = 1, **labels: object) -> None:
        if not self._registry.enabled:
            return
        key = _label_key(labels)
        with self._registry._lock:
            self._series[key] = self._series.get(key, 0) + amount

    def value(self, **labels: object) -> float:
        with self._registry._lock:
            return cast(float, self._series.get(_label_key(labels), 0))


class Gauge(_Instrument):
    """A last-write-wins point-in-time value, per label set."""

    kind = "gauge"

    def set(self, value: float, **labels: object) -> None:
        if not self._registry.enabled:
            return
        with self._registry._lock:
            self._series[_label_key(labels)] = value

    def value(self, **labels: object) -> float:
        with self._registry._lock:
            return cast(float, self._series.get(_label_key(labels), 0))


#: default histogram buckets: byte-ish powers of four
DEFAULT_BUCKETS: Tuple[float, ...] = (
    64, 256, 1024, 4096, 16384, 65536, 262144)


@dataclass
class _HistogramSeries:
    counts: List[int]
    total: float = 0.0
    observations: int = 0


class Histogram(_Instrument):
    """A fixed-bucket histogram (cumulative on export), per label set.

    ``buckets`` are the inclusive upper bounds of the finite buckets;
    an implicit ``+Inf`` bucket catches the rest.  Bounds are fixed at
    creation -- there is no dynamic resizing, so concurrent observers
    never contend on anything but the counter increments.
    """

    kind = "histogram"

    def __init__(self, name: str, registry: "MetricsRegistry",
                 buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        super().__init__(name, registry)
        self.buckets: Tuple[float, ...] = tuple(sorted(buckets))

    def observe(self, value: float, **labels: object) -> None:
        if not self._registry.enabled:
            return
        key = _label_key(labels)
        with self._registry._lock:
            series = self._series.get(key)
            if series is None:
                series = _HistogramSeries([0] * (len(self.buckets) + 1))
                self._series[key] = series
            index = len(self.buckets)
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    index = i
                    break
            series.counts[index] += 1
            series.total += value
            series.observations += 1

    def _value_of(self, raw: _HistogramSeries) -> dict:
        return {"buckets": dict(zip([str(b) for b in self.buckets]
                                    + ["+Inf"], raw.counts)),
                "sum": raw.total, "count": raw.observations}


class MetricsRegistry:
    """Named instruments under one lock, with an enable switch.

    A *disabled* registry is the default on every
    :class:`~repro.runtime.context.ExecutionContext`: instruments can
    still be fetched and called, but every mutation short-circuits on
    the ``enabled`` check, so instrumented hot paths cost one
    attribute read when observability is off.  Enable it through
    ``EngineConfig(metrics_enabled=True)`` (or flip
    :attr:`enabled` directly on a context's registry).
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._lock = threading.RLock()
        self._instruments: Dict[str, _Instrument] = {}

    def _get(self, name: str, factory: Callable) -> _Instrument:
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = factory()
                self._instruments[name] = instrument
            return instrument

    def counter(self, name: str) -> Counter:
        """Get-or-create the counter called ``name``."""
        instrument = self._get(name, lambda: Counter(name, self))
        if not isinstance(instrument, Counter):
            raise TypeError("%r is a %s, not a counter"
                            % (name, instrument.kind))
        return instrument

    def gauge(self, name: str) -> Gauge:
        """Get-or-create the gauge called ``name``."""
        instrument = self._get(name, lambda: Gauge(name, self))
        if not isinstance(instrument, Gauge):
            raise TypeError("%r is a %s, not a gauge"
                            % (name, instrument.kind))
        return instrument

    def histogram(self, name: str,
                  buckets: Sequence[float] = DEFAULT_BUCKETS
                  ) -> Histogram:
        """Get-or-create the histogram called ``name``."""
        instrument = self._get(
            name, lambda: Histogram(name, self, buckets))
        if not isinstance(instrument, Histogram):
            raise TypeError("%r is a %s, not a histogram"
                            % (name, instrument.kind))
        return instrument

    # -- snapshots ---------------------------------------------------------
    def snapshot(self) -> dict:
        """Every instrument's series as plain data, sorted by name."""
        with self._lock:
            instruments = sorted(self._instruments.items())
        return {name: {"type": instrument.kind,
                       "series": instrument.series()}
                for name, instrument in instruments}

    def to_prometheus(self) -> str:
        """A Prometheus text-exposition snapshot of the registry."""
        lines: List[str] = []
        with self._lock:
            instruments = sorted(self._instruments.items())
        for name, instrument in instruments:
            metric = _prometheus_name(name)
            lines.append("# TYPE %s %s" % (metric, instrument.kind))
            with self._lock:
                series = sorted(instrument._series.items())
            for key, raw in series:
                if isinstance(instrument, Histogram):
                    lines.extend(_prometheus_histogram(
                        metric, instrument.buckets, key, raw))
                else:
                    lines.append("%s%s %s"
                                 % (metric, _prometheus_labels(key),
                                    _format_number(raw)))
        return "\n".join(lines) + ("\n" if lines else "")


def _prometheus_name(name: str) -> str:
    cleaned = "".join(c if (c.isalnum() or c == "_") else "_"
                      for c in name)
    return "repro_" + cleaned


def _format_number(value: object) -> str:
    if isinstance(value, float) and value == int(value):
        return str(int(value))
    return str(value)


def _prometheus_labels(key: LabelKey, extra: Tuple[Tuple[str, str], ...] = ()
                       ) -> str:
    pairs = tuple(key) + tuple(extra)
    if not pairs:
        return ""
    return "{%s}" % ",".join('%s="%s"' % kv for kv in pairs)


def _prometheus_histogram(metric: str, buckets: Tuple[float, ...],
                          key: LabelKey,
                          raw: _HistogramSeries) -> List[str]:
    lines = []
    cumulative = 0
    bounds = [_format_number(b) for b in buckets] + ["+Inf"]
    for bound, count in zip(bounds, raw.counts):
        cumulative += count
        lines.append("%s_bucket%s %d"
                     % (metric, _prometheus_labels(key, (("le", bound),)),
                        cumulative))
    lines.append("%s_sum%s %s" % (metric, _prometheus_labels(key),
                                  _format_number(raw.total)))
    lines.append("%s_count%s %d" % (metric, _prometheus_labels(key),
                                    raw.observations))
    return lines


# ----------------------------------------------------------------------
# Span trees
# ----------------------------------------------------------------------

@dataclass
class SpanNode:
    """One reconstructed span: a begin/end pair plus everything that
    happened causally inside it."""

    span_id: int
    parent_id: Optional[int]
    layer: str
    name: str
    data: dict = field(default_factory=dict)
    begin_ms: Optional[float] = None
    end_ms: Optional[float] = None
    thread: Optional[int] = None
    children: List["SpanNode"] = field(default_factory=list)
    #: point events (source commands, channel round trips, ...) whose
    #: causal parent is this span
    events: List[object] = field(default_factory=list)

    @property
    def duration_ms(self) -> Optional[float]:
        if self.begin_ms is None or self.end_ms is None:
            return None
        return self.end_ms - self.begin_ms

    def walk(self) -> Iterable["SpanNode"]:
        """This span and every descendant span, preorder."""
        yield self
        for child in self.children:
            for node in child.walk():
                yield node

    def leaf_events(self, layer: Optional[str] = None) -> List[object]:
        """Point events in this subtree, optionally layer-filtered."""
        found = []
        for node in self.walk():
            for event in node.events:
                if layer is None or event.layer == layer:
                    found.append(event)
        return found


@dataclass
class SpanForest:
    """The reconstructed span trees of one trace.

    ``roots`` are spans with no parent (one per client navigation in a
    typical run); ``orphans`` are spans whose ``parent_id`` never
    appeared in the stream -- a propagation bug when non-empty;
    ``stray_events`` are point events emitted outside any span (the
    mediator's registration/prepare events are the legitimate case).
    """

    roots: List[SpanNode] = field(default_factory=list)
    orphans: List[SpanNode] = field(default_factory=list)
    spans: Dict[int, SpanNode] = field(default_factory=dict)
    stray_events: List[object] = field(default_factory=list)

    def events(self, layer: Optional[str] = None) -> List[object]:
        """Every in-tree point event, optionally layer-filtered."""
        found = []
        for root in self.roots + self.orphans:
            found.extend(root.leaf_events(layer))
        return found


def build_span_tree(events: Iterable) -> SpanForest:
    """Reconstruct the causal span forest from a trace event stream.

    ``*.begin`` events open spans, ``*.end`` events close them, and
    every other event is attached as a point event to the span named
    by its ``parent_id``.  The input order only matters for the
    ordering of children; parentage is carried entirely by ids, so
    interleaved streams from worker threads reconstruct correctly.
    """
    forest = SpanForest()
    for event in events:
        name = span_name_of(event)
        if name is not None and event.event.endswith(".begin"):
            node = SpanNode(event.span_id, event.parent_id,
                            event.layer, name, dict(event.data),
                            begin_ms=event.ts_ms,
                            thread=event.thread)
            forest.spans[event.span_id] = node
        elif name is not None:
            node = forest.spans.get(event.span_id)
            if node is not None:
                node.end_ms = event.ts_ms
        else:
            parent = (forest.spans.get(event.parent_id)
                      if event.parent_id is not None else None)
            if parent is not None:
                parent.events.append(event)
            else:
                forest.stray_events.append(event)
    for node in forest.spans.values():
        if node.parent_id is None:
            forest.roots.append(node)
        else:
            parent = forest.spans.get(node.parent_id)
            if parent is None:
                forest.orphans.append(node)
            else:
                parent.children.append(node)
    return forest


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------

def _open_sink(sink: Any, mode: str = "w") -> Tuple[Any, bool]:
    if hasattr(sink, "write"):
        return sink, False
    return open(sink, mode), True


def export_jsonl(events: Iterable, sink: Any) -> int:
    """Dump a trace as newline-delimited JSON, one event per line.

    ``sink`` is a path or a writable file object.  Events serialize
    through their stable ``to_dict()`` shape; non-JSON-native data
    values are stringified rather than dropped.  Returns the number of
    events written.
    """
    handle, owned = _open_sink(sink)
    written = 0
    try:
        for event in events:
            handle.write(json.dumps(event.to_dict(), sort_keys=True,
                                    default=repr))
            handle.write("\n")
            written += 1
    finally:
        if owned:
            handle.close()
    return written


def export_chrome_trace(events: Sequence, sink: Any) -> int:
    """Dump a trace in Chrome ``trace_event`` JSON (the array-of-events
    object form), loadable in ``chrome://tracing`` and Perfetto.

    Span begin/end events become ``B``/``E`` duration events; point
    events become ``i`` instants.  Thread identities are remapped to
    small integers in first-seen order, so exports are deterministic
    for deterministic runs.  Timestamps are microseconds as the format
    requires (the tracer records milliseconds).  Returns the number of
    trace records written.
    """
    tids: Dict[object, int] = {}

    def tid_of(event: Any) -> int:
        return tids.setdefault(event.thread, len(tids) + 1)

    records = []
    for event in events:
        ts_us = round((event.ts_ms or 0.0) * 1000.0, 3)
        args = {str(k): (v if isinstance(v, (str, int, float, bool,
                                             type(None))) else repr(v))
                for k, v in sorted(event.data.items(),
                                   key=lambda kv: str(kv[0]))}
        name = span_name_of(event)
        base = {"cat": event.layer, "pid": 1, "tid": tid_of(event),
                "ts": ts_us, "args": args}
        if name is not None:
            base["name"] = "%s.%s" % (event.layer, name)
            base["ph"] = "B" if event.event.endswith(".begin") else "E"
            base["args"]["span_id"] = event.span_id
            if event.parent_id is not None:
                base["args"]["parent_id"] = event.parent_id
        else:
            base["name"] = "%s.%s" % (event.layer, event.event)
            base["ph"] = "i"
            base["s"] = "t"
            if event.parent_id is not None:
                base["args"]["parent_id"] = event.parent_id
        records.append(base)
    payload = {"traceEvents": records, "displayTimeUnit": "ms"}
    handle, owned = _open_sink(sink)
    try:
        json.dump(payload, handle, indent=1, sort_keys=True)
        handle.write("\n")
    finally:
        if owned:
            handle.close()
    return len(records)


def export_prometheus(registry: MetricsRegistry, sink: Any) -> str:
    """Write the registry's Prometheus text exposition to ``sink``
    (path or file object) and return it."""
    text = registry.to_prometheus()
    handle, owned = _open_sink(sink)
    try:
        handle.write(text)
    finally:
        if owned:
            handle.close()
    return text
