"""The cache registry: every operator cache under one budgeted roof.

The paper notes "the mediator is not completely stateless; some
operators perform much more efficiently by caching parts of their
input" (Section 3).  Those caches -- getDescendants' frontier memos,
the nested-loop join's inner cache (footnote 9), groupBy's ``G_prev``,
the selection verdict memo -- used to be anonymous dicts scattered
through the operators.  :class:`CacheManager` registers them all in
one place, with

* per-cache hit/miss/eviction counters (one aggregated report),
* a global entry budget with LRU eviction across all *memo* caches,
* a single enable/disable switch (the E7 ablation toggle).

Two cache kinds exist:

``memo`` (the default)
    Pure memoization, re-derivable from structured node-ids (paper
    Fig. 5): safe to evict at any time and bypassed entirely when
    caching is disabled.  Only memo entries count against the budget.

``state``
    Evaluation state the operator semantics rely on (groupBy's
    ``G_prev`` group registry, an explicit Materialize buffer): always
    on, never evicted, reported but exempt from the budget.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional
from .locks import make_rlock

__all__ = ["MISS", "CacheStats", "ManagedCache", "CacheManager"]


class _Miss:
    """Sentinel distinguishing 'not cached' from a cached ``None``."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "MISS"


#: Returned by :meth:`ManagedCache.get` when the key is absent (a
#: cached value may legitimately be ``None``).
MISS = _Miss()


@dataclass
class CacheStats:
    """Counters for one registered cache (or one aggregated label)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    entries: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups

    def merge(self, other: "CacheStats") -> "CacheStats":
        """Sum two counter sets (aggregation by label)."""
        return CacheStats(self.hits + other.hits,
                          self.misses + other.misses,
                          self.evictions + other.evictions,
                          self.entries + other.entries)

    def as_dict(self) -> dict:
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions, "entries": self.entries}


class ManagedCache:
    """One registered cache: a dict-like memo owned by a manager.

    ``get``/``put`` count hits and misses; ``peek`` is a stats-silent
    probe for internal bookkeeping (it still refreshes recency).  When
    the manager is disabled, a *memo* cache is a full bypass: ``get``
    always returns the default (uncounted) and ``put`` is a no-op --
    exactly the old ``cache_enabled=False`` behaviour.  *State* caches
    ignore the switch.
    """

    __slots__ = ("manager", "name", "kind", "stats", "_data", "_id")

    def __init__(self, manager: "CacheManager", name: str, kind: str,
                 cache_id: int) -> None:
        if kind not in ("memo", "state"):
            raise ValueError("unknown cache kind %r" % kind)
        self.manager = manager
        self.name = name
        self.kind = kind
        self.stats = CacheStats()
        self._data: Dict[Hashable, object] = {}
        self._id = cache_id

    @property
    def active(self) -> bool:
        return self.kind == "state" or self.manager.enabled

    def __len__(self) -> int:
        return len(self._data)

    def get(self, key: Hashable, default: object = MISS) -> object:
        """The cached value for ``key``, else ``default`` (counted)."""
        if not self.active:
            return default
        with self.manager._lock:
            if key in self._data:
                self.stats.hits += 1
                self.manager._touch(self, key)
                return self._data[key]
            self.stats.misses += 1
            return default

    def peek(self, key: Hashable, default: object = MISS) -> object:
        """Like :meth:`get` but without touching the counters."""
        if not self.active:
            return default
        with self.manager._lock:
            if key not in self._data:
                return default
            self.manager._touch(self, key)
            return self._data[key]

    def put(self, key: Hashable, value: object) -> None:
        """Store ``key`` -> ``value`` (may trigger evictions)."""
        if not self.active:
            return
        with self.manager._lock:
            fresh = key not in self._data
            self._data[key] = value
            if fresh:
                self.stats.entries += 1
            self.manager._on_insert(self, key)

    def _evict(self, key: Hashable) -> None:
        del self._data[key]
        self.stats.entries -= 1
        self.stats.evictions += 1


class CacheManager:
    """The per-query registry of every operator cache.

    ``budget`` bounds the number of live *memo* entries across all
    registered caches; inserting past the budget evicts the globally
    least-recently-used memo entry.  ``enabled=False`` turns every
    memo cache into a bypass (state caches keep working -- they are
    semantics, not optimization).

    One re-entrant lock serializes all lookups, inserts, LRU motion
    and evictions: prefetch workers and fan-out threads hit the same
    registry as the client thread, and an eviction decision must see
    a consistent LRU.
    """

    def __init__(self, budget: Optional[int] = None,
                 enabled: bool = True) -> None:
        if budget is not None and budget < 0:
            raise ValueError("budget must be >= 0 or None")
        self.budget = budget
        self.enabled = enabled
        self._caches: List[ManagedCache] = []
        #: global LRU over memo entries: (cache id, key) -> None
        self._lru: "OrderedDict" = OrderedDict()
        self.evictions = 0
        self._lock = make_rlock("cache.manager")

    # -- registration -----------------------------------------------------
    def cache(self, name: str, kind: str = "memo") -> ManagedCache:
        """Register (and return) a new cache under ``name``.

        Multiple registrations may share a name (one per operator
        instance); :meth:`report` aggregates them by name.
        """
        with self._lock:
            managed = ManagedCache(self, name, kind, len(self._caches))
            self._caches.append(managed)
            return managed

    # -- LRU bookkeeping ---------------------------------------------------
    def _touch(self, cache: ManagedCache, key: Hashable) -> None:
        if cache.kind != "memo":
            return
        token = (cache._id, key)
        if token in self._lru:
            self._lru.move_to_end(token)

    def _on_insert(self, cache: ManagedCache, key: Hashable) -> None:
        if cache.kind != "memo":
            return
        token = (cache._id, key)
        if token in self._lru:
            self._lru.move_to_end(token)
        else:
            self._lru[token] = None
        if self.budget is None:
            return
        while len(self._lru) > self.budget:
            cache_id, victim = self._lru.popitem(last=False)[0]
            self._caches[cache_id]._evict(victim)
            self.evictions += 1

    # -- reporting ---------------------------------------------------------
    @property
    def memo_entries(self) -> int:
        """Live memo entries (the budgeted quantity)."""
        return len(self._lru)

    @property
    def state_entries(self) -> int:
        return sum(len(c) for c in self._caches if c.kind == "state")

    def report(self) -> "Dict[str, CacheStats]":
        """Counters aggregated by cache name."""
        with self._lock:
            merged: Dict[str, CacheStats] = {}
            for cache in self._caches:
                if cache.name in merged:
                    merged[cache.name] = merged[cache.name].merge(
                        cache.stats)
                else:
                    merged[cache.name] = cache.stats.merge(CacheStats())
            return merged

    def totals(self) -> CacheStats:
        """All counters summed over every registered cache."""
        with self._lock:
            total = CacheStats()
            for cache in self._caches:
                total = total.merge(cache.stats)
            return total

    def as_dict(self) -> dict:
        """The full registry report as plain dicts (for stats/JSON)."""
        return {
            "enabled": self.enabled,
            "budget": self.budget,
            "memo_entries": self.memo_entries,
            "state_entries": self.state_entries,
            "evictions": self.evictions,
            "caches": {name: stats.as_dict()
                       for name, stats in sorted(self.report().items())},
        }
