"""Cross-session fragment cache: reuse fragments other sessions paid for.

The paper's lazy mediator pays sources *per navigation*, and every
cost it pays is for an immutable fragment of some source's exported
view.  Yet each session historically rebuilt its virtual view from
scratch: the operator caches on the
:class:`~repro.runtime.context.ExecutionContext` are strictly
per-execution.  This module adds the missing tier -- a process-wide
:class:`FragmentStore`, sharded by hash of ``(view_id, region)``,
holding the immutable fill replies previous sessions already paid a
source for, tagged with the source snapshot version they were derived
from.

Three pieces:

* :class:`FragmentStore` -- the sharded store.  Each shard has its own
  lock, an entry table keyed by ``(view_id, hole_id)``, a whole-view
  table keyed by ``view_id``, and a single-flight table so concurrent
  sessions missing on the same region issue exactly one source fill.
  Entries are version-tagged; a lookup presenting a newer source
  version drops the stale entry (counted as an invalidation), and
  :meth:`FragmentStore.sweep` drops a view's whole stale epoch at
  once.
* :class:`CachingLXPServer` -- the seam proxy.  It sits between the
  generic buffer and the (possibly resilience-wrapped) wrapper:
  ``fill`` consults the store before touching the source, keyed by the
  wrapper's *stateless* hole ids and the wrapper's current
  ``snapshot_version()``.  When a session's fills resolve every hole
  the server ever introduced, the complete view is assembled and
  stored, so the next session adopts it through
  :meth:`~repro.buffer.component.BufferComponent.prefilled` -- the
  hole-free fast path -- without a single source navigation.
* :func:`admissible` / :class:`FragcacheDecision` -- the
  pushdown-style compile-time admissibility check: only *versioned*,
  *side-effect-free*, Definition-2-*browsable* exports are cacheable.
  Every registered wrapper gets a decision record, surfaced through
  ``QueryResult.stats()``/``explain()`` and a ``fragcache.decision``
  trace event.

Everything is gated behind ``EngineConfig(fragment_cache=True)`` (CLI
``--fragment-cache``); with the default off this module is never even
imported, so the reference path of the paper stays byte-identical.

Correctness posture: a cached reply is only ever served when its
recorded version equals the source's *current* snapshot version, read
fresh on every fill.  A source advancing mid-session therefore behaves
exactly like the cache-off run under the same interleaving -- fills
issued before the advance carry the old snapshot, fills after it the
new one, and no *stale* fragment (old data at a new version) is ever
grafted.
"""

from __future__ import annotations

import threading
import zlib
from dataclasses import dataclass
from typing import (Any, Callable, Dict, List, Optional, Sequence,
                    Set, Tuple)

from ..buffer.holes import FragHole, Fragment
from ..buffer.lxp import LXPServer, reply_holes
from ..xtree.tree import Tree
from .locks import make_lock

__all__ = [
    "FragmentKey", "FragcacheStats", "FragmentStore",
    "CachingLXPServer", "FragcacheDecision", "admissible",
    "fragment_cached", "shared_store", "reset_shared_store",
]

#: (view_id, region): the store key of one cached fill reply.  The
#: region is the wrapper's stateless hole id (``(path, lo, hi)`` for
#: tree wrappers), so exact-subtree reuse needs no translation layer.
FragmentKey = Tuple[str, object]


class FragcacheStats:
    """Counters for one :class:`FragmentStore` (own lock: sessions in
    many threads hit one store).

    The structural invariant tests pin down: every ``fill`` demand
    reaching the caching seam counts exactly one hit or one miss, so
    ``hits + misses == demands`` always.
    """

    def __init__(self) -> None:
        self._lock = make_lock("fragcache.stats")
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.invalidations = 0
        self.single_flight_waits = 0
        self.view_stores = 0
        self.view_adoptions = 0

    def count(self, outcome: str) -> None:
        """Bump the counter named by ``outcome`` (store-internal)."""
        with self._lock:
            if outcome == "hit":
                self.hits += 1
            elif outcome == "miss":
                self.misses += 1
            elif outcome == "store":
                self.stores += 1
            elif outcome == "invalidate":
                self.invalidations += 1
            elif outcome == "wait":
                self.single_flight_waits += 1
            elif outcome == "view_store":
                self.view_stores += 1
            elif outcome == "view_adopt":
                self.view_adoptions += 1
            else:
                raise ValueError("unknown outcome %r" % (outcome,))

    def snapshot(self) -> Dict[str, int]:
        """A consistent copy of the counters."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "stores": self.stores,
                "invalidations": self.invalidations,
                "single_flight_waits": self.single_flight_waits,
                "view_stores": self.view_stores,
                "view_adoptions": self.view_adoptions,
            }


@dataclass(frozen=True)
class _Entry:
    """One cached fill reply, tagged with its source snapshot."""

    fragments: Tuple[Fragment, ...]
    version: object


@dataclass(frozen=True)
class _ViewEntry:
    """One complete materialized view, tagged with its snapshot."""

    tree: Tree
    version: object


class _Shard:
    """One lock domain of the store.

    All three tables live under one per-shard lock; cross-shard
    operations take shard locks strictly one at a time, so there is no
    lock ordering to get wrong.
    """

    def __init__(self) -> None:
        self.lock = make_lock("fragcache.shard")
        self.entries: Dict[FragmentKey, _Entry] = {}
        self.views: Dict[str, _ViewEntry] = {}
        self.inflight: Dict[FragmentKey, threading.Event] = {}


#: observer callback: outcome name -> None (tracing seam)
_Observer = Optional[Callable[[str], None]]


def shard_index(key: FragmentKey, shards: int) -> int:
    """The shard a key lands in: crc32 of its repr, mod the shard
    count.  Deterministic across processes and runs, so tests can
    craft deliberately colliding keys."""
    return zlib.crc32(repr(key).encode("utf-8")) % shards


class FragmentStore:
    """A process-wide sharded store of immutable view fragments.

    Fragments (:class:`~repro.buffer.holes.FragElem` /
    :class:`~repro.buffer.holes.FragHole`) are frozen dataclasses, so
    entries are shared across sessions without copying; the store
    never hands out anything a caller could mutate.

    ``shards`` picks the number of independent lock domains; 1 is
    legal (every key collides -- the stress tests use it).
    """

    def __init__(self, shards: int = 16) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self.stats = FragcacheStats()
        self._shards: Tuple[_Shard, ...] = tuple(
            _Shard() for _ in range(shards))

    @property
    def shards(self) -> int:
        return len(self._shards)

    def _shard_of(self, key: FragmentKey) -> _Shard:
        return self._shards[shard_index(key, len(self._shards))]

    # -- the demand path ---------------------------------------------------
    def fill_through(self, key: FragmentKey, version: object,
                     producer: Callable[[], Sequence[Fragment]],
                     observer: _Observer = None) -> List[Fragment]:
        """Serve ``key`` at ``version`` from the store, or produce it.

        The single-flight contract: when several sessions miss on the
        same key concurrently, exactly one runs ``producer`` (one
        source fill); the rest wait on the filler's event and then
        read the stored entry.  A failing producer releases its
        waiters, and the first of them becomes the next producer.

        Every call counts exactly one hit or one miss; a stale entry
        (version mismatch) additionally counts one invalidation before
        the miss.
        """
        shard = self._shard_of(key)
        while True:
            # Observer callbacks are foreign code: collect outcomes
            # under the lock, invoke them after it is released (the
            # entry check and in-flight registration stay atomic).
            outcomes: List[str] = []
            hit: Optional[List[Fragment]] = None
            waiter = None
            with shard.lock:
                entry = shard.entries.get(key)
                if entry is not None:
                    if entry.version == version:
                        self.stats.count("hit")
                        outcomes.append("hit")
                        hit = list(entry.fragments)
                    else:
                        # The source snapshot advanced past this
                        # entry: drop it and fall through to a
                        # producing miss.
                        del shard.entries[key]
                        self.stats.count("invalidate")
                        outcomes.append("invalidate")
                if hit is None:
                    waiter = shard.inflight.get(key)
                    if waiter is None:
                        event = threading.Event()
                        shard.inflight[key] = event
            if observer is not None:
                for outcome in outcomes:
                    observer(outcome)
            if hit is not None:
                return hit
            if waiter is None:
                break
            # Another session is filling this key: wait outside the
            # lock, then re-check the entry table from the top.
            self.stats.count("wait")
            if observer is not None:
                observer("wait")
            waiter.wait()
        try:
            fragments = tuple(producer())
        except BaseException:
            with shard.lock:
                del shard.inflight[key]
            event.set()
            raise
        self.stats.count("miss")
        if observer is not None:
            observer("miss")
        with shard.lock:
            shard.entries[key] = _Entry(fragments, version)
            del shard.inflight[key]
        self.stats.count("store")
        if observer is not None:
            observer("store")
        event.set()
        return list(fragments)

    # -- whole views -------------------------------------------------------
    def store_view(self, view_id: str, version: object,
                   tree: Tree) -> None:
        """Record the complete materialized view at ``version``."""
        shard = self._shard_of((view_id, None))
        with shard.lock:
            shard.views[view_id] = _ViewEntry(tree, version)
        self.stats.count("view_store")

    def view(self, view_id: str, version: object) -> Optional[Tree]:
        """The complete view at exactly ``version``, if stored.

        A stale whole-view entry is dropped (counted as an
        invalidation), never returned: adoption through the prefilled
        buffer must be snapshot-exact.
        """
        shard = self._shard_of((view_id, None))
        stale = False
        found: Optional[Tree] = None
        with shard.lock:
            entry = shard.views.get(view_id)
            if entry is not None:
                if entry.version == version:
                    found = entry.tree
                else:
                    del shard.views[view_id]
                    stale = True
        if stale:
            self.stats.count("invalidate")
        if found is not None:
            self.stats.count("view_adopt")
        return found

    # -- epoch invalidation ------------------------------------------------
    def sweep(self, view_id: str, current_version: object) -> int:
        """Drop every entry of ``view_id`` whose version is not
        ``current_version`` (the version-epoch invalidation sweep).
        Returns how many entries were dropped."""
        dropped = 0
        for shard in self._shards:
            with shard.lock:
                stale_keys = [
                    key for key, entry in shard.entries.items()
                    if key[0] == view_id
                    and entry.version != current_version]
                for key in stale_keys:
                    del shard.entries[key]
                dropped += len(stale_keys)
                view = shard.views.get(view_id)
                if view is not None \
                        and view.version != current_version:
                    del shard.views[view_id]
                    dropped += 1
        for _ in range(dropped):
            self.stats.count("invalidate")
        return dropped

    def clear(self) -> None:
        """Drop every entry (counters keep their history)."""
        for shard in self._shards:
            with shard.lock:
                shard.entries.clear()
                shard.views.clear()

    def entry_count(self) -> int:
        """Live fragment entries across all shards (tests/diagnostics)."""
        total = 0
        for shard in self._shards:
            with shard.lock:
                total += len(shard.entries)
        return total


# ----------------------------------------------------------------------
# The process-wide shared store
# ----------------------------------------------------------------------

_shared_lock = make_lock("fragcache.store")
_shared: Optional[FragmentStore] = None


def shared_store() -> FragmentStore:
    """The process-wide store every mediator shares by default, so a
    server daemon's sessions -- and successive in-process mediators --
    reuse each other's fragments."""
    global _shared
    with _shared_lock:
        if _shared is None:
            _shared = FragmentStore()
        return _shared


def reset_shared_store() -> None:
    """Forget the shared store (test isolation)."""
    global _shared
    with _shared_lock:
        _shared = None


# ----------------------------------------------------------------------
# The caching seam
# ----------------------------------------------------------------------

class CachingLXPServer(LXPServer):
    """An LXP proxy answering fills from a :class:`FragmentStore`.

    Stacks directly on the raw wrapper (below the resilience layer, so
    degraded ``<mix:error>`` placeholders are never cached, and above
    nothing else -- the buffer's chase algorithms see byte-identical
    replies either way).

    ``version_of`` is read *fresh on every fill*: the admissibility
    gate guarantees the wrapper advertises ``snapshot_version()``, and
    comparing per fill (rather than per session) is what makes churn
    runs equal to the cache-off interleaving.
    """

    def __init__(self, inner: LXPServer, view_id: str,
                 store: FragmentStore,
                 version_of: Callable[[], object],
                 tracer: Optional[Any] = None) -> None:
        self.inner = inner
        self.view_id = view_id
        self.store = store
        self._version_of = version_of
        self._tracer = tracer
        #: guards the completion-harvest state below
        self._lock = make_lock("fragcache.harvest")
        self._root_id: Optional[object] = None
        self._last_version: Optional[object] = None
        self._replies: Dict[object, Tuple[Fragment, ...]] = {}
        self._outstanding: Optional[Set[object]] = None
        self._harvest_dead = False

    # -- LXPServer ---------------------------------------------------------
    def get_root(self) -> FragHole:
        root = self.inner.get_root()
        with self._lock:
            self._root_id = root.hole_id
        return root

    def fill(self, hole_id: object) -> List[Fragment]:
        tracer = self._tracer
        if tracer is not None and tracer.active:
            with tracer.span("fragcache", "fill", source=self.view_id):
                return self._fill(hole_id)
        return self._fill(hole_id)

    def _fill(self, hole_id: object) -> List[Fragment]:
        version = self._version_of()
        self._note_version(version)
        reply = self.store.fill_through(
            (self.view_id, hole_id), version,
            lambda: self.inner.fill(hole_id),
            observer=self._observe)
        self._harvest(hole_id, tuple(reply), version)
        return reply

    # fill_batch is inherited: the pipelined protocol decomposes into
    # per-hole fills, each of which caches through this seam.

    # -- tracing -----------------------------------------------------------
    def _observe(self, outcome: str) -> None:
        tracer = self._tracer
        if tracer is None or not tracer.active:
            return
        if outcome == "hit":
            tracer.emit("fragcache", "hit", source=self.view_id)
        elif outcome == "miss":
            tracer.emit("fragcache", "miss", source=self.view_id)
        elif outcome == "store":
            tracer.emit("fragcache", "store", source=self.view_id)
        elif outcome == "invalidate":
            tracer.emit("fragcache", "invalidate", source=self.view_id)
        elif outcome == "wait":
            tracer.emit("fragcache", "wait", source=self.view_id)

    # -- epoch tracking ----------------------------------------------------
    def _note_version(self, version: object) -> None:
        """Sweep the view's stale epoch when the snapshot advances."""
        with self._lock:
            changed = (self._last_version is not None
                       and self._last_version != version)
            self._last_version = version
            if changed:
                # New epoch: fills recorded so far describe the old
                # snapshot and can never complete into a current view.
                self._replies.clear()
                self._outstanding = None
                self._harvest_dead = False
        if changed:
            self.store.sweep(self.view_id, version)

    # -- whole-view harvest ------------------------------------------------
    def _harvest(self, hole_id: object,
                 reply: Tuple[Fragment, ...],
                 version: object) -> None:
        """Track hole accounting; when every introduced hole has been
        filled at one version, assemble and store the complete view."""
        complete: Optional[Tree] = None
        with self._lock:
            if self._harvest_dead or version != self._last_version:
                return
            if self._outstanding is None:
                start = self._root_id if self._root_id is not None \
                    else hole_id
                self._outstanding = {start}
            if hole_id not in self._outstanding:
                # A refill of something already accounted (or a hole
                # we never saw introduced): accounting is no longer
                # trustworthy, stop harvesting this epoch.
                self._harvest_dead = True
                self._replies.clear()
                return
            self._outstanding.discard(hole_id)
            self._replies[hole_id] = reply
            self._outstanding.update(reply_holes(list(reply)))
            if not self._outstanding:
                complete = self._assemble_locked()
        if complete is not None:
            self.store.store_view(self.view_id, version, complete)
            tracer = self._tracer
            if tracer is not None and tracer.active:
                tracer.emit("fragcache", "complete",
                            source=self.view_id)

    def _assemble_locked(self) -> Optional[Tree]:
        """The complete view tree from the recorded replies (called
        under the lock; pure)."""
        root_id = self._root_id
        if root_id is None or root_id not in self._replies:
            return None

        def expand(fragments: Sequence[Fragment]) -> List[Tree]:
            out: List[Tree] = []
            for fragment in fragments:
                if isinstance(fragment, FragHole):
                    out.extend(expand(
                        self._replies[fragment.hole_id]))
                else:
                    out.append(Tree(fragment.label,
                                    expand(list(fragment.children))))
            return out

        try:
            elements = expand(self._replies[root_id])
        except KeyError:
            return None
        if len(elements) != 1:
            return None
        return elements[0]


# ----------------------------------------------------------------------
# Compile-time admissibility (the pushdown-style decision pass)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class FragcacheDecision:
    """One registered wrapper's fate under the admissibility check."""

    url: str
    cached: bool
    reason: str   # "cacheable" | "no-versioned-snapshots" |
    #               "side-effecting-source" | "not-browsable"
    detail: str

    def as_dict(self) -> Dict[str, object]:
        return {"url": self.url, "cached": self.cached,
                "reason": self.reason, "detail": self.detail}


def admissible(url: str, server: object) -> Tuple[bool, str, str]:
    """Whether ``server``'s export may be cached: ``(ok, reason,
    detail)``.

    The rule, checked entirely before any navigation happens:

    1. the wrapper must advertise ``snapshot_version()`` (presence-
       negotiated, like the push capability) -- without a version
       authority, stale fragments could never be invalidated;
    2. it must not declare ``side_effects`` -- replaying a cached
       fragment would skip whatever the source does per navigation;
    3. its export must be browsable under Definition 2 -- the same
       classifier the rewriter and the static analyzer use.  A bare
       source export is bounded browsable; the check runs the real
       classifier rather than assuming it.
    """
    version_of = getattr(server, "snapshot_version", None)
    if not callable(version_of):
        return (False, "no-versioned-snapshots",
                "wrapper does not advertise snapshot_version(); "
                "cached fragments could never be invalidated")
    if getattr(server, "side_effects", False):
        return (False, "side-effecting-source",
                "wrapper declares per-navigation side effects; "
                "answering from cache would skip them")
    from ..algebra.operators import Source
    from ..rewriter.analyzer import classify_plan
    from ..navigation.complexity import Browsability
    cls = classify_plan(Source(url, "v"))
    if cls == Browsability.UNBROWSABLE:
        return (False, "not-browsable",
                "export classified %s under Definition 2" % cls)
    return (True, "cacheable",
            "versioned side-effect-free export, Definition 2 "
            "class %s" % cls)


def fragment_cached(
        url: str, server: LXPServer,
        store: Optional[FragmentStore] = None,
        tracer: Optional[Any] = None,
) -> Tuple[LXPServer, Optional[Tree], FragcacheDecision]:
    """Wire one registered wrapper through the fragment cache.

    Runs the admissibility check, records the decision (and emits it
    as a ``fragcache.decision`` event), and -- for admissible wrappers
    -- returns the :class:`CachingLXPServer` proxy plus, when the
    store already holds the complete view at the wrapper's *current*
    snapshot version, the tree to adopt through the prefilled buffer.
    Inadmissible wrappers come back unchanged.
    """
    if store is None:
        store = shared_store()
    ok, reason, detail = admissible(url, server)
    decision = FragcacheDecision(url, ok, reason, detail)
    if tracer is not None and tracer.active:
        tracer.emit("fragcache", "decision", url=url, cached=ok,
                    reason=reason, detail=detail)
    if not ok:
        return server, None, decision
    version_of = getattr(server, "snapshot_version")
    whole = store.view(url, version_of())
    if whole is not None and tracer is not None and tracer.active:
        tracer.emit("fragcache", "adopt", source=url)
    caching = CachingLXPServer(server, url, store,
                               version_of=version_of, tracer=tracer)
    return caching, whole, decision
