"""Fault tolerance at the I/O seams: retries, breakers, degradation.

The paper's mediator navigates *live, autonomous* sources on demand
(Sec. 2, Fig. 2) -- which means any ``fill`` against a wrapper and any
channel round trip may fail at any time.  Distributed XML-query
systems treat source unavailability and partial results as protocol
states, not exceptions; this module gives the tower the same posture:

* :class:`RetryPolicy` -- a frozen value describing bounded retries
  with exponential backoff, *deterministic* jitter (seeded from the
  operation key, so runs reproduce) and an optional cumulative
  per-operation deadline.
* :class:`CircuitBreaker` -- the classic closed / open / half-open
  automaton, one per source, so a dead source fails fast instead of
  soaking every query in its full retry schedule.
* :class:`ResilientLXPServer` -- the seam wrapper.  Both I/O seams in
  the architecture speak LXP (the generic buffer's ``fill`` into a
  source wrapper, and the remote client's ``MessageChannel``), so one
  proxy class covers both.  In ``"degrade"`` mode an exhausted or
  broken source yields a marked ``<mix:error source=...>`` placeholder
  element in the virtual answer instead of aborting the query.
* :class:`ResilientDocument` -- the same retry/breaker engine for
  per-navigation round trips (:class:`~repro.client.remote.
  RPCDocument` and other NavigableDocuments).

Time is abstracted behind :class:`Clock` so tests drive the whole
machinery -- backoff sleeps, breaker reset windows, deadlines -- from
a fake clock without ever sleeping for real (see
:mod:`repro.testing.faults`).
"""

from __future__ import annotations

import time
import zlib
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple

from ..errors import (
    FAILURE_TYPES,
    PermanentSourceError,
    TransientSourceError,
    is_transient,
)
from .config import ConfigError
from .locks import make_lock, make_rlock

__all__ = [
    "Clock", "MonotonicClock", "SYSTEM_CLOCK",
    "RetryPolicy", "BreakerOpenError", "CircuitBreaker",
    "ResilienceStats", "ResilientCaller",
    "ERROR_LABEL", "error_placeholder", "is_error_label",
    "ResilientLXPServer", "ResilientDocument",
    "resilient_server", "resilient_document",
]


# ----------------------------------------------------------------------
# Time
# ----------------------------------------------------------------------

class Clock:
    """The time source the resilience layer reads and sleeps on."""

    def now_ms(self) -> float:
        raise NotImplementedError

    def sleep_ms(self, ms: float) -> None:
        raise NotImplementedError


class MonotonicClock(Clock):
    """Real time: ``time.monotonic`` + ``time.sleep``."""

    def now_ms(self) -> float:
        return time.monotonic() * 1000.0

    def sleep_ms(self, ms: float) -> None:
        if ms > 0:
            time.sleep(ms / 1000.0)


#: the default wall-clock; tests substitute a FakeClock
SYSTEM_CLOCK = MonotonicClock()


# ----------------------------------------------------------------------
# Retry policy
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class RetryPolicy:
    """How many times to try one I/O operation, and how to wait.

    ``max_attempts`` is the *total* try count (1 = no retries).  The
    delay before retry ``n`` (1-based) is::

        min(base_delay_ms * backoff**(n-1), max_delay_ms) * jitter_factor

    where the jitter factor is drawn deterministically from the
    operation key and the attempt number (+-``jitter`` relative), so a
    rerun of the same schedule produces identical waits -- randomized
    enough to de-synchronize a fleet, deterministic enough to test.

    ``deadline_ms`` bounds the cumulative elapsed time (tries plus
    waits) one operation may consume; when the next backoff would
    cross it, the policy gives up immediately instead of sleeping.
    """

    max_attempts: int = 3
    base_delay_ms: float = 10.0
    backoff: float = 2.0
    max_delay_ms: float = 1000.0
    deadline_ms: Optional[float] = None
    jitter: float = 0.1

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigError("max_attempts must be >= 1")
        if self.base_delay_ms < 0 or self.max_delay_ms < 0:
            raise ConfigError("delays must be >= 0")
        if self.backoff < 1.0:
            raise ConfigError("backoff must be >= 1.0")
        if not (0.0 <= self.jitter <= 1.0):
            raise ConfigError("jitter must be in [0, 1]")
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise ConfigError("deadline_ms must be positive or None")

    def delay_ms(self, attempt: int, key: object = None) -> float:
        """Backoff before retry number ``attempt`` (1-based)."""
        base = min(self.base_delay_ms * self.backoff ** (attempt - 1),
                   self.max_delay_ms)
        if self.jitter == 0.0 or base == 0.0:
            return base
        # crc32 (not hash()) so the jitter survives PYTHONHASHSEED.
        seed = zlib.crc32(repr((key, attempt)).encode("utf-8"))
        unit = (seed % 10000) / 10000.0          # [0, 1)
        return base * (1.0 + self.jitter * (2.0 * unit - 1.0))


# ----------------------------------------------------------------------
# Circuit breaker
# ----------------------------------------------------------------------

class BreakerOpenError(TransientSourceError):
    """Raised (or degraded) when a call is short-circuited by an open
    breaker.  Transient by definition: the breaker will half-open."""


class CircuitBreaker:
    """Per-source closed / open / half-open failure automaton.

    * **closed** -- calls pass; ``failure_threshold`` *consecutive*
      failures trip it open.
    * **open** -- calls are refused instantly (no source traffic, no
      retry schedule) until ``reset_timeout_ms`` has elapsed.
    * **half-open** -- exactly one probe call passes; its success
      closes the breaker, its failure re-opens it for another window.

    The automaton is shared by every thread navigating the source
    (prefetch workers, fan-out tasks, concurrent client sessions), so
    all state transitions happen under one re-entrant lock -- in
    particular the half-open probe slot is claimed atomically.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(self, failure_threshold: int = 5,
                 reset_timeout_ms: float = 30000.0,
                 clock: Clock = SYSTEM_CLOCK,
                 name: str = "") -> None:
        if failure_threshold < 1:
            raise ConfigError("failure_threshold must be >= 1")
        if reset_timeout_ms < 0:
            raise ConfigError("reset_timeout_ms must be >= 0")
        self.failure_threshold = failure_threshold
        self.reset_timeout_ms = reset_timeout_ms
        self.clock = clock
        self.name = name
        self._state = self.CLOSED
        self._consecutive_failures = 0
        self._opened_at: Optional[float] = None
        self._probing = False
        self._lock = make_rlock("resilience.breaker")
        #: lifetime transition counters (reported through stats)
        self.opens = 0
        self.short_circuits = 0

    @property
    def state(self) -> str:
        """The current state, applying the open -> half-open timeout."""
        with self._lock:
            if self._state == self.OPEN \
                    and self._opened_at is not None \
                    and self.clock.now_ms() - self._opened_at \
                    >= self.reset_timeout_ms:
                self._state = self.HALF_OPEN
                self._probing = False
            return self._state

    def allow(self) -> bool:
        """Whether a call may proceed right now (claims the half-open
        probe slot when in half-open state)."""
        with self._lock:
            state = self.state
            if state == self.CLOSED:
                return True
            if state == self.HALF_OPEN and not self._probing:
                self._probing = True
                return True
            self.short_circuits += 1
            return False

    def record_success(self) -> None:
        with self._lock:
            self._consecutive_failures = 0
            self._probing = False
            self._state = self.CLOSED
            self._opened_at = None

    def record_failure(self) -> None:
        with self._lock:
            if self.state == self.HALF_OPEN:
                self._trip()
                return
            self._consecutive_failures += 1
            if self._consecutive_failures >= self.failure_threshold:
                self._trip()

    def _trip(self) -> None:
        with self._lock:
            self._state = self.OPEN
            self._opened_at = self.clock.now_ms()
            self._consecutive_failures = 0
            self._probing = False
            self.opens += 1

    def __repr__(self) -> str:
        return "CircuitBreaker(%r, %s)" % (self.name, self.state)


# ----------------------------------------------------------------------
# Stats
# ----------------------------------------------------------------------

@dataclass
class ResilienceStats:
    """Retry/breaker/degradation accounting for one wrapped peer.

    A single peer may be exercised by many threads at once (prefetch
    workers, fan-out tasks, concurrent sessions over a shared
    source), so counter updates go through :attr:`lock` -- not a
    dataclass field, so equality and repr stay value-based.
    """

    calls: int = 0
    failures: int = 0              # individual failed tries
    retries: int = 0               # sleeps taken before re-trying
    giveups: int = 0               # operations that exhausted retries
    degraded: int = 0              # fills answered by an error hole
    breaker_opens: int = 0
    breaker_short_circuits: int = 0
    retry_wait_ms: float = 0.0     # cumulative backoff waited

    def __post_init__(self) -> None:
        self.lock = make_lock("resilience.stats")

    def snapshot(self) -> dict:
        """A consistent copy of the counters, taken under the lock.

        Reporters that run while the seam is live (the execution
        context's ``stats_report``, the session server's per-session
        stats) use this; :meth:`as_dict` reads unsynchronized and is
        only safe once the traffic has stopped."""
        with self.lock:
            return self.as_dict()

    def as_dict(self) -> dict:
        return {
            "calls": self.calls,
            "failures": self.failures,
            "retries": self.retries,
            "giveups": self.giveups,
            "degraded": self.degraded,
            "breaker_opens": self.breaker_opens,
            "breaker_short_circuits": self.breaker_short_circuits,
            "retry_wait_ms": self.retry_wait_ms,
        }

    def reset(self) -> None:
        self.calls = 0
        self.failures = 0
        self.retries = 0
        self.giveups = 0
        self.degraded = 0
        self.breaker_opens = 0
        self.breaker_short_circuits = 0
        self.retry_wait_ms = 0.0


# ----------------------------------------------------------------------
# The retry/breaker engine
# ----------------------------------------------------------------------

class ResilientCaller:
    """Retry + breaker + deadline around calls to one named peer.

    This is the shared engine under :class:`ResilientLXPServer` and
    :class:`ResilientDocument`: classify each failure via the error
    taxonomy, retry transient ones per the policy, feed the breaker,
    and keep the counters.  Raises the *last* underlying error when it
    gives up (callers decide whether to degrade).
    """

    def __init__(self, name: str,
                 policy: Optional[RetryPolicy] = None,
                 breaker: Optional[CircuitBreaker] = None,
                 clock: Clock = SYSTEM_CLOCK,
                 tracer: Optional[Any] = None,
                 stats: Optional[ResilienceStats] = None,
                 metrics: Optional[Any] = None) -> None:
        self.name = name
        self.policy = policy if policy is not None else RetryPolicy()
        self.breaker = breaker
        self.clock = clock
        self.tracer = tracer
        self.stats = stats if stats is not None else ResilienceStats()
        #: optional MetricsRegistry: every traced transition also
        #: increments ``resilience_events_total{source=,event=}``
        self.metrics = metrics

    def _trace(self, event: str, **data: object) -> None:
        if self.tracer is not None and self.tracer.active:
            # lint: allow=E002 -- callers pass contract names verbatim
            self.tracer.emit("resilience", event, source=self.name,
                             **data)
        metrics = self.metrics
        if metrics is not None and metrics.enabled:
            metrics.counter("resilience_events_total").inc(
                source=self.name, event=event)

    def call(self, fn: Callable, *args: object,
             key: object = None) -> Any:
        """Run ``fn(*args)`` under the policy; return its result or
        raise the final failure."""
        stats = self.stats
        with stats.lock:
            stats.calls += 1
        policy = self.policy
        started = self.clock.now_ms()
        attempt = 0
        while True:
            attempt += 1
            if self.breaker is not None and not self.breaker.allow():
                with stats.lock:
                    stats.breaker_short_circuits += 1
                self._trace("short_circuit",
                            state=self.breaker.state)
                raise BreakerOpenError(
                    "circuit for source %r is %s"
                    % (self.name, self.breaker.state))
            try:
                result = fn(*args)
            except FAILURE_TYPES as err:
                transient = is_transient(err)
                opened = 0
                if self.breaker is not None:
                    opens_before = self.breaker.opens
                    self.breaker.record_failure()
                    opened = self.breaker.opens - opens_before
                with stats.lock:
                    stats.failures += 1
                    stats.breaker_opens += opened
                if opened:
                    self._trace("breaker_open")
                self._trace("failure", attempt=attempt,
                            transient=transient,
                            error=type(err).__name__)
                if not transient or attempt >= policy.max_attempts:
                    with stats.lock:
                        stats.giveups += 1
                    raise
                delay = policy.delay_ms(attempt, key=(self.name, key))
                if policy.deadline_ms is not None:
                    elapsed = self.clock.now_ms() - started
                    if elapsed + delay > policy.deadline_ms:
                        with stats.lock:
                            stats.giveups += 1
                        self._trace("deadline_exceeded",
                                    elapsed_ms=elapsed)
                        raise
                with stats.lock:
                    stats.retries += 1
                    stats.retry_wait_ms += delay
                self._trace("retry", attempt=attempt, delay_ms=delay)
                self.clock.sleep_ms(delay)
            else:
                if self.breaker is not None:
                    self.breaker.record_success()
                return result


# ----------------------------------------------------------------------
# Degradation: error placeholders in the virtual answer
# ----------------------------------------------------------------------

#: label of the placeholder element a degraded source leaves behind
ERROR_LABEL = "mix:error"

#: hole-id tag routing a degraded get_root to a synthetic fill
_ERROR_HOLE = "__mix:error__"


def is_error_label(label: str) -> bool:
    """Whether an element label marks a degradation placeholder."""
    return label == ERROR_LABEL


def error_placeholder(source: str, reason: str) -> Any:
    """The marked partial-answer element ``<mix:error source=...>``.

    Shipped as an ordinary closed fragment, it flows through the
    buffer, the lazy operators and the client API like any element;
    ``XMLElement.is_error`` and :func:`is_error_label` recognize it.
    """
    from ..buffer.holes import FragElem
    return FragElem(ERROR_LABEL, (
        FragElem("source", (FragElem(source),)),
        FragElem("reason", (FragElem(reason or "unavailable"),)),
    ))


# ----------------------------------------------------------------------
# Seam wrappers
# ----------------------------------------------------------------------

class ResilientLXPServer:
    """Retry/breaker/degrade proxy around any LXP server.

    Both I/O seams of the architecture speak LXP -- the generic
    buffer's ``fill`` into a source wrapper, and the remote client's
    ``MessageChannel`` -- so this one proxy hardens both.  On
    ``on_failure="degrade"``, an exhausted or short-circuited
    operation answers with :func:`error_placeholder` fragments instead
    of raising, which the buffer splices like any reply: the virtual
    answer carries a marked partial result and sibling sources are
    untouched.
    """

    def __init__(self, server: Any, name: str = "source",
                 policy: Optional[RetryPolicy] = None,
                 breaker: Optional[CircuitBreaker] = None,
                 clock: Clock = SYSTEM_CLOCK,
                 on_failure: str = "fail",
                 tracer: Optional[Any] = None,
                 metrics: Optional[Any] = None) -> None:
        if on_failure not in ("fail", "degrade"):
            raise ConfigError(
                "on_failure must be 'fail' or 'degrade', not %r"
                % (on_failure,))
        self.server = server
        self.name = name
        self.on_failure = on_failure
        self.caller = ResilientCaller(name, policy=policy,
                                      breaker=breaker, clock=clock,
                                      tracer=tracer, metrics=metrics)
        self.resilience = self.caller.stats

    @property
    def breaker(self) -> Optional[CircuitBreaker]:
        return self.caller.breaker

    def _degrade(self, err: BaseException) -> List[Any]:
        with self.resilience.lock:
            self.resilience.degraded += 1
        self.caller._trace("degraded", error=type(err).__name__)
        return [error_placeholder(self.name, str(err))]

    def get_root(self) -> Any:
        from ..buffer.holes import FragHole
        try:
            return self.caller.call(self.server.get_root,
                                    key="get_root")
        except FAILURE_TYPES as err:
            if self.on_failure != "degrade":
                raise
            # Degrade via a synthetic hole: get_root must return a
            # hole, so the placeholder ships on its first fill.
            with self.resilience.lock:
                self.resilience.degraded += 1
            return FragHole((_ERROR_HOLE, str(err)))

    def fill(self, hole_id: Any) -> Any:
        if isinstance(hole_id, tuple) and hole_id \
                and hole_id[0] == _ERROR_HOLE:
            return [error_placeholder(self.name, hole_id[1])]
        try:
            return self.caller.call(self.server.fill, hole_id,
                                    key=hole_id)
        except FAILURE_TYPES as err:
            if self.on_failure != "degrade":
                raise
            return self._degrade(err)

    def fill_batch(self, hole_ids: Any, speculate: int = 0) -> Any:
        """Batched fill through the same retry/breaker/degrade seam.

        One batch is one retriable operation (the whole round trip is
        retried, matching the channel's all-or-nothing framing).  On
        exhausted failure in degrade mode every *requested* hole gets
        its own placeholder reply -- speculative fills are simply
        absent, exactly as if the server declined to speculate.
        """
        hole_ids = list(hole_ids)
        synthetic = [hid for hid in hole_ids
                     if isinstance(hid, tuple) and hid
                     and hid[0] == _ERROR_HOLE]
        if synthetic:
            # Error holes never reach the wrapped server; answer them
            # (and any healthy ids) via per-hole fills instead.
            return [(hid, self.fill(hid)) for hid in hole_ids]
        try:
            return self.caller.call(self.server.fill_batch, hole_ids,
                                    speculate,
                                    key=("fill_batch",
                                         tuple(hole_ids)))
        except FAILURE_TYPES as err:
            if self.on_failure != "degrade":
                raise
            with self.resilience.lock:
                self.resilience.degraded += len(hole_ids)
            self.caller._trace("degraded", error=type(err).__name__,
                               batch=len(hole_ids))
            return [(hid, [error_placeholder(self.name, str(err))])
                    for hid in hole_ids]

    def __getattr__(self, attr: str) -> Any:
        # Transparent proxy for everything else (stats, chunk_size...)
        return getattr(self.server, attr)


class ResilientDocument:
    """Retry/breaker proxy around a NavigableDocument's round trips.

    Covers the naive per-command remote design
    (:class:`~repro.client.remote.RPCDocument`): each ``down`` /
    ``right`` / ``fetch`` / ``select`` is one retriable operation.
    Navigation has no fragment stream to degrade into, so exhaustion
    always raises; degradation is a property of the fragment seams.
    """

    def __init__(self, document: Any, name: str = "channel",
                 policy: Optional[RetryPolicy] = None,
                 breaker: Optional[CircuitBreaker] = None,
                 clock: Clock = SYSTEM_CLOCK,
                 tracer: Optional[Any] = None,
                 metrics: Optional[Any] = None) -> None:
        self.document = document
        self.name = name
        self.caller = ResilientCaller(name, policy=policy,
                                      breaker=breaker, clock=clock,
                                      tracer=tracer, metrics=metrics)
        self.resilience = self.caller.stats

    def root(self) -> Any:
        return self.caller.call(self.document.root, key="root")

    def down(self, pointer: Any) -> Any:
        return self.caller.call(self.document.down, pointer,
                                key="down")

    def right(self, pointer: Any) -> Any:
        return self.caller.call(self.document.right, pointer,
                                key="right")

    def fetch(self, pointer: Any) -> Any:
        return self.caller.call(self.document.fetch, pointer,
                                key="fetch")

    def select(self, pointer: Any, predicate: Any) -> Any:
        return self.caller.call(
            lambda: self.document.select(pointer, predicate),
            key="select")

    def apply(self, command: str, pointer: Any) -> Any:
        from ..navigation.interface import NavigableDocument
        return NavigableDocument.apply(self, command, pointer)

    def __getattr__(self, attr: str) -> Any:
        return getattr(self.document, attr)


# ----------------------------------------------------------------------
# Config-driven factories
# ----------------------------------------------------------------------

def _build(config: Any, name: str, clock: Clock, tracer: Any
           ) -> Tuple[RetryPolicy, CircuitBreaker]:
    policy = config.retry_policy()
    breaker = CircuitBreaker(
        failure_threshold=config.breaker_threshold,
        reset_timeout_ms=config.breaker_reset_ms,
        clock=clock, name=name)
    return policy, breaker


def resilient_server(server: Any, config: Any,
                     name: str = "source",
                     clock: Optional[Clock] = None,
                     tracer: Optional[Any] = None,
                     context: Optional[Any] = None) -> Any:
    """Wrap an LXP server per ``config``; pass-through when inactive.

    When ``config.resilience_active`` is false the server is returned
    *unchanged* -- the healthy default path pays nothing.  Otherwise
    the wrapped server's :class:`ResilienceStats` are registered with
    ``context`` (when given) under ``name``, so they surface through
    ``QueryResult.stats()``.
    """
    if not config.resilience_active:
        return server
    clock = clock if clock is not None else SYSTEM_CLOCK
    policy, breaker = _build(config, name, clock, tracer)
    wrapped = ResilientLXPServer(
        server, name=name, policy=policy, breaker=breaker,
        clock=clock, on_failure=config.on_source_failure,
        tracer=tracer,
        metrics=getattr(context, "metrics", None))
    if context is not None:
        context.register_resilience(name, wrapped.resilience)
    return wrapped


def resilient_document(document: Any, config: Any,
                       name: str = "channel",
                       clock: Optional[Clock] = None,
                       tracer: Optional[Any] = None,
                       context: Optional[Any] = None) -> Any:
    """Wrap a NavigableDocument per ``config``; pass-through when
    inactive (see :func:`resilient_server`)."""
    if not config.resilience_active:
        return document
    clock = clock if clock is not None else SYSTEM_CLOCK
    policy, breaker = _build(config, name, clock, tracer)
    wrapped = ResilientDocument(document, name=name, policy=policy,
                                breaker=breaker, clock=clock,
                                tracer=tracer,
                                metrics=getattr(context, "metrics",
                                                None))
    if context is not None:
        context.register_resilience(name, wrapped.resilience)
    return wrapped
