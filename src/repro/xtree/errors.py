"""Exceptions raised by the :mod:`repro.xtree` package."""


from ..errors import ReproError


class XTreeError(ReproError):
    """Base class for all xtree errors."""


class XMLParseError(XTreeError):
    """Raised when an XML document cannot be parsed.

    Carries the character ``position`` (0-based offset into the input)
    and a human-readable message.
    """

    def __init__(self, message, position=None):
        self.position = position
        if position is not None:
            message = "%s (at offset %d)" % (message, position)
        super().__init__(message)


class PathSyntaxError(XTreeError):
    """Raised when a regular path expression cannot be parsed."""


class TreeConstructionError(XTreeError):
    """Raised when an invalid tree would be constructed (e.g. a non-string
    label or a leaf given children)."""
