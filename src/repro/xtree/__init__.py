"""XML data model substrate: labeled ordered trees, parsing,
serialization, and regular path expressions.

This is the ``T = D | D[T*]`` abstraction of Section 2 of the paper,
shared by every layer of the MIX reproduction.
"""

from .errors import (
    PathSyntaxError,
    TreeConstructionError,
    XMLParseError,
    XTreeError,
)
from .parse import ATTRIBUTE_PREFIX, parse_fragment, parse_xml
from .path import (
    Alt,
    Label,
    Opt,
    PathExpr,
    PathNFA,
    Plus,
    Seq,
    Star,
    Wildcard,
    compile_path,
    naive_match,
    parse_path,
)
from .serialize import escape_attribute, escape_text, to_xml
from .tree import (
    Tree,
    elem,
    labels_on_path,
    leaf,
    preorder,
    tree_depth,
    tree_from_obj,
    tree_size,
)

__all__ = [
    "Tree", "elem", "leaf", "tree_from_obj", "tree_size", "tree_depth",
    "preorder", "labels_on_path",
    "parse_xml", "parse_fragment", "ATTRIBUTE_PREFIX",
    "to_xml", "escape_text", "escape_attribute",
    "PathExpr", "Label", "Wildcard", "Seq", "Alt", "Star", "Plus", "Opt",
    "parse_path", "compile_path", "PathNFA", "naive_match",
    "XTreeError", "XMLParseError", "PathSyntaxError",
    "TreeConstructionError",
]
