"""Regular path expressions and their NFA-based incremental matcher.

``getDescendants`` (paper Section 3) extracts descendants of a parent
element reachable by a label path matching a regular expression over
labels.  The grammar follows the paper's usage (``homes.home``,
``zip._``) plus the "usual operators"::

    path  :=  alt
    alt   :=  seq ('|' seq)*
    seq   :=  rep ('.' rep)*
    rep   :=  atom ('*' | '+' | '?')?
    atom  :=  LABEL  |  '_'  |  '(' alt ')'

``_`` matches any single label.  ``a.b*`` parses as ``a . (b*)`` --
postfix operators bind to the preceding atom.

The matcher is a Thompson NFA driven *incrementally*: the lazy
``getDescendants`` mediator carries a frontier of NFA states in each
node-id and advances it one label at a time as the client navigates
deeper.  This is what makes path matching navigation-driven rather than
whole-tree.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from .errors import PathSyntaxError

__all__ = [
    "PathExpr", "Label", "Wildcard", "Seq", "Alt", "Star", "Plus", "Opt",
    "parse_path", "PathNFA", "compile_path", "naive_match",
]


# ----------------------------------------------------------------------
# AST
# ----------------------------------------------------------------------

class PathExpr:
    """Base class of regular path expression AST nodes."""

    def __str__(self) -> str:  # pragma: no cover - overridden
        raise NotImplementedError


@dataclass(frozen=True)
class Label(PathExpr):
    """Match exactly one node labeled ``name``."""
    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Wildcard(PathExpr):
    """``_``: match exactly one node with any label."""

    def __str__(self) -> str:
        return "_"


@dataclass(frozen=True)
class Seq(PathExpr):
    """Concatenation ``p1.p2``."""
    parts: Tuple[PathExpr, ...]

    def __str__(self) -> str:
        return ".".join(
            ("(%s)" % p) if isinstance(p, Alt) else str(p)
            for p in self.parts
        )


@dataclass(frozen=True)
class Alt(PathExpr):
    """Alternation ``p1|p2``."""
    options: Tuple[PathExpr, ...]

    def __str__(self) -> str:
        return "|".join(str(p) for p in self.options)


@dataclass(frozen=True)
class Star(PathExpr):
    """Kleene star ``p*`` (zero or more)."""
    inner: PathExpr

    def __str__(self) -> str:
        return _postfix_str(self.inner, "*")


@dataclass(frozen=True)
class Plus(PathExpr):
    """``p+`` (one or more)."""
    inner: PathExpr

    def __str__(self) -> str:
        return _postfix_str(self.inner, "+")


@dataclass(frozen=True)
class Opt(PathExpr):
    """``p?`` (zero or one)."""
    inner: PathExpr

    def __str__(self) -> str:
        return _postfix_str(self.inner, "?")


def _postfix_str(inner: PathExpr, op: str) -> str:
    if isinstance(inner, (Label, Wildcard)):
        return "%s%s" % (inner, op)
    return "(%s)%s" % (inner, op)


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------

_LABEL_RE = re.compile(r"[A-Za-z0-9_@][-A-Za-z0-9_@:]*")
# NB: '_' alone is the wildcard; '_x' is a plain label.


class _PathParser:
    def __init__(self, text: str):
        self.text = text
        self.pos = 0

    def _skip_ws(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos].isspace():
            self.pos += 1

    def peek(self) -> str:
        self._skip_ws()
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def parse(self) -> PathExpr:
        expr = self.parse_alt()
        self._skip_ws()
        if self.pos != len(self.text):
            raise PathSyntaxError(
                "unexpected %r at offset %d in path %r"
                % (self.text[self.pos], self.pos, self.text)
            )
        return expr

    def parse_alt(self) -> PathExpr:
        options = [self.parse_seq()]
        while self.peek() == "|":
            self.pos += 1
            options.append(self.parse_seq())
        if len(options) == 1:
            return options[0]
        return Alt(tuple(options))

    def parse_seq(self) -> PathExpr:
        parts = [self.parse_rep()]
        while self.peek() == ".":
            self.pos += 1
            parts.append(self.parse_rep())
        if len(parts) == 1:
            return parts[0]
        return Seq(tuple(parts))

    def parse_rep(self) -> PathExpr:
        atom = self.parse_atom()
        while True:
            op = self.peek()
            if op == "*":
                self.pos += 1
                atom = Star(atom)
            elif op == "+":
                self.pos += 1
                atom = Plus(atom)
            elif op == "?":
                self.pos += 1
                atom = Opt(atom)
            else:
                return atom

    def parse_atom(self) -> PathExpr:
        ch = self.peek()
        if ch == "(":
            self.pos += 1
            inner = self.parse_alt()
            if self.peek() != ")":
                raise PathSyntaxError(
                    "missing ')' in path %r" % self.text
                )
            self.pos += 1
            return inner
        self._skip_ws()
        match = _LABEL_RE.match(self.text, self.pos)
        if not match:
            raise PathSyntaxError(
                "expected a label at offset %d in path %r"
                % (self.pos, self.text)
            )
        self.pos = match.end()
        name = match.group(0)
        if name == "_":
            return Wildcard()
        return Label(name)


def parse_path(text: str) -> PathExpr:
    """Parse a regular path expression string into its AST."""
    if not text or not text.strip():
        raise PathSyntaxError("empty path expression")
    return _PathParser(text).parse()


# ----------------------------------------------------------------------
# Thompson NFA
# ----------------------------------------------------------------------

#: Transition guard: a concrete label string, or None for the wildcard.
Guard = Optional[str]


class PathNFA:
    """An epsilon-free NFA over node labels with set-of-states stepping.

    States are small integers.  The matcher works on *frozensets* of
    states so that a frontier can be embedded into a (hashable) node-id
    of the lazy ``getDescendants`` mediator.
    """

    def __init__(self, expr: PathExpr):
        self.expr = expr
        #: transitions[state] -> list of (guard, next_state)
        self._transitions: List[List[Tuple[Guard, int]]] = []
        self._epsilon: List[List[int]] = []
        self._accept: int = -1
        start = self._new_state()
        self._accept = self._new_state()
        self._build(expr, start, self._accept)
        self._closure_cache: Dict[int, FrozenSet[int]] = {}
        self.start_states: FrozenSet[int] = self._closure({start})
        self._recursive = self._detect_cycle()

    # -- construction ---------------------------------------------------
    def _new_state(self) -> int:
        self._transitions.append([])
        self._epsilon.append([])
        return len(self._transitions) - 1

    def _build(self, expr: PathExpr, src: int, dst: int) -> None:
        if isinstance(expr, Label):
            self._transitions[src].append((expr.name, dst))
        elif isinstance(expr, Wildcard):
            self._transitions[src].append((None, dst))
        elif isinstance(expr, Seq):
            current = src
            for part in expr.parts[:-1]:
                nxt = self._new_state()
                self._build(part, current, nxt)
                current = nxt
            self._build(expr.parts[-1], current, dst)
        elif isinstance(expr, Alt):
            for option in expr.options:
                self._build(option, src, dst)
        elif isinstance(expr, Star):
            hub = self._new_state()
            self._epsilon[src].append(hub)
            self._epsilon[hub].append(dst)
            self._build(expr.inner, hub, hub)
        elif isinstance(expr, Plus):
            hub = self._new_state()
            self._build(expr.inner, src, hub)
            self._build(expr.inner, hub, hub)
            self._epsilon[hub].append(dst)
        elif isinstance(expr, Opt):
            self._epsilon[src].append(dst)
            self._build(expr.inner, src, dst)
        else:  # pragma: no cover - exhaustive
            raise TypeError("unknown path expression %r" % (expr,))

    def _closure(self, states: Iterable[int]) -> FrozenSet[int]:
        result = set()
        stack = list(states)
        while stack:
            state = stack.pop()
            if state in result:
                continue
            result.add(state)
            stack.extend(self._epsilon[state])
        return frozenset(result)

    def _detect_cycle(self) -> bool:
        """True when the expression can match unboundedly long paths.

        Every atom (label or wildcard) consumes exactly one path label,
        so matchable length is unbounded iff the AST contains ``*`` or
        ``+``.  Recursive paths force the getDescendants mediator to
        cache visited input nodes (paper Section 3).
        """

        def has_repeat(expr: PathExpr) -> bool:
            if isinstance(expr, (Star, Plus)):
                return True
            if isinstance(expr, Seq):
                return any(has_repeat(p) for p in expr.parts)
            if isinstance(expr, Alt):
                return any(has_repeat(o) for o in expr.options)
            if isinstance(expr, Opt):
                return has_repeat(expr.inner)
            return False

        return has_repeat(self.expr)

    # -- matcher interface ----------------------------------------------
    @property
    def is_recursive(self) -> bool:
        """Whether the expression can match unboundedly long paths."""
        return self._recursive

    def step(self, states: FrozenSet[int], label: str) -> FrozenSet[int]:
        """Advance the state frontier by one path label."""
        nxt = set()
        for state in states:
            for guard, target in self._transitions[state]:
                if guard is None or guard == label:
                    nxt.add(target)
        if not nxt:
            return frozenset()
        return self._closure(nxt)

    def is_accepting(self, states: FrozenSet[int]) -> bool:
        """Whether the frontier contains the accept state."""
        return self._accept in states

    def is_alive(self, states: FrozenSet[int]) -> bool:
        """Whether any extension of the consumed path could still match.

        A dead frontier lets the mediator prune a whole subtree without
        navigating into it.
        """
        return bool(states)

    def progress_labels(self, states: FrozenSet[int]
                        ) -> Optional[FrozenSet[str]]:
        """The exact set of labels that can advance the frontier, or
        None when a wildcard transition makes every label viable.

        When this returns a (small) concrete set, a sibling-selection
        command ``select(sigma)`` can jump straight to the next viable
        sibling -- the paper's Example 1 upgrade of label filters from
        browsable to bounded browsable.
        """
        labels = set()
        for state in states:
            for guard, _target in self._transitions[state]:
                if guard is None:
                    return None
                labels.add(guard)
        return frozenset(labels)

    def final_labels(self) -> Optional[FrozenSet[str]]:
        """The labels a matching path can end with, or None when a
        wildcard can be final (the extracted node's label is then
        unconstrained).

        Used by DTD inference: a variable bound via ``homes.home`` is
        known to hold ``home`` elements.
        """
        finals = set()
        for state in range(len(self._transitions)):
            for guard, target in self._transitions[state]:
                if self._accept in self._closure({target}):
                    if guard is None:
                        return None
                    finals.add(guard)
        return frozenset(finals)

    def matches(self, labels: Sequence[str]) -> bool:
        """Whole-sequence match (the non-incremental entry point)."""
        states = self.start_states
        for label in labels:
            states = self.step(states, label)
            if not states:
                return False
        return self.is_accepting(states)

    def max_match_length(self) -> Optional[int]:
        """Longest matchable path length, or None when recursive."""
        if self._recursive:
            return None
        # Longest path in a DAG over combined label/epsilon edges, where
        # label edges weigh 1 and epsilon edges weigh 0.
        n = len(self._transitions)
        memo: Dict[int, int] = {}

        def longest(state: int) -> int:
            if state in memo:
                return memo[state]
            memo[state] = 0  # placeholder against accidental cycles
            best = 0
            for _, target in self._transitions[state]:
                best = max(best, 1 + longest(target))
            for target in self._epsilon[state]:
                best = max(best, longest(target))
            memo[state] = best
            return best

        return max(longest(s) for s in self.start_states)


def compile_path(path: "str | PathExpr") -> PathNFA:
    """Compile a path string or AST into an NFA matcher."""
    expr = parse_path(path) if isinstance(path, str) else path
    return PathNFA(expr)


# ----------------------------------------------------------------------
# Naive reference semantics (oracle for property tests)
# ----------------------------------------------------------------------

def naive_match(expr: PathExpr, labels: Sequence[str]) -> bool:
    """Direct recursive interpretation of the path semantics.

    Exponential in the worst case -- used only as a test oracle against
    the NFA matcher on small inputs.
    """
    labels = list(labels)

    def match(e: PathExpr, i: int, j: int) -> bool:
        if isinstance(e, Label):
            return j == i + 1 and labels[i] == e.name
        if isinstance(e, Wildcard):
            return j == i + 1
        if isinstance(e, Alt):
            return any(match(o, i, j) for o in e.options)
        if isinstance(e, Seq):
            return _match_seq(e.parts, i, j)
        if isinstance(e, Opt):
            return i == j or match(e.inner, i, j)
        if isinstance(e, Star):
            return _match_star(e.inner, i, j, allow_empty=True)
        if isinstance(e, Plus):
            return _match_star(e.inner, i, j, allow_empty=False)
        raise TypeError("unknown path expression %r" % (e,))

    def _match_seq(parts: Tuple[PathExpr, ...], i: int, j: int) -> bool:
        if not parts:
            return i == j
        head, rest = parts[0], parts[1:]
        return any(
            match(head, i, k) and _match_seq(rest, k, j)
            for k in range(i, j + 1)
        )

    def _match_star(inner: PathExpr, i: int, j: int,
                    allow_empty: bool) -> bool:
        if i == j:
            # p+ matches the empty path iff p itself does (e.g. (a?)+).
            return allow_empty or match(inner, i, j)
        return any(
            match(inner, i, k) and (k == j or _match_star(inner, k, j, True))
            for k in range(i + 1, j + 1)
        )

    return match(expr, 0, len(labels))
