"""Labeled ordered trees: the data model of the VXD framework.

The paper (Section 2) abstracts XML documents as labeled ordered trees
over a domain ``D`` of "string-like" data::

    T = D | D[T*]

A tree is either a leaf -- a single atomic piece of data ``d`` -- or a
label ``d`` together with an ordered list of child trees.  In XML
parlance a non-leaf label is an element tag name and a leaf label is
character content or an empty element.

Two notions of equality matter in this code base:

* *structural* equality (``==``): same labels, same shape.  Used by the
  test-suite oracles that compare lazily navigated output against the
  eager reference evaluator.
* *identity* (``is`` / :func:`id`): binding lists share subtrees of the
  input documents (footnote 7 of the paper), so grouping and duplicate
  elimination must distinguish two structurally equal elements that come
  from different places in a source.  Node identity is plain Python
  object identity; nothing is ever copied implicitly.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Tuple, Union

from .errors import TreeConstructionError

__all__ = [
    "Tree",
    "leaf",
    "elem",
    "tree_from_obj",
    "tree_size",
    "tree_depth",
    "preorder",
    "labels_on_path",
]

#: Anything accepted where a child tree is expected: an existing Tree, a
#: plain string (wrapped into a leaf), or an int/float (stringified).
ChildLike = Union["Tree", str, int, float]


class Tree:
    """A labeled ordered tree (an XML element or atomic datum).

    Parameters
    ----------
    label:
        The node label: an element tag name for inner nodes, atomic
        character data for leaves.  Must be a string (ints/floats are
        accepted for convenience and stringified).
    children:
        Ordered iterable of child trees.  Strings and numbers are
        wrapped into leaves.

    The children list is exposed read-only through :attr:`children`;
    trees are treated as immutable after construction (sources never
    change under a running navigation in this reproduction).
    """

    __slots__ = ("_label", "_children")

    def __init__(self, label: str, children: Iterable[ChildLike] = ()):
        if isinstance(label, (int, float)):
            label = _format_atom(label)
        if not isinstance(label, str):
            raise TreeConstructionError(
                "tree label must be a string, got %r" % (label,)
            )
        self._label = label
        kids: List[Tree] = []
        for child in children:
            if isinstance(child, Tree):
                kids.append(child)
            elif isinstance(child, (str, int, float)):
                kids.append(Tree(child))
            else:
                raise TreeConstructionError(
                    "tree child must be a Tree or atomic value, got %r"
                    % (child,)
                )
        self._children = tuple(kids)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def label(self) -> str:
        """The node label (tag name or atomic content)."""
        return self._label

    @property
    def children(self) -> Tuple["Tree", ...]:
        """The ordered tuple of child subtrees."""
        return self._children

    @property
    def is_leaf(self) -> bool:
        """True when this node has no children (atomic data)."""
        return not self._children

    def child(self, index: int) -> "Tree":
        """Return the ``index``-th child (0-based)."""
        return self._children[index]

    def first_child(self) -> Optional["Tree"]:
        """The first child, or None for a leaf (the ``d`` command)."""
        return self._children[0] if self._children else None

    def __len__(self) -> int:
        return len(self._children)

    def __iter__(self) -> Iterator["Tree"]:
        return iter(self._children)

    # ------------------------------------------------------------------
    # Structural equality & hashing
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, Tree):
            return NotImplemented
        # Iterative comparison to survive very deep trees.
        stack = [(self, other)]
        while stack:
            a, b = stack.pop()
            if a is b:
                continue
            if a._label != b._label or len(a._children) != len(b._children):
                return False
            stack.extend(zip(a._children, b._children))
        return True

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __hash__(self) -> int:
        # Shallow hash: label + arity + child labels.  Cheap, stable, and
        # consistent with structural __eq__ (equal trees hash equal).
        return hash(
            (self._label, len(self._children),
             tuple(c._label for c in self._children))
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def find_children(self, label: str) -> List["Tree"]:
        """All direct children carrying ``label``."""
        return [c for c in self._children if c._label == label]

    def find_child(self, label: str) -> Optional["Tree"]:
        """The first direct child carrying ``label``, or None."""
        for c in self._children:
            if c._label == label:
                return c
        return None

    def text(self) -> str:
        """Concatenated labels of all descendant leaves.

        For an element like ``zip[91220]`` this returns ``"91220"`` --
        the natural "string value" used by join predicates.
        """
        if self.is_leaf:
            return self._label
        parts: List[str] = []
        for node in preorder(self):
            if node.is_leaf and node is not self:
                parts.append(node._label)
        return "".join(parts)

    def descendants(self) -> Iterator["Tree"]:
        """All proper descendants in document (preorder) order."""
        for child in self._children:
            yield child
            yield from child.descendants()

    # ------------------------------------------------------------------
    # Copying / representation
    # ------------------------------------------------------------------
    def deep_copy(self) -> "Tree":
        """A structurally equal tree sharing no nodes with this one."""
        return Tree(self._label, [c.deep_copy() for c in self._children])

    def to_obj(self):
        """Convert to a nested ``(label, [children])`` representation.

        Leaves become bare strings; inner nodes become 2-tuples.  The
        inverse is :func:`tree_from_obj`.  Handy for terse test fixtures.
        """
        if self.is_leaf:
            return self._label
        return (self._label, [c.to_obj() for c in self._children])

    def __repr__(self) -> str:
        return "Tree(%s)" % self.sexpr(max_depth=3)

    def sexpr(self, max_depth: Optional[int] = None) -> str:
        """Render in the paper's bracket notation, e.g. ``a[b, c[d]]``."""
        if self.is_leaf:
            return self._label
        if max_depth is not None and max_depth <= 0:
            return "%s[...]" % self._label
        inner_depth = None if max_depth is None else max_depth - 1
        inner = ", ".join(c.sexpr(inner_depth) for c in self._children)
        return "%s[%s]" % (self._label, inner)


def _format_atom(value: Union[int, float]) -> str:
    """Stringify a numeric atom the way the fixtures expect (no '.0')."""
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)


# ----------------------------------------------------------------------
# Convenience constructors
# ----------------------------------------------------------------------

def leaf(value: Union[str, int, float]) -> Tree:
    """Construct a leaf node from an atomic value."""
    return Tree(_format_atom(value) if isinstance(value, (int, float))
                else value)


def elem(label: str, *children: ChildLike) -> Tree:
    """Construct an element; string/number children become leaves.

    >>> elem("home", elem("addr", "La Jolla"), elem("zip", 91220)).sexpr()
    'home[addr[La Jolla], zip[91220]]'
    """
    return Tree(label, children)


def tree_from_obj(obj) -> Tree:
    """Inverse of :meth:`Tree.to_obj`.

    Accepts a bare string (leaf) or a ``(label, [children])`` pair.
    """
    if isinstance(obj, (str, int, float)):
        return leaf(obj)
    if isinstance(obj, Tree):
        return obj
    label, children = obj
    return Tree(label, [tree_from_obj(c) for c in children])


# ----------------------------------------------------------------------
# Whole-tree measures and traversals
# ----------------------------------------------------------------------

def tree_size(t: Tree) -> int:
    """Number of nodes in ``t``."""
    count = 0
    stack = [t]
    while stack:
        node = stack.pop()
        count += 1
        stack.extend(node.children)
    return count


def tree_depth(t: Tree) -> int:
    """Height of ``t``: 1 for a single leaf."""
    depth = 0
    frontier = [t]
    while frontier:
        depth += 1
        nxt: List[Tree] = []
        for node in frontier:
            nxt.extend(node.children)
        frontier = nxt
    return depth


def preorder(t: Tree) -> Iterator[Tree]:
    """Document-order (preorder) traversal, including ``t`` itself."""
    stack = [t]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(reversed(node.children))


def labels_on_path(t: Tree, indexes: Iterable[int]) -> List[str]:
    """Labels along the child-index path ``indexes`` starting below ``t``.

    ``labels_on_path(home_tree, [1, 0])`` returns, e.g.,
    ``["zip", "91220"]`` -- the label sequence matched against a
    regular path expression by ``getDescendants``.
    """
    labels: List[str] = []
    node = t
    for i in indexes:
        node = node.child(i)
        labels.append(node.label)
    return labels
