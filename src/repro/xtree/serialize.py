"""Serialization of :class:`~repro.xtree.tree.Tree` values back to XML.

The serializer is the inverse of :func:`repro.xtree.parse.parse_xml`
under the default whitespace policy: ``parse_xml(to_xml(t)) == t`` for
any tree whose leaf labels survive whitespace stripping (the
property-based round-trip test pins this down precisely).
"""

from __future__ import annotations

from typing import List

from .parse import ATTRIBUTE_PREFIX
from .tree import Tree

__all__ = ["to_xml", "escape_text", "escape_attribute"]

_TEXT_ESCAPES = [("&", "&amp;"), ("<", "&lt;"), (">", "&gt;")]


def escape_text(text: str) -> str:
    """Escape character content for inclusion in element bodies."""
    for raw, cooked in _TEXT_ESCAPES:
        text = text.replace(raw, cooked)
    return text


def escape_attribute(text: str) -> str:
    """Escape character content for inclusion in attribute values."""
    return escape_text(text).replace('"', "&quot;")


def _is_name(label: str) -> bool:
    """Crude check that a label can serve as an XML tag name."""
    if not label:
        return False
    head = label[0]
    if not (head.isalpha() or head in "_:"):
        return False
    return all(ch.isalnum() or ch in "-._:" for ch in label)


def to_xml(tree: Tree, pretty: bool = False, indent: str = "  ",
           attributes_inline: bool = True) -> str:
    """Serialize ``tree`` to an XML string.

    Parameters
    ----------
    pretty:
        When True, element-only content is indented one level per depth.
        Mixed/leaf content is never reformatted.
    attributes_inline:
        When True, leading ``@name`` children are rendered as XML
        attributes (the inverse of the parser's convention); otherwise
        they are rendered as ordinary ``<@name>`` elements (which will
        not re-parse -- useful only for debugging output).
    """
    parts: List[str] = []
    _render(tree, parts, pretty, indent, 0, attributes_inline)
    return "".join(parts)


def _split_attributes(tree: Tree, attributes_inline: bool):
    attrs = []
    rest = list(tree.children)
    if attributes_inline:
        while rest and rest[0].label.startswith(ATTRIBUTE_PREFIX):
            attr = rest.pop(0)
            value = attr.children[0].label if attr.children else ""
            attrs.append((attr.label[len(ATTRIBUTE_PREFIX):], value))
    return attrs, rest


def _render(tree: Tree, parts: List[str], pretty: bool, indent: str,
            depth: int, attributes_inline: bool) -> None:
    pad = indent * depth if pretty else ""
    if tree.is_leaf and not _is_name(tree.label):
        # Atomic character data.
        parts.append(pad + escape_text(tree.label))
        return

    attrs, children = _split_attributes(tree, attributes_inline)
    open_tag = tree.label
    if not _is_name(open_tag):
        # Data labels that cannot be tag names are emitted as text leaves
        # even if they unexpectedly carry children.
        parts.append(pad + escape_text(tree.label))
        return

    attr_text = "".join(
        ' %s="%s"' % (name, escape_attribute(value)) for name, value in attrs
    )
    if not children:
        parts.append("%s<%s%s/>" % (pad, open_tag, attr_text))
        return

    only_leaf_data = all(
        child.is_leaf and not _is_name(child.label) for child in children
    )
    if only_leaf_data or not pretty:
        parts.append("%s<%s%s>" % (pad, open_tag, attr_text))
        for child in children:
            _render(child, parts, False, indent, 0, attributes_inline)
        parts.append("</%s>" % open_tag)
        if pretty:
            pass
        return

    parts.append("%s<%s%s>\n" % (pad, open_tag, attr_text))
    for child in children:
        _render(child, parts, True, indent, depth + 1, attributes_inline)
        parts.append("\n")
    parts.append("%s</%s>" % (pad, open_tag))
