"""A small XML parser producing :class:`repro.xtree.tree.Tree` values.

The paper abstracts XML to labeled ordered trees and (for simplicity)
excludes attributes from the formal model, while the MIX implementation
incorporates them.  We follow the implementation: attributes of an
element ``e`` are represented as leading children of ``e`` labeled
``@name`` whose single child is the attribute value -- a lossless,
order-stable encoding that keeps the rest of the system attribute-free.

Supported XML subset:

* elements with attributes, text content, self-closing tags
* the five predefined entities plus decimal/hex character references
* comments ``<!-- ... -->``, processing instructions, XML declaration,
  DOCTYPE (all skipped), and CDATA sections
* configurable whitespace policy (whitespace-only text dropped by
  default, as mediated views care about structure rather than layout)

This is intentionally not a validating parser; it is a substrate with
predictable behaviour for the mediator stack above it.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from .errors import XMLParseError
from .tree import Tree

__all__ = ["parse_xml", "parse_fragment", "ATTRIBUTE_PREFIX"]

#: Children produced from XML attributes carry this label prefix.
ATTRIBUTE_PREFIX = "@"

_NAME_RE = re.compile(r"[A-Za-z_:][-A-Za-z0-9._:]*")
_ENTITY_RE = re.compile(r"&(#x?[0-9A-Fa-f]+|[A-Za-z]+);")

_NAMED_ENTITIES = {
    "lt": "<",
    "gt": ">",
    "amp": "&",
    "quot": '"',
    "apos": "'",
}


def _decode_entities(text: str, position: int) -> str:
    """Replace entity and character references in ``text``."""

    def repl(match: "re.Match[str]") -> str:
        body = match.group(1)
        if body.startswith("#x") or body.startswith("#X"):
            return chr(int(body[2:], 16))
        if body.startswith("#"):
            return chr(int(body[1:]))
        try:
            return _NAMED_ENTITIES[body]
        except KeyError:
            raise XMLParseError(
                "unknown entity &%s;" % body, position
            ) from None

    return _ENTITY_RE.sub(repl, text)


class _Scanner:
    """Cursor over the raw XML text with error-position tracking."""

    def __init__(self, text: str):
        self.text = text
        self.pos = 0
        self.length = len(text)

    def eof(self) -> bool:
        return self.pos >= self.length

    def peek(self) -> str:
        return self.text[self.pos] if self.pos < self.length else ""

    def startswith(self, token: str) -> bool:
        return self.text.startswith(token, self.pos)

    def expect(self, token: str) -> None:
        if not self.startswith(token):
            raise XMLParseError("expected %r" % token, self.pos)
        self.pos += len(token)

    def skip_whitespace(self) -> None:
        while self.pos < self.length and self.text[self.pos].isspace():
            self.pos += 1

    def read_until(self, token: str, what: str) -> str:
        end = self.text.find(token, self.pos)
        if end < 0:
            raise XMLParseError("unterminated %s" % what, self.pos)
        chunk = self.text[self.pos:end]
        self.pos = end + len(token)
        return chunk

    def read_name(self) -> str:
        match = _NAME_RE.match(self.text, self.pos)
        if not match:
            raise XMLParseError("expected a name", self.pos)
        self.pos = match.end()
        return match.group(0)


class _Parser:
    def __init__(self, text: str, keep_whitespace: bool,
                 keep_attributes: bool):
        self.scan = _Scanner(text)
        self.keep_whitespace = keep_whitespace
        self.keep_attributes = keep_attributes

    # -- misc markup ---------------------------------------------------
    def _skip_misc(self) -> None:
        """Skip comments, PIs, declarations and inter-markup whitespace."""
        scan = self.scan
        while True:
            scan.skip_whitespace()
            if scan.startswith("<!--"):
                scan.pos += 4
                scan.read_until("-->", "comment")
            elif scan.startswith("<?"):
                scan.pos += 2
                scan.read_until("?>", "processing instruction")
            elif scan.startswith("<!DOCTYPE"):
                self._skip_doctype()
            else:
                return

    def _skip_doctype(self) -> None:
        scan = self.scan
        depth = 0
        while not scan.eof():
            ch = scan.peek()
            scan.pos += 1
            if ch == "<":
                depth += 1
            elif ch == ">":
                depth -= 1
                if depth == 0:
                    return
        raise XMLParseError("unterminated DOCTYPE", scan.pos)

    # -- attributes ----------------------------------------------------
    def _parse_attributes(self) -> List[Tuple[str, str]]:
        scan = self.scan
        attrs: List[Tuple[str, str]] = []
        while True:
            scan.skip_whitespace()
            ch = scan.peek()
            if ch in (">", "/", "?", ""):
                return attrs
            name = scan.read_name()
            scan.skip_whitespace()
            scan.expect("=")
            scan.skip_whitespace()
            quote = scan.peek()
            if quote not in ("'", '"'):
                raise XMLParseError(
                    "attribute value must be quoted", scan.pos
                )
            scan.pos += 1
            value = scan.read_until(quote, "attribute value")
            attrs.append((name, _decode_entities(value, scan.pos)))

    # -- elements ------------------------------------------------------
    def parse_element(self) -> Tree:
        scan = self.scan
        scan.expect("<")
        tag = scan.read_name()
        attrs = self._parse_attributes()
        scan.skip_whitespace()

        children: List[Tree] = []
        if self.keep_attributes:
            children.extend(
                Tree(ATTRIBUTE_PREFIX + name, [Tree(value)] if value else [])
                for name, value in attrs
            )

        if scan.startswith("/>"):
            scan.pos += 2
            return Tree(tag, children)
        scan.expect(">")

        children.extend(self._parse_content(tag))
        return Tree(tag, children)

    def _parse_content(self, open_tag: str) -> List[Tree]:
        scan = self.scan
        children: List[Tree] = []
        text_parts: List[str] = []

        def flush_text() -> None:
            if not text_parts:
                return
            text = "".join(text_parts)
            text_parts.clear()
            if not self.keep_whitespace:
                if not text.strip():
                    return
                text = text.strip()
            children.append(Tree(text))

        while True:
            if scan.eof():
                raise XMLParseError(
                    "unexpected end of input inside <%s>" % open_tag,
                    scan.pos,
                )
            if scan.startswith("</"):
                flush_text()
                scan.pos += 2
                close_tag = scan.read_name()
                scan.skip_whitespace()
                scan.expect(">")
                if close_tag != open_tag:
                    raise XMLParseError(
                        "mismatched closing tag </%s> for <%s>"
                        % (close_tag, open_tag),
                        scan.pos,
                    )
                return children
            if scan.startswith("<!--"):
                scan.pos += 4
                scan.read_until("-->", "comment")
            elif scan.startswith("<![CDATA["):
                scan.pos += 9
                text_parts.append(scan.read_until("]]>", "CDATA section"))
            elif scan.startswith("<?"):
                scan.pos += 2
                scan.read_until("?>", "processing instruction")
            elif scan.peek() == "<":
                flush_text()
                children.append(self.parse_element())
            else:
                start = scan.pos
                end = scan.text.find("<", start)
                if end < 0:
                    end = scan.length
                raw = scan.text[start:end]
                scan.pos = end
                text_parts.append(_decode_entities(raw, start))

    def parse_document(self) -> Tree:
        self._skip_misc()
        if not self.scan.startswith("<"):
            raise XMLParseError("document has no root element", self.scan.pos)
        root = self.parse_element()
        self._skip_misc()
        if not self.scan.eof():
            raise XMLParseError(
                "trailing content after root element", self.scan.pos
            )
        return root


def parse_xml(text: str, keep_whitespace: bool = False,
              keep_attributes: bool = True) -> Tree:
    """Parse an XML document string into a :class:`Tree`.

    Parameters
    ----------
    text:
        The XML document (a single root element, optionally preceded by
        an XML declaration / DOCTYPE / comments).
    keep_whitespace:
        When False (default), whitespace-only text nodes are dropped and
        mixed-content text is stripped.
    keep_attributes:
        When True (default), each attribute ``name="v"`` becomes a
        leading child ``@name[v]`` of its element; when False attributes
        are discarded, matching the paper's formal model.
    """
    return _Parser(text, keep_whitespace, keep_attributes).parse_document()


def parse_fragment(text: str, keep_whitespace: bool = False,
                   keep_attributes: bool = True) -> List[Tree]:
    """Parse a sequence of sibling elements (an XML fragment).

    Used by the LXP machinery, whose ``fill`` answers are lists of
    trees rather than complete documents.
    """
    parser = _Parser(text, keep_whitespace, keep_attributes)
    trees: List[Tree] = []
    while True:
        parser._skip_misc()
        if parser.scan.eof():
            return trees
        if parser.scan.peek() == "<":
            trees.append(parser.parse_element())
        else:
            start = parser.scan.pos
            end = parser.scan.text.find("<", start)
            if end < 0:
                end = parser.scan.length
            raw = parser.scan.text[start:end]
            parser.scan.pos = end
            content = _decode_entities(raw, start)
            if keep_whitespace or content.strip():
                trees.append(Tree(content if keep_whitespace
                                  else content.strip()))
