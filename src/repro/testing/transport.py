"""Transport-layer fault injection for the session server.

The :mod:`repro.testing.faults` toolkit misbehaves at the LXP/
channel/document seams; this module misbehaves *below* them, on the
raw TCP stream, exercising exactly the failure modes the daemon's
hardening claims to contain:

* garbage bytes where a frame should be (:func:`send_garbage`);
* a frame that announces more payload than it delivers, then a
  disconnect (:func:`send_truncated_frame`) -- the classic mid-frame
  crash;
* a slow-loris that dribbles half a header and then goes silent
  (:func:`slow_loris`), which must fall to the idle timeout;
* a stalled reader (:class:`StalledReader`) that requests a large
  reply and never drains it, which must fall to the send timeout;
* scripted well-behaved sessions (:func:`scripted_session`) whose
  raw reply bytes can be compared byte-for-byte across runs -- the
  golden-trace proof that a misbehaving neighbour changed *nothing*
  for the survivors.

Everything here is deterministic and sleep-free: the only waiting is
on socket operations bounded by explicit timeouts (the tests keep
them tiny).
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "open_raw", "send_frame_bytes", "frame_bytes", "recv_reply_bytes",
    "send_garbage", "send_truncated_frame", "slow_loris",
    "abrupt_disconnect", "StalledReader", "scripted_session",
]

_HEADER = struct.Struct(">I")


def open_raw(host: str, port: int,
             timeout_ms: float = 2000.0) -> socket.socket:
    """A raw client socket with an explicit timeout (nothing in the
    fault kit may hang a test run)."""
    return socket.create_connection((host, port),
                                    timeout=timeout_ms / 1000.0)


def frame_bytes(payload: Dict[str, Any]) -> bytes:
    """A well-formed wire frame for ``payload``."""
    body = json.dumps(payload, separators=(",", ":")).encode("ascii")
    return _HEADER.pack(len(body)) + body


def send_frame_bytes(sock: socket.socket,
                     payload: Dict[str, Any]) -> None:
    sock.sendall(frame_bytes(payload))


def recv_reply_bytes(sock: socket.socket) -> bytes:
    """One whole reply frame as raw bytes (b"" on EOF/timeout) --
    the unit of golden-trace comparison."""
    try:
        header = _recv_exact(sock, _HEADER.size)
        if len(header) < _HEADER.size:
            return b""
        (length,) = _HEADER.unpack(header)
        body = _recv_exact(sock, length)
        if len(body) < length:
            return b""
        return header + body
    except (socket.timeout, OSError):
        return b""


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    chunks: List[bytes] = []
    remaining = count
    while remaining > 0:
        chunk = sock.recv(remaining)
        if not chunk:
            break
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _decode(raw: bytes) -> Optional[Dict[str, Any]]:
    if len(raw) <= _HEADER.size:
        return None
    try:
        payload = json.loads(raw[_HEADER.size:].decode("utf-8"))
    except ValueError:
        return None
    return payload if isinstance(payload, dict) else None


# ----------------------------------------------------------------------
# the misbehaving clients
# ----------------------------------------------------------------------

def send_garbage(host: str, port: int,
                 data: bytes = b"\x00\x00\x00\x04not-json",
                 timeout_ms: float = 2000.0
                 ) -> Optional[Dict[str, Any]]:
    """Send raw non-protocol bytes; return the server's typed error
    reply (``mix:protocol``), or None if it closed without one."""
    sock = open_raw(host, port, timeout_ms)
    try:
        sock.sendall(data)
        return _decode(recv_reply_bytes(sock))
    finally:
        sock.close()


def send_truncated_frame(host: str, port: int,
                         declared: int = 512,
                         delivered: bytes = b'{"op":',
                         timeout_ms: float = 2000.0) -> None:
    """Announce ``declared`` payload bytes, deliver a prefix, and
    disconnect mid-frame.  The server must classify this as a
    truncation and kill only the offending session."""
    sock = open_raw(host, port, timeout_ms)
    try:
        sock.sendall(_HEADER.pack(declared) + delivered)
    finally:
        sock.close()


def slow_loris(host: str, port: int,
               timeout_ms: float = 5000.0) -> Optional[Dict[str, Any]]:
    """Dribble half a header, then go silent and wait for the
    server's verdict.  Returns the typed ``mix:idle`` reply the
    server sends before killing the connection (or None if it just
    closed)."""
    sock = open_raw(host, port, timeout_ms)
    try:
        sock.sendall(b"\x00\x00")  # half a length prefix, then nothing
        return _decode(recv_reply_bytes(sock))
    finally:
        sock.close()


def abrupt_disconnect(host: str, port: int, query: str,
                      timeout_ms: float = 2000.0) -> str:
    """Open a real session, then vanish mid-frame (a client crash).

    Returns the session id the server had assigned, so a test can
    assert the kill was charged to exactly this session.
    """
    sock = open_raw(host, port, timeout_ms)
    try:
        send_frame_bytes(sock, {"op": "open", "query": query})
        reply = _decode(recv_reply_bytes(sock))
        session_id = str(reply.get("session")) if reply else ""
        # Half a fill frame, then a hard close.
        sock.sendall(_HEADER.pack(64) + b'{"op":"fill"')
        # RST instead of FIN: the rudest possible exit.
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_LINGER,
                        struct.pack("ii", 1, 0))
        return session_id
    finally:
        sock.close()


class StalledReader:
    """A client that asks for data and never reads it.

    The receive buffer is clamped tiny before connecting, so a large
    reply fills the server's send buffer and stalls its ``sendall``
    -- the backpressure case the send timeout exists for.  Use as a
    context manager; :meth:`request_and_stall` fires the fill and
    returns without reading.
    """

    def __init__(self, host: str, port: int,
                 timeout_ms: float = 5000.0) -> None:
        self.sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self.sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 1024)
        self.sock.settimeout(timeout_ms / 1000.0)
        self.sock.connect((host, port))

    def open(self, query: str, chunk_size: Optional[int] = None
             ) -> Optional[Dict[str, Any]]:
        frame: Dict[str, Any] = {"op": "open", "query": query}
        if chunk_size is not None:
            frame["chunk_size"] = chunk_size
        send_frame_bytes(self.sock, frame)
        return _decode(recv_reply_bytes(self.sock))

    def request_and_stall(self, hole: int) -> None:
        """Fire a fill and stop reading: the reply has nowhere to
        go once the kernel buffers fill."""
        send_frame_bytes(self.sock, {"op": "fill", "hole": hole})

    def __enter__(self) -> "StalledReader":
        return self

    def __exit__(self, *exc: object) -> None:
        try:
            self.sock.close()
        except OSError:
            pass


# ----------------------------------------------------------------------
# the well-behaved control
# ----------------------------------------------------------------------

def scripted_session(host: str, port: int, query: str,
                     fills: int = 3,
                     timeout_ms: float = 5000.0
                     ) -> List[bytes]:
    """One deterministic session: open, fill the root, then fill the
    first ``fills - 1`` holes each reply exposes, then close.

    Returns the raw bytes of every reply frame, in order -- two runs
    of the same script against the same view must be byte-identical,
    whatever any *other* session is doing to the server.
    """
    replies: List[bytes] = []
    sock = open_raw(host, port, timeout_ms)
    try:
        send_frame_bytes(sock, {"op": "open", "query": query})
        raw = recv_reply_bytes(sock)
        replies.append(raw)
        reply = _decode(raw)
        if reply is None or not reply.get("ok"):
            return replies
        frontier: List[int] = [reply["root"]]
        for _ in range(fills):
            if not frontier:
                break
            hole = frontier.pop(0)
            send_frame_bytes(sock, {"op": "fill", "hole": hole})
            raw = recv_reply_bytes(sock)
            replies.append(raw)
            fill_reply = _decode(raw)
            if fill_reply is None or not fill_reply.get("ok"):
                return replies
            frontier.extend(_holes_of(fill_reply.get("fragments", [])))
        send_frame_bytes(sock, {"op": "close"})
        replies.append(recv_reply_bytes(sock))
        return replies
    finally:
        sock.close()


def _holes_of(fragments: Any) -> List[int]:
    """Every hole id in a wire-shape fragment list, in order."""
    holes: List[int] = []
    stack: List[Any] = list(reversed(fragments
                                     if isinstance(fragments, list)
                                     else []))
    while stack:
        item = stack.pop()
        if not isinstance(item, list) or not item:
            continue
        if item[0] == "h" and len(item) == 2:
            holes.append(item[1])
        elif item[0] == "e" and len(item) == 3:
            stack.extend(reversed(item[2]))
    return holes
