"""Deterministic fault injection for resilience testing.

Everything here is test scaffolding that ships with the library (like
``RandomizedLXPServer``): a fake clock, scripted failure schedules,
flaky proxies for the two I/O seams (LXP fills and channel round
trips), and a versioned-snapshot source for cache-invalidation tests.
Nothing in this package ever sleeps for real.
"""

from .faults import (
    DeadLXPServer,
    FailureSchedule,
    FakeClock,
    FlakyChannel,
    FlakyDocument,
    FlakyLXPServer,
    VersionedLXPServer,
)

__all__ = [
    "FakeClock", "FailureSchedule",
    "FlakyLXPServer", "FlakyChannel", "FlakyDocument",
    "DeadLXPServer", "VersionedLXPServer",
]
