"""Scripted failure schedules, flaky seam proxies, and a fake clock.

The resilience layer (:mod:`repro.runtime.resilience`) is driven
entirely by two inputs: *when operations fail* and *what time it is*.
Both are injectable, so every retry/breaker/degradation behaviour can
be reproduced exactly, with zero real sleeps:

* :class:`FailureSchedule` scripts which calls fail and with what
  exception ("fail the first two fills, then succeed");
* :class:`FlakyLXPServer` / :class:`FlakyChannel` inject those
  failures at the wrapper seam and the remote-channel seam;
* :class:`FlakyDocument` does the same for per-navigation round trips
  (the RPC baseline);
* :class:`FakeClock` is a manual-advance time source -- ``sleep_ms``
  just moves the hands, so backoff schedules and breaker reset
  windows run instantaneously in tests.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Union

from ..errors import TransientSourceError
from ..runtime.resilience import Clock
from ..runtime.locks import make_lock

__all__ = [
    "FakeClock", "FailureSchedule",
    "FlakyLXPServer", "FlakyChannel", "FlakyDocument",
    "DeadLXPServer", "VersionedLXPServer",
]


class FakeClock(Clock):
    """A manually advanced clock; sleeping advances it instantly.

    ``sleeps`` records every requested sleep, so tests can assert the
    exact backoff schedule a retry policy produced.

    Concurrent sessions share one fake clock in the stress tests, so
    hand movement is lock-guarded.
    """

    def __init__(self, start_ms: float = 0.0):
        self._now = start_ms
        self.sleeps: List[float] = []
        self._lock = make_lock("testing.clock")

    def now_ms(self) -> float:
        with self._lock:
            return self._now

    def sleep_ms(self, ms: float) -> None:
        with self._lock:
            self.sleeps.append(ms)
            self._now += ms

    def advance(self, ms: float) -> None:
        """Move time forward without recording a sleep (models the
        world moving on between calls, e.g. a breaker reset window
        elapsing)."""
        with self._lock:
            self._now += ms


#: a schedule step: False/None = succeed, True = fail with the default
#: error, or an exception instance/factory to raise as-is
Step = Union[bool, None, BaseException, Callable[[], BaseException]]


class FailureSchedule:
    """A deterministic script of which calls fail.

    The schedule is consumed one step per intercepted call; after the
    script is exhausted every further call succeeds (or fails, with
    ``exhausted="fail"`` -- a permanently dead peer).

    Convenience constructors::

        FailureSchedule.first(2)       # fail call 1 and 2, then heal
        FailureSchedule.always()       # permanently dead
        FailureSchedule.never()        # healthy control
        FailureSchedule([True, False, True])   # fail 1st and 3rd
    """

    def __init__(self, steps=(),
                 error: Callable[[], BaseException] = None,
                 exhausted: str = "succeed"):
        if exhausted not in ("succeed", "fail"):
            raise ValueError("exhausted must be 'succeed' or 'fail'")
        self.steps = list(steps)
        self.error = (error if error is not None
                      else (lambda: TransientSourceError(
                          "injected transient fault")))
        self.exhausted = exhausted
        #: how many calls the schedule has intercepted so far
        self.calls = 0
        #: how many failures it has injected
        self.failures = 0
        #: one schedule may be consumed by several concurrent
        #: sessions; step consumption must be atomic so exactly the
        #: scripted number of failures is injected overall
        self._lock = make_lock("testing.schedule")

    @classmethod
    def first(cls, n: int, error=None) -> "FailureSchedule":
        """Fail the first ``n`` calls, then succeed forever."""
        return cls([True] * n, error=error)

    @classmethod
    def always(cls, error=None) -> "FailureSchedule":
        """Every call fails: a permanently dead peer."""
        return cls([], error=error, exhausted="fail")

    @classmethod
    def never(cls) -> "FailureSchedule":
        """Every call succeeds (healthy control)."""
        return cls([])

    def next_failure(self) -> Optional[BaseException]:
        """The exception to raise for this call, or None to succeed."""
        with self._lock:
            index = self.calls
            self.calls += 1
            if index < len(self.steps):
                step = self.steps[index]
            else:
                step = self.exhausted == "fail"
            if step is False or step is None:
                return None
            self.failures += 1
        if step is True:
            return self.error()
        if isinstance(step, BaseException):
            return step
        return step()


class FlakyLXPServer:
    """An LXP server whose ``fill`` fails per a scripted schedule.

    Wraps any real server; ``get_root`` always succeeds (it mints a
    hole without touching the source in every shipped wrapper), while
    each ``fill`` consumes one schedule step.  All other attributes
    (``stats``, ``chunk_size``, ...) proxy through.
    """

    def __init__(self, server, schedule: FailureSchedule,
                 name: str = "flaky"):
        self.server = server
        self.schedule = schedule
        self.name = name

    def get_root(self):
        return self.server.get_root()

    def fill(self, hole_id):
        err = self.schedule.next_failure()
        if err is not None:
            raise err
        return self.server.fill(hole_id)

    def fill_batch(self, hole_ids, speculate: int = 0):
        """One schedule step per *batch*: the whole round trip either
        arrives or fails, matching the channel's framing."""
        err = self.schedule.next_failure()
        if err is not None:
            raise err
        return self.server.fill_batch(hole_ids, speculate)

    def __getattr__(self, attr):
        return getattr(self.server, attr)


class FlakyChannel(FlakyLXPServer):
    """A remote fragment channel that drops round trips on schedule.

    Identical mechanics to :class:`FlakyLXPServer` -- the remote
    channel *is* an LXP server -- but named for the seam it models:
    wrap a :class:`~repro.client.remote.MessageChannel` in one of
    these, then wrap the result in a ``ResilientLXPServer`` (or let
    ``connect_remote`` do it from the engine config).
    """


def DeadLXPServer(server, name: str = "dead") -> FlakyLXPServer:
    """A permanently failing wrapper (every fill raises): the
    no-hang-guarantee fixture."""
    return FlakyLXPServer(server, FailureSchedule.always(), name=name)


class VersionedLXPServer:
    """A source whose content *churns*: a sequence of snapshot trees.

    Each snapshot is served by its own
    :class:`~repro.buffer.lxp.TreeLXPServer`; ``advance()`` moves to
    the next one and bumps :meth:`snapshot_version` -- the capability
    the fragment cache (:mod:`repro.runtime.fragcache`) negotiates to
    tag and invalidate cached fragments.

    ``get_root``/``fill``/``fill_batch`` each atomically pick the
    *current* snapshot's server, so concurrent sessions straddling an
    ``advance()`` see a clean epoch boundary (every individual fill is
    answered entirely from one snapshot).  One shared
    :class:`~repro.buffer.lxp.LXPStats` spans all snapshots, so tests
    can count total source traffic across the churn.
    """

    def __init__(self, snapshots, chunk_size=None):
        from ..buffer.lxp import LXPStats, TreeLXPServer
        snapshots = list(snapshots)
        if not snapshots:
            raise ValueError("need at least one snapshot tree")
        self.stats = LXPStats()
        self._servers = []
        for tree in snapshots:
            server = TreeLXPServer(tree, chunk_size=chunk_size)
            server.stats = self.stats
            self._servers.append(server)
        self._version = 0
        self._lock = make_lock("testing.versioned")

    def snapshot_version(self) -> int:
        """The current snapshot epoch (0-based index)."""
        with self._lock:
            return self._version

    def advance(self) -> int:
        """Move to the next snapshot; returns the new version.

        Raises :class:`IndexError` past the last snapshot.
        """
        with self._lock:
            if self._version + 1 >= len(self._servers):
                raise IndexError("no snapshot beyond version %d"
                                 % self._version)
            self._version += 1
            return self._version

    def _current(self):
        with self._lock:
            return self._servers[self._version]

    def get_root(self):
        return self._current().get_root()

    def fill(self, hole_id):
        return self._current().fill(hole_id)

    def fill_batch(self, hole_ids, speculate: int = 0):
        return self._current().fill_batch(hole_ids, speculate)


class FlakyDocument:
    """A NavigableDocument whose navigations fail on schedule.

    Models a lossy per-command RPC transport: each ``down`` /
    ``right`` / ``fetch`` / ``select`` consumes one schedule step
    (``root()`` is free, as in :class:`~repro.client.remote.
    RPCDocument`).
    """

    def __init__(self, document, schedule: FailureSchedule):
        self.document = document
        self.schedule = schedule

    def _maybe_fail(self):
        err = self.schedule.next_failure()
        if err is not None:
            raise err

    def root(self):
        return self.document.root()

    def down(self, pointer):
        self._maybe_fail()
        return self.document.down(pointer)

    def right(self, pointer):
        self._maybe_fail()
        return self.document.right(pointer)

    def fetch(self, pointer):
        self._maybe_fail()
        return self.document.fetch(pointer)

    def select(self, pointer, predicate):
        self._maybe_fail()
        return self.document.select(pointer, predicate)

    def apply(self, command, pointer):
        from ..navigation.interface import NavigableDocument
        return NavigableDocument.apply(self, command, pointer)

    def __getattr__(self, attr):
        return getattr(self.document, attr)
