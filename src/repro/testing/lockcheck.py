"""Runtime lock sanitizer: observed lock-order graph + blocking checks.

Armed via ``REPRO_LOCK_SANITIZER=1`` (read by :mod:`repro.runtime.locks`
at import) or an in-process :func:`arm`, this module swaps the named
lock factory for instrumented locks.  Each acquisition records, per
thread, which named locks were already held; every (held -> acquired)
pair becomes an edge in a process-wide *observed order graph*.  Two
violations raise immediately:

* **cycle formation** (:class:`LockOrderError`): the new edge closes a
  cycle in the name graph -- a deadlock *potential*, reported even when
  this particular interleaving did not deadlock.  The check runs
  *before* blocking on the lock, so a true ABBA interleaving raises
  instead of hanging.
* **blocking call under a lock** (:class:`BlockingCallUnderLock`):
  ``time.sleep``, ``Future.result``, ``queue.Queue.get`` and socket
  send/recv/accept/connect are patched to raise when called while a
  named lock outside :data:`BLOCKING_HOLD_ALLOWED` is held -- the
  runtime twin of the static L011 rule.

The observed graph is the dynamic half of the agreement discipline: the
suite in ``tests/test_lock_order.py`` asserts every observed edge is
contained in the static graph predicted by ``tools/lint`` -- a missing
static edge is an analyzer soundness failure.  Set
``REPRO_LOCK_SANITIZER_DUMP=<path>`` to append observed edges as JSONL
at interpreter exit (CI feeds this to ``python -m tools.lint
--assert-contains``).

This module is never imported on the default path; a subprocess test
proves ``repro.testing.lockcheck`` stays out of ``sys.modules``.
"""

from __future__ import annotations

import atexit
import json
import os
import queue
import socket
import threading
import time
import traceback
from concurrent import futures
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from ..runtime import locks as _locks

__all__ = [
    "LockOrderError",
    "BlockingCallUnderLock",
    "BLOCKING_HOLD_ALLOWED",
    "arm",
    "disarm",
    "armed",
    "reset",
    "observed_edges",
    "observed_graph",
    "held_names",
]


class LockOrderError(RuntimeError):
    """A lock acquisition closed a cycle in the observed order graph."""


class BlockingCallUnderLock(RuntimeError):
    """A blocking primitive ran while a non-allowlisted lock was held."""


#: Lock names that are *allowed* to be held across blocking calls.
#: This mirrors, name for name, the justified ``lint: allow=L011``
#: suppressions in the source tree (the static analyzer's table);
#: the agreement suite asserts the two stay in sync.
#:
#: * ``buffer.component`` -- demand fills run under the open-tree lock
#:   by design (concurrent subclasses splice through the same lock).
#: * ``client.channel`` -- the socket channel serializes request/reply
#:   round trips under its mutex; every wire op is deadline-bounded.
#: * ``server.session.write`` -- replies and drain notices serialize
#:   writes to one connection; sends carry an explicit timeout.
#: * ``pushdown.document`` -- one-shot native-request materialization
#:   is single-flighted under the document lock.
BLOCKING_HOLD_ALLOWED = frozenset({
    "buffer.component",
    "client.channel",
    "server.session.write",
    "pushdown.document",
})

_armed = False
_install_lock = threading.Lock()

# Observed order graph over lock *names*.  _graph_lock is a plain
# (uninstrumented) mutex: the sanitizer must not observe itself.
_graph_lock = threading.Lock()
_edges: Dict[str, Set[str]] = {}
_evidence: Dict[Tuple[str, str], str] = {}

_tls = threading.local()

_saved: Dict[str, Any] = {}


def _held_stack() -> List["_SanitizedLock"]:
    stack = getattr(_tls, "held", None)
    if stack is None:
        stack = []
        _tls.held = stack
    return stack


def held_names() -> Tuple[str, ...]:
    """Names of the instrumented locks the current thread holds."""
    return tuple(lock.name for lock in _held_stack())


def _call_site() -> str:
    # Nearest frame outside this module: the acquisition site.
    for frame in reversed(traceback.extract_stack(limit=8)[:-2]):
        if not frame.filename.endswith("lockcheck.py"):
            return "%s:%s in %s" % (
                os.path.basename(frame.filename), frame.lineno,
                frame.name)
    return "<unknown>"


def _find_path(src: str, dst: str) -> Optional[List[str]]:
    """DFS for a path src -> dst in the observed graph (lock held)."""
    stack = [(src, [src])]
    seen = {src}
    while stack:
        node, path = stack.pop()
        for succ in _edges.get(node, ()):
            if succ == dst:
                return path + [succ]
            if succ not in seen:
                seen.add(succ)
                stack.append((succ, path + [succ]))
    return None


def _record_acquisition(name: str) -> None:
    """Add (held -> name) edges; raise if one closes a cycle."""
    held = held_names()
    if not held:
        return
    site = _call_site()
    with _graph_lock:
        for prior in held:
            if prior == name:
                # Distinct instances sharing a name (stacked buffer
                # components in a mediator tree) have no static order;
                # instance-level self-deadlock on a plain lock is
                # caught by the owner check in acquire().
                continue
            back = _find_path(name, prior)
            if back is not None:
                first = _evidence.get((back[0], back[1]),
                                      "<unrecorded>")
                raise LockOrderError(
                    "acquiring %r while holding %r closes the cycle "
                    "%s -> %s (at %s; reverse edge first seen at %s)"
                    % (name, prior, " -> ".join(back), back[0], site,
                       first))
            succs = _edges.setdefault(prior, set())
            if name not in succs:
                succs.add(name)
                _evidence[(prior, name)] = site


class _SanitizedLock:
    """Instrumented stand-in for a named Lock/RLock.

    Slower than the plain locks (a Python frame per acquire) -- which
    is exactly why the default factory never hands these out.
    """

    __slots__ = ("name", "reentrant", "_inner", "_owner", "_depth")

    def __init__(self, name: str, reentrant: bool) -> None:
        self.name = name
        self.reentrant = reentrant
        self._inner = threading.Lock()
        self._owner: Optional[int] = None
        self._depth = 0

    def acquire(self, blocking: bool = True,
                timeout: float = -1) -> bool:
        me = threading.get_ident()
        if self._owner == me:
            if not self.reentrant:
                raise LockOrderError(
                    "non-reentrant lock %r re-acquired by its owning "
                    "thread (at %s): guaranteed self-deadlock"
                    % (self.name, _call_site()))
            self._depth += 1
            return True
        if _armed:
            # Order check happens *before* blocking: a true ABBA
            # interleaving raises here rather than deadlocking.
            _record_acquisition(self.name)
        if timeout == -1:
            ok = self._inner.acquire(blocking)
        else:
            ok = self._inner.acquire(blocking, timeout)
        if ok:
            self._owner = me
            self._depth = 1
            _held_stack().append(self)
        return ok

    def release(self) -> None:
        me = threading.get_ident()
        if self._owner != me:
            raise RuntimeError(
                "lock %r released by thread %s which does not hold it"
                % (self.name, me))
        if self._depth > 1:
            self._depth -= 1
            return
        self._depth = 0
        self._owner = None
        stack = _held_stack()
        for index in range(len(stack) - 1, -1, -1):
            if stack[index] is self:
                del stack[index]
                break
        self._inner.release()

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self) -> "_SanitizedLock":
        self.acquire()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.release()

    def __repr__(self) -> str:
        return "<_SanitizedLock %s reentrant=%s held_by=%s>" % (
            self.name, self.reentrant, self._owner)


def _make_instrumented(name: str, reentrant: bool) -> _SanitizedLock:
    return _SanitizedLock(name, reentrant)


def _check_blocking(op: str) -> None:
    if not _armed:
        return
    held = held_names()
    offending = [n for n in held if n not in BLOCKING_HOLD_ALLOWED]
    if offending:
        raise BlockingCallUnderLock(
            "blocking call %s while holding lock(s) %s (at %s); "
            "either release first or add a justified allowance"
            % (op, ", ".join(sorted(offending)), _call_site()))


def _wrap(op: str, original: Callable[..., Any]) -> Callable[..., Any]:
    def guarded(*args: Any, **kwargs: Any) -> Any:
        _check_blocking(op)
        return original(*args, **kwargs)

    guarded.__name__ = getattr(original, "__name__", op)
    return guarded


def _patch_blocking() -> None:
    _saved["time.sleep"] = time.sleep
    time.sleep = _wrap("time.sleep", time.sleep)  # type: ignore[assignment]
    _saved["Future.result"] = futures.Future.result
    futures.Future.result = _wrap(  # type: ignore[method-assign]
        "Future.result", futures.Future.result)
    _saved["Queue.get"] = queue.Queue.get
    queue.Queue.get = _wrap(  # type: ignore[method-assign]
        "Queue.get", queue.Queue.get)
    for method in ("accept", "connect", "recv", "recv_into", "send",
                   "sendall"):
        key = "socket.%s" % method
        _saved[key] = getattr(socket.socket, method)
        setattr(socket.socket, method, _wrap(key, _saved[key]))


def _unpatch_blocking() -> None:
    if not _saved:
        return
    time.sleep = _saved.pop("time.sleep")  # type: ignore[assignment]
    futures.Future.result = _saved.pop(  # type: ignore[method-assign]
        "Future.result")
    queue.Queue.get = _saved.pop(  # type: ignore[method-assign]
        "Queue.get")
    for method in ("accept", "connect", "recv", "recv_into", "send",
                   "sendall"):
        setattr(socket.socket, method, _saved.pop("socket.%s" % method))


def _dump_at_exit(path: str) -> None:
    try:
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(
                {"edges": sorted(
                    [a, b] for a, b in observed_edges())}) + "\n")
    except OSError:  # pragma: no cover - dump is best-effort
        pass


def arm() -> None:
    """Install instrumented locks + blocking-call guards (idempotent).

    Locks created *before* arming stay plain; arm early (the env-var
    path arms at ``repro.runtime.locks`` import, i.e. before any lock
    in the tree exists).
    """
    global _armed
    with _install_lock:
        if _armed:
            return
        _patch_blocking()
        _locks.set_lock_factory(_make_instrumented)
        _armed = True
        dump = os.environ.get("REPRO_LOCK_SANITIZER_DUMP")
        if dump:
            atexit.register(_dump_at_exit, dump)


def disarm() -> None:
    """Restore the plain factory and blocking primitives (idempotent).

    Instrumented locks already handed out keep working but stop
    recording; the observed graph survives until :func:`reset`.
    """
    global _armed
    with _install_lock:
        if not _armed:
            return
        _locks.set_lock_factory(None)
        _unpatch_blocking()
        _armed = False


def armed() -> bool:
    return _armed


def reset() -> None:
    """Clear the observed order graph (keep armed state)."""
    with _graph_lock:
        _edges.clear()
        _evidence.clear()


def observed_edges() -> Set[Tuple[str, str]]:
    """Snapshot of observed (held, acquired) name pairs."""
    with _graph_lock:
        return {(a, b) for a, succs in _edges.items() for b in succs}


def observed_graph() -> Dict[str, Any]:
    """JSON-shaped snapshot: sorted edges plus first-seen evidence."""
    with _graph_lock:
        return {
            "edges": sorted(
                [a, b] for a, succs in _edges.items() for b in succs),
            "evidence": {
                "%s->%s" % pair: site
                for pair, site in sorted(_evidence.items())},
        }
