"""Workload generators for the experiments and examples.

Deterministic (seeded) generators for the paper's two motivating
domains:

* the homes/schools integration of the running example (Figure 3), at
  any scale;
* the ``allbooks`` bookseller integration of the introduction: two
  overlapping catalogs (think amazon vs barnesandnoble) with titles,
  authors, prices and availability that differ per store.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from ..xtree.tree import Tree, elem

__all__ = [
    "homes_and_schools",
    "book_catalog",
    "two_bookstores",
    "allbooks_plan",
    "HOMES_SCHOOLS_QUERY",
    "ALLBOOKS_VIEW_NAME",
    "CHEAP_DB_BOOKS_QUERY",
]

#: The conventional name the allbooks view is registered under.
ALLBOOKS_VIEW_NAME = "allbooks"

_STREETS = ["Shore Dr", "Hill Rd", "Bay Ct", "Mesa Blvd", "Cove Ln",
             "Canyon Way", "Palm Ave", "Summit St"]
_DIRECTORS = ["Smith", "Bar", "Hart", "Lee", "Nguyen", "Ortiz",
              "Klein", "Woods"]

_TITLE_WORDS = ["Database", "Systems", "Views", "Mediation", "XML",
                "Queries", "Navigation", "Lazy", "Virtual", "Web",
                "Semistructured", "Integration"]
_AUTHORS = ["Abiteboul", "Widom", "Ullman", "Papakonstantinou",
            "Ludaescher", "Velikhov", "Garcia-Molina", "Vianu"]


def homes_and_schools(n_homes: int, schools_per_zip: int = 2,
                      zips: Optional[int] = None,
                      seed: int = 7) -> Dict[str, Tree]:
    """Scaled homes/schools sources (Figure 3's data shape).

    ``zips`` controls join selectivity: the number of distinct zip
    codes homes are spread over (default: one per home).
    """
    rng = random.Random(seed)
    zips = zips or n_homes
    zip_codes = [str(91000 + i) for i in range(zips)]
    homes = []
    for i in range(n_homes):
        homes.append(elem(
            "home",
            elem("addr", "%d %s" % (i + 1, rng.choice(_STREETS))),
            elem("zip", zip_codes[i % zips]),
        ))
    schools = []
    for code in zip_codes:
        for j in range(schools_per_zip):
            schools.append(elem(
                "school",
                elem("dir", rng.choice(_DIRECTORS)),
                elem("zip", code),
            ))
    return {
        "homesSrc": Tree("homesSrc", [Tree("homes", homes)]),
        "schoolsSrc": Tree("schoolsSrc", [Tree("schools", schools)]),
    }


#: The Figure 3 query, verbatim.
HOMES_SCHOOLS_QUERY = """
CONSTRUCT <answer>
            <med_home> $H $S {$S} </med_home> {$H}
          </answer> {}
WHERE homesSrc homes.home $H AND $H zip._ $V1
  AND schoolsSrc schools.school $S AND $S zip._ $V2
  AND $V1 = $V2
"""


def book_catalog(store: str, n_books: int, seed: int,
                 price_low: int = 8, price_high: int = 90) -> List[Tree]:
    """A bookseller catalog: ``book[title, author, price, isbn]``.

    Books with the same index across stores share title/author/isbn
    (the overlap the allbooks view integrates) but differ in price.
    """
    rng = random.Random(seed)
    # A process-stable store hash (builtin hash() is randomized).
    store_code = sum(ord(c) for c in store)
    price_rng = random.Random(seed * 31 + store_code % 1000)
    books = []
    for i in range(n_books):
        title = " ".join(rng.sample(_TITLE_WORDS, 3)) + " %d" % i
        books.append(elem(
            "book",
            elem("title", title),
            elem("author", rng.choice(_AUTHORS)),
            elem("price", str(price_rng.randint(price_low, price_high))),
            elem("isbn", "978-%07d" % i),
        ))
    return books


def two_bookstores(n_books: int, overlap: float = 0.6,
                   seed: int = 11) -> Tuple[List[Tree], List[Tree]]:
    """Catalogs for two stores with a shared prefix of titles.

    ``overlap`` is the fraction of each catalog present in both stores
    (same isbn/title, independent prices).
    """
    shared = int(n_books * overlap)
    amazon = book_catalog("amazon", n_books, seed)
    bn_shared = book_catalog("bn", shared, seed)
    rng = random.Random(seed + 1)
    bn_only = []
    for i in range(n_books - shared):
        title = " ".join(rng.sample(_TITLE_WORDS, 3)) + " bn%d" % i
        bn_only.append(elem(
            "book",
            elem("title", title),
            elem("author", rng.choice(_AUTHORS)),
            elem("price", str(rng.randint(8, 90))),
            elem("isbn", "979-%07d" % i),
        ))
    return amazon, bn_shared + bn_only


def allbooks_plan(amazon_url: str = "amazonSrc",
                  bn_url: str = "bnSrc"):
    """The introduction's ``allbooks`` view as an algebra plan: the
    union of both stores' books under one root.

    (XMAS's construction fragment has no union syntax, so the view is
    defined directly in the algebra -- views registered with the
    mediator may be plans as well as queries.)
    """
    from ..algebra.operators import (
        CreateElement,
        GetDescendants,
        GroupBy,
        Project,
        Source,
        TupleDestroy,
        Union,
    )
    left = Project(
        GetDescendants(Source(amazon_url, "R1"), "R1", "_*.book", "B"),
        ["B"])
    right = Project(
        GetDescendants(Source(bn_url, "R2"), "R2", "_*.book", "B"),
        ["B"])
    both = Union(left, right)
    grouped = GroupBy(both, [], [("B", "Bs")])
    answer = CreateElement(grouped, "allbooks", "Bs", "A")
    return TupleDestroy(answer, "A")

#: A query over the database-books domain used by examples: cheap
#: database books from the integrated view.
CHEAP_DB_BOOKS_QUERY = """
CONSTRUCT <hits> $B {$B} </hits> {}
WHERE allbooks book $B AND $B price._ $P AND $P < 30
"""
