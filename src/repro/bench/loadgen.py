"""A load generator for the mediator session server (BENCH E15).

Drives many concurrent sessions into a running
:class:`~repro.server.daemon.MediatorServer` with mixed navigation
patterns, and reports the numbers the experiment cares about:
sessions/sec, per-navigation round-trip latency (p50/p95/p99),
admission outcomes, and fairness (how much one saturating client can
hurt everyone else's tail).

Clients speak raw wire frames rather than the full buffered client
stack: the generator measures the *server*, so the client side stays
as thin and predictable as possible.

Patterns (assigned round-robin over the session index, so runs are
deterministic in composition):

``drill``   open, then follow the first hole of every reply -- the
            paper's drill-down browse.
``scan``    open, then breadth-first over the frontier -- the
            materialize-ish sweep.
``burst``   open, then one pipelined ``fill_batch`` over the whole
            frontier each round -- the PR 3 batching client.
``greedy``  a saturating client: like ``scan`` but with many more
            navigation rounds per session.
"""

from __future__ import annotations

import json
import socket
import struct
import threading
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple
from ..runtime.locks import make_lock

__all__ = ["SessionOutcome", "LoadReport", "run_session", "run_load",
           "percentile", "PATTERNS"]

_HEADER = struct.Struct(">I")

PATTERNS = ("drill", "scan", "burst", "greedy")


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-quantile (0..1) by nearest-rank on sorted values;
    0.0 for an empty series."""
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1,
                max(0, int(round(q * (len(ordered) - 1)))))
    return ordered[index]


class SessionOutcome:
    """What one generated session experienced."""

    def __init__(self, index: int, pattern: str) -> None:
        self.index = index
        self.pattern = pattern
        self.ok = False
        self.error = ""           # "" | "busy" | "draining" | code
        self.opened = False       # the open request was answered ok
        self.fills = 0
        self.requests = 0         # ok replies received (any op)
        self.latencies_ms: List[float] = []  # per navigation round trip

    def as_dict(self) -> Dict[str, Any]:
        return {"index": self.index, "pattern": self.pattern,
                "ok": self.ok, "error": self.error,
                "opened": self.opened,
                "fills": self.fills,
                "requests": self.requests,
                "mean_latency_ms": (
                    sum(self.latencies_ms) / len(self.latencies_ms)
                    if self.latencies_ms else 0.0)}


class LoadReport:
    """The aggregate of one load run."""

    def __init__(self, outcomes: List[SessionOutcome],
                 wall_s: float,
                 server_correlation: Optional[Dict[str, Any]] = None
                 ) -> None:
        self.outcomes = outcomes
        self.wall_s = wall_s
        self.latencies_ms = [latency for outcome in outcomes
                             for latency in outcome.latencies_ms]
        #: client-vs-server counter reconciliation (see
        #: :func:`run_load`); ``{"available": False}`` when the
        #: daemon's status endpoint could not be probed
        self.server_correlation = (server_correlation
                                   if server_correlation is not None
                                   else {"available": False})

    @property
    def completed(self) -> int:
        return sum(1 for o in self.outcomes if o.ok)

    @property
    def rejected_busy(self) -> int:
        return sum(1 for o in self.outcomes if o.error == "busy")

    @property
    def failed(self) -> int:
        return sum(1 for o in self.outcomes
                   if not o.ok and o.error != "busy")

    @property
    def sessions_per_sec(self) -> float:
        return self.completed / self.wall_s if self.wall_s > 0 else 0.0

    def latency_ms(self, q: float) -> float:
        return percentile(self.latencies_ms, q)

    def mean_latency_by_pattern(self) -> Dict[str, float]:
        """Per-pattern mean navigation latency -- the fairness view:
        compare the polite patterns' tail with and without a greedy
        neighbour."""
        sums: Dict[str, Tuple[float, int]] = {}
        for outcome in self.outcomes:
            if not outcome.latencies_ms:
                continue
            total, count = sums.get(outcome.pattern, (0.0, 0))
            sums[outcome.pattern] = (
                total + sum(outcome.latencies_ms),
                count + len(outcome.latencies_ms))
        return {pattern: total / count
                for pattern, (total, count) in sorted(sums.items())}

    def as_dict(self) -> Dict[str, Any]:
        return {
            "sessions": len(self.outcomes),
            "completed": self.completed,
            "rejected_busy": self.rejected_busy,
            "failed": self.failed,
            "wall_s": round(self.wall_s, 4),
            "sessions_per_sec": round(self.sessions_per_sec, 2),
            "navigations": len(self.latencies_ms),
            "latency_ms": {
                "p50": round(self.latency_ms(0.50), 3),
                "p95": round(self.latency_ms(0.95), 3),
                "p99": round(self.latency_ms(0.99), 3),
            },
            "mean_latency_by_pattern": {
                pattern: round(value, 3)
                for pattern, value in
                self.mean_latency_by_pattern().items()},
            "server_correlation": self.server_correlation,
        }


# ----------------------------------------------------------------------
# one session
# ----------------------------------------------------------------------

def _send(sock: socket.socket, payload: Dict[str, Any]) -> None:
    body = json.dumps(payload, separators=(",", ":")).encode("ascii")
    sock.sendall(_HEADER.pack(len(body)) + body)


def _recv(sock: socket.socket) -> Optional[Dict[str, Any]]:
    header = b""
    while len(header) < _HEADER.size:
        chunk = sock.recv(_HEADER.size - len(header))
        if not chunk:
            return None
        header += chunk
    (length,) = _HEADER.unpack(header)
    body = b""
    while len(body) < length:
        chunk = sock.recv(length - len(body))
        if not chunk:
            return None
        body += chunk
    payload = json.loads(body.decode("utf-8"))
    return payload if isinstance(payload, dict) else None


def _holes_of(fragments: Any) -> List[int]:
    holes: List[int] = []
    stack: List[Any] = list(reversed(fragments
                                     if isinstance(fragments, list)
                                     else []))
    while stack:
        item = stack.pop()
        if not isinstance(item, list) or not item:
            continue
        if item[0] == "h" and len(item) == 2:
            holes.append(item[1])
        elif item[0] == "e" and len(item) == 3:
            stack.extend(reversed(item[2]))
    return holes


def run_session(host: str, port: int, query: str, outcome:
                SessionOutcome, rounds: int,
                timeout_ms: float) -> SessionOutcome:
    """Drive one session to completion, recording per-navigation
    round-trip latencies into ``outcome``."""
    pattern = outcome.pattern
    if pattern == "greedy":
        rounds = rounds * 8
    try:
        sock = socket.create_connection(
            (host, port), timeout=timeout_ms / 1000.0)
    except OSError:
        outcome.error = "connect"
        return outcome
    try:
        _send(sock, {"op": "open", "query": query})
        reply = _recv(sock)
        if reply is None:
            outcome.error = "closed"
            return outcome
        if not reply.get("ok"):
            error = str(reply.get("error", "error"))
            outcome.error = ("busy" if error == "mix:busy" else
                             "draining" if error == "mix:draining"
                             else error)
            return outcome
        outcome.opened = True
        outcome.requests += 1
        frontier: List[int] = [reply["root"]]
        for _ in range(rounds):
            if not frontier:
                break
            if pattern == "burst" and len(frontier) > 1:
                request: Dict[str, Any] = {
                    "op": "fill_batch", "holes": list(frontier),
                    "speculate": 0}
                asked = len(frontier)
                frontier = []
            else:
                hole = (frontier.pop(0) if pattern != "drill"
                        else frontier.pop())
                request = {"op": "fill", "hole": hole}
                asked = 1
            started = time.perf_counter()
            _send(sock, request)
            reply = _recv(sock)
            elapsed_ms = (time.perf_counter() - started) * 1000.0
            if reply is None:
                outcome.error = "closed"
                return outcome
            if not reply.get("ok"):
                outcome.error = str(reply.get("error", "error"))
                return outcome
            outcome.latencies_ms.append(elapsed_ms)
            outcome.fills += asked
            outcome.requests += 1
            if "replies" in reply:
                for pair in reply["replies"]:
                    frontier.extend(_holes_of(pair[1]))
            else:
                frontier.extend(_holes_of(reply.get("fragments", [])))
        _send(sock, {"op": "close"})
        reply = _recv(sock)
        if reply is not None and reply.get("ok"):
            outcome.requests += 1
        outcome.ok = True
        return outcome
    except (socket.timeout, OSError) as err:
        outcome.error = type(err).__name__
        return outcome
    finally:
        sock.close()


# ----------------------------------------------------------------------
# the fleet
# ----------------------------------------------------------------------

def _fetch_status(host: str, port: int,
                  timeout_ms: float) -> Optional[Dict[str, Any]]:
    """One raw ``mix:status`` probe; None when the daemon cannot be
    reached or replies with anything but a status object."""
    try:
        sock = socket.create_connection((host, port),
                                        timeout=timeout_ms / 1000.0)
    except OSError:
        return None
    try:
        _send(sock, {"op": "status"})
        reply = _recv(sock)
    except (socket.timeout, OSError):
        return None
    finally:
        sock.close()
    if reply is None or not reply.get("ok"):
        return None
    status = reply.get("status")
    return status if isinstance(status, dict) else None


_CORRELATED = ("sessions_opened", "requests", "fills")


def _settled_status(host: str, port: int, timeout_ms: float,
                    settle_s: float = 2.0
                    ) -> Optional[Dict[str, Any]]:
    """A status snapshot taken once the daemon's counters go quiet.

    The daemon bumps its delivered-request counters *after* a reply
    hits the wire, so a probe fired the instant the last client
    socket closes can catch a handler mid-bump.  Re-probe until two
    consecutive snapshots agree (bounded by ``settle_s``)."""
    status = _fetch_status(host, port, timeout_ms)
    if status is None:
        return None
    deadline = time.monotonic() + settle_s
    while time.monotonic() < deadline:
        # The generator measures a live daemon on the wall clock; a
        # real (bounded) sleep between probes is the point here.
        time.sleep(0.05)  # lint: allow=X101
        again = _fetch_status(host, port, timeout_ms)
        if again is None:
            return status
        if again.get("server") == status.get("server"):
            return again
        status = again
    return status


def _correlate(before: Optional[Dict[str, Any]],
               after: Optional[Dict[str, Any]],
               outcomes: List[SessionOutcome]) -> Dict[str, Any]:
    """Reconcile the fleet's client-observed counters against the
    daemon's lifetime counter deltas over the run.

    Mismatches are *reported*, never silently dropped: a reply the
    server delivered but the client timed out on is exactly the kind
    of disagreement this section exists to surface.
    """
    client = {
        "sessions_opened": sum(1 for o in outcomes if o.opened),
        "requests": sum(o.requests for o in outcomes),
        "fills": sum(o.fills for o in outcomes),
    }
    if before is None or after is None:
        return {"available": False, "client": client}
    before_server = before.get("server") or {}
    after_server = after.get("server") or {}
    delta = {}
    for key in _CORRELATED:
        try:
            delta[key] = int(after_server.get(key, 0)) \
                - int(before_server.get(key, 0))
        except (TypeError, ValueError):
            delta[key] = None
    mismatches = [
        "%s: client %s != server %s"
        % (key, client[key], delta[key])
        for key in _CORRELATED if delta[key] != client[key]]
    return {"available": True, "client": client,
            "server_delta": delta, "mismatches": mismatches,
            "reconciled": not mismatches}


def run_load(host: str, port: int, query: str,
             sessions: int = 100, concurrency: int = 16,
             rounds: int = 4, timeout_ms: float = 10000.0,
             patterns: Sequence[str] = PATTERNS,
             correlate: bool = True) -> LoadReport:
    """Drive ``sessions`` sessions with ``concurrency`` worker
    threads; patterns rotate round-robin over the session index.

    With ``correlate`` (the default) the daemon's ``mix:status``
    counters are snapshotted before and after the fleet and the
    deltas reconciled against what the clients observed
    (``report.server_correlation``)."""
    outcomes = [SessionOutcome(i, patterns[i % len(patterns)])
                for i in range(sessions)]
    cursor = {"next": 0}
    cursor_lock = make_lock("loadgen.cursor")

    def worker() -> None:
        while True:
            with cursor_lock:
                index = cursor["next"]
                if index >= len(outcomes):
                    return
                cursor["next"] = index + 1
            run_session(host, port, query, outcomes[index],
                        rounds, timeout_ms)

    before = (_fetch_status(host, port, timeout_ms)
              if correlate else None)
    started = time.perf_counter()
    threads = [threading.Thread(target=worker, name="loadgen-%d" % i,
                                daemon=True)
               for i in range(max(1, concurrency))]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall_s = time.perf_counter() - started
    correlation: Optional[Dict[str, Any]] = None
    if correlate:
        after = _settled_status(host, port, timeout_ms)
        correlation = _correlate(before, after, outcomes)
    return LoadReport(outcomes, wall_s, correlation)
