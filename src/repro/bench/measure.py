"""Measurement utilities shared by the benchmark harness and examples:
navigation workloads, stat rows, and a fixed-width table printer (the
shape the experiment scripts print their series in)."""

from __future__ import annotations

import re
import time
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..client.element import XMLElement
from ..navigation.interface import NavigableDocument, materialize

__all__ = ["browse_first_k", "depth_first_prefix", "format_table",
           "parse_table", "bench_record", "Timer"]


def browse_first_k(root: XMLElement, k: int,
                   per_result: Optional[Callable[[XMLElement], None]]
                   = None) -> int:
    """The paper's canonical interaction: look at the first ``k``
    results of a broad query, then stop.

    Visits the first k children of the answer root, forcing each one's
    subtree (as a user rendering a result row would); returns how many
    results were actually available.
    """
    seen = 0
    child = root.first_child()
    while child is not None and seen < k:
        if per_result is not None:
            per_result(child)
        else:
            child.to_tree()  # force the result's content
        seen += 1
        child = child.right()
    return seen


def depth_first_prefix(document: NavigableDocument,
                       max_nodes: int) -> int:
    """Navigate the first ``max_nodes`` nodes of a document in
    document order (d/r/f), returning the number visited."""
    visited = 0
    stack = [document.root()]
    while stack and visited < max_nodes:
        pointer = stack.pop()
        document.fetch(pointer)
        visited += 1
        sibling = document.right(pointer)
        if sibling is not None:
            stack.append(sibling)
        child = document.down(pointer)
        if child is not None:
            stack.append(child)
    return visited


class Timer:
    """A context-managed wall-clock timer (milliseconds)."""

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        self.ms = 0.0
        return self

    def __exit__(self, *exc) -> None:
        self.ms = (time.perf_counter() - self._start) * 1000.0


def format_table(headers: Sequence[str],
                 rows: Iterable[Sequence[object]]) -> str:
    """Render rows as a fixed-width text table."""
    rows = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    rule = "  ".join("-" * w for w in widths)
    body = [
        "  ".join(cell.rjust(widths[i]) if _numeric(cell)
                  else cell.ljust(widths[i])
                  for i, cell in enumerate(row))
        for row in rows
    ]
    return "\n".join([line, rule] + body)


def parse_table(text: str) -> Tuple[List[str], List[dict]]:
    """The inverse of :func:`format_table`: headers plus one dict per
    row, with numeric-looking cells converted back to numbers.

    Columns are recognized by the two-space gutter ``format_table``
    emits, so round-tripping a rendered table is lossless for the
    tables the experiment harness writes.
    """
    lines = [line for line in text.splitlines() if line.strip()]
    if len(lines) < 2:
        return [], []
    headers = re.split(r"\s{2,}", lines[0].strip())
    rows: List[dict] = []
    for line in lines[2:]:  # lines[1] is the dashed rule
        cells = re.split(r"\s{2,}", line.strip())
        rows.append({header: _parse_cell(cell)
                     for header, cell in zip(headers, cells)})
    return headers, rows


def bench_record(name: str, table_text: str,
                 extra: Optional[dict] = None) -> dict:
    """A machine-readable record of one experiment: the parsed result
    table plus optional ``extra`` measurements (wall-clock timings,
    cache hit/miss/eviction counters).  The harness serializes this as
    ``BENCH_<name>.json`` next to the text table.
    """
    columns, rows = parse_table(table_text)
    record = {"experiment": name, "columns": columns, "rows": rows}
    if extra:
        record["extra"] = extra
    return record


def _parse_cell(cell: str):
    try:
        return int(cell)
    except ValueError:
        pass
    try:
        return float(cell)
    except ValueError:
        return cell


def _cell(value) -> str:
    if isinstance(value, float):
        return "%.2f" % value
    return str(value)


def _numeric(cell: str) -> bool:
    try:
        float(cell)
        return True
    except ValueError:
        return False
