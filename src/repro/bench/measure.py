"""Measurement utilities shared by the benchmark harness and examples:
navigation workloads, stat rows, and a fixed-width table printer (the
shape the experiment scripts print their series in)."""

from __future__ import annotations

import time
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from ..client.element import XMLElement
from ..navigation.interface import NavigableDocument, materialize

__all__ = ["browse_first_k", "depth_first_prefix", "format_table",
           "Timer"]


def browse_first_k(root: XMLElement, k: int,
                   per_result: Optional[Callable[[XMLElement], None]]
                   = None) -> int:
    """The paper's canonical interaction: look at the first ``k``
    results of a broad query, then stop.

    Visits the first k children of the answer root, forcing each one's
    subtree (as a user rendering a result row would); returns how many
    results were actually available.
    """
    seen = 0
    child = root.first_child()
    while child is not None and seen < k:
        if per_result is not None:
            per_result(child)
        else:
            child.to_tree()  # force the result's content
        seen += 1
        child = child.right()
    return seen


def depth_first_prefix(document: NavigableDocument,
                       max_nodes: int) -> int:
    """Navigate the first ``max_nodes`` nodes of a document in
    document order (d/r/f), returning the number visited."""
    visited = 0
    stack = [document.root()]
    while stack and visited < max_nodes:
        pointer = stack.pop()
        document.fetch(pointer)
        visited += 1
        sibling = document.right(pointer)
        if sibling is not None:
            stack.append(sibling)
        child = document.down(pointer)
        if child is not None:
            stack.append(child)
    return visited


class Timer:
    """A context-managed wall-clock timer (milliseconds)."""

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        self.ms = 0.0
        return self

    def __exit__(self, *exc) -> None:
        self.ms = (time.perf_counter() - self._start) * 1000.0


def format_table(headers: Sequence[str],
                 rows: Iterable[Sequence[object]]) -> str:
    """Render rows as a fixed-width text table."""
    rows = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    rule = "  ".join("-" * w for w in widths)
    body = [
        "  ".join(cell.rjust(widths[i]) if _numeric(cell)
                  else cell.ljust(widths[i])
                  for i, cell in enumerate(row))
        for row in rows
    ]
    return "\n".join([line, rule] + body)


def _cell(value) -> str:
    if isinstance(value, float):
        return "%.2f" % value
    return str(value)


def _numeric(cell: str) -> bool:
    try:
        float(cell)
        return True
    except ValueError:
        return False
