"""Workload generators and measurement utilities for the experiment
harness (benchmarks/) and the examples."""

from .measure import (
    Timer,
    bench_record,
    browse_first_k,
    depth_first_prefix,
    format_table,
    parse_table,
)
from .workloads import (
    ALLBOOKS_VIEW_NAME,
    CHEAP_DB_BOOKS_QUERY,
    HOMES_SCHOOLS_QUERY,
    allbooks_plan,
    book_catalog,
    homes_and_schools,
    two_bookstores,
)

__all__ = [
    "homes_and_schools", "book_catalog", "two_bookstores",
    "allbooks_plan", "HOMES_SCHOOLS_QUERY", "CHEAP_DB_BOOKS_QUERY",
    "ALLBOOKS_VIEW_NAME",
    "browse_first_k", "depth_first_prefix", "format_table",
    "parse_table", "bench_record", "Timer",
]
