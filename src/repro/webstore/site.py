"""Synthetic web sites: the stand-in for live HTML sources.

The paper's motivating sources (amazon.com, barnesandnoble.com) are
huge, paginated, and fetched page-at-a-time over a network.  This
module reproduces those *cost characteristics* without a network:

* a :class:`WebSite` maps URLs to page trees (our HTML abstraction is
  the same labeled ordered tree used everywhere else);
* a :class:`HttpSimulator` charges per-request latency and per-byte
  transfer cost in *virtual milliseconds*, and counts both, so the
  granularity experiments (Section 4) can report message counts, bytes
  moved and simulated wall-clock exactly.

Listing generators create paginated catalogs with ``next``-page links,
mirroring a bookseller's result pages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..xtree.serialize import to_xml
from ..xtree.tree import Tree, elem

__all__ = ["WebSite", "HttpSimulator", "FetchStats", "WebError",
           "make_catalog_site", "register_site", "open_site"]


from ..errors import PermanentSourceError


class WebError(PermanentSourceError):
    """Raised for unknown URLs or sites (a 404 is permanent: the same
    request will keep failing, so the resilience layer never retries
    it)."""


class WebSite:
    """A named collection of pages (URL -> page tree)."""

    def __init__(self, name: str):
        self.name = name
        self._pages: Dict[str, Tree] = {}

    def add_page(self, url: str, page: Tree) -> None:
        self._pages[url] = page

    def page(self, url: str) -> Tree:
        try:
            return self._pages[url]
        except KeyError:
            raise WebError("404: no page %r on site %r"
                           % (url, self.name)) from None

    @property
    def urls(self) -> List[str]:
        return list(self._pages)

    def __len__(self) -> int:
        return len(self._pages)


@dataclass
class FetchStats:
    """Accumulated cost of HTTP traffic, in virtual units."""

    requests: int = 0
    bytes_transferred: int = 0
    virtual_ms: float = 0.0

    def reset(self) -> None:
        self.requests = 0
        self.bytes_transferred = 0
        self.virtual_ms = 0.0


class HttpSimulator:
    """Charges latency + bandwidth for each page fetch.

    Parameters
    ----------
    site:
        The site to serve.
    latency_ms:
        Fixed per-request cost (connection setup, round trip).
    ms_per_kb:
        Transfer cost per kilobyte of serialized page.
    """

    def __init__(self, site: WebSite, latency_ms: float = 80.0,
                 ms_per_kb: float = 5.0):
        self.site = site
        self.latency_ms = latency_ms
        self.ms_per_kb = ms_per_kb
        self.stats = FetchStats()

    def fetch(self, url: str) -> Tree:
        """Fetch one page, charging its simulated cost."""
        page = self.site.page(url)
        size = len(to_xml(page))
        self.stats.requests += 1
        self.stats.bytes_transferred += size
        self.stats.virtual_ms += self.latency_ms \
            + self.ms_per_kb * (size / 1024.0)
        return page


def make_catalog_site(
        name: str,
        items: Sequence[Tree],
        page_size: int = 20,
        listing_label: str = "results") -> WebSite:
    """Build a paginated catalog site from a list of item trees.

    Page ``/page/0`` holds the first ``page_size`` items inside a
    ``<results>`` element; every page except the last carries a
    ``<next>`` leaf containing the URL of the following page -- the
    hook the web wrapper follows on demand.
    """
    if page_size <= 0:
        raise ValueError("page_size must be positive")
    site = WebSite(name)
    total_pages = max(1, (len(items) + page_size - 1) // page_size)
    for page_index in range(total_pages):
        start = page_index * page_size
        page_items = list(items[start:start + page_size])
        children: List[Tree] = list(page_items)
        if page_index + 1 < total_pages:
            children.append(elem("next", "/page/%d" % (page_index + 1)))
        site.add_page("/page/%d" % page_index,
                      Tree(listing_label, children))
    return site


#: URI registry ("web://sitename") mirroring the other substrates.
_REGISTRY: Dict[str, WebSite] = {}


def register_site(site: WebSite) -> str:
    """Register a site for URI-based lookup; returns its URI."""
    _REGISTRY[site.name] = site
    return "web://%s" % site.name


def open_site(uri: str) -> WebSite:
    """Resolve a previously registered ``web://`` URI."""
    if not uri.startswith("web://"):
        raise WebError("not a web URI: %r" % uri)
    name = uri[len("web://"):]
    try:
        return _REGISTRY[name]
    except KeyError:
        raise WebError("no registered site %r" % name) from None
