"""Synthetic web sources: paginated sites served through a cost-charging
HTTP simulator (the stand-in for the paper's live Web sources)."""

from .site import (
    FetchStats,
    HttpSimulator,
    WebError,
    WebSite,
    make_catalog_site,
    open_site,
    register_site,
)

__all__ = ["WebSite", "HttpSimulator", "FetchStats", "WebError",
           "make_catalog_site", "register_site", "open_site"]
