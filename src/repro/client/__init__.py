"""Thin client library (paper Section 5): XMLElement handles that make
virtual documents indistinguishable from in-memory DOM trees, plus the
remote-client fragment channel (the paper's Section 5 outlook)."""

from .bbq import BBQError, BBQSession
from .element import XMLElement, open_virtual_document
from .remote import (
    ChannelStats,
    MessageChannel,
    MeteredTransport,
    NavigableLXPServer,
    RPCDocument,
    connect_remote,
    fragment_wire_size,
)

__all__ = [
    "XMLElement", "open_virtual_document",
    "BBQSession", "BBQError",
    "NavigableLXPServer", "MessageChannel", "MeteredTransport",
    "ChannelStats", "RPCDocument", "connect_remote",
    "fragment_wire_size",
]
