"""The thin client library (paper Section 5).

"A thin client library between the mediator and the client application
makes the virtual document exported by the mediator indistinguishable
from a main memory resident document accessed via DOM."

:class:`XMLElement` hides the mediator's structured node-ids in a
private field and exposes the familiar object API: when the client
writes ``r = p.right()``, the library issues the corresponding
navigation against the mediator and wraps the returned node-id in a
fresh XMLElement.  Results of ``down``/``right``/``fetch`` are memoized
per element, so client code can hold references and revisit freely
without re-issuing navigations.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from ..navigation.interface import NavigableDocument
from ..xtree.tree import Tree

__all__ = ["XMLElement", "open_virtual_document"]

_UNRESOLVED = object()


class XMLElement:
    """A client-side handle to one element of a (virtual) document."""

    __slots__ = ("_document", "_node_id", "_tag", "_first", "_next")

    def __init__(self, document: NavigableDocument, node_id):
        self._document = document
        self._node_id = node_id  # the paper's private node_id field
        self._tag: Optional[str] = None
        self._first = _UNRESOLVED
        self._next = _UNRESOLVED

    # -- DOM-VXD surface ------------------------------------------------
    @property
    def tag(self) -> str:
        """The element's label (``f``), fetched on first access."""
        if self._tag is None:
            self._tag = self._document.fetch(self._node_id)
        return self._tag

    def first_child(self) -> Optional["XMLElement"]:
        """The first child (``d``), or None for leaves."""
        if self._first is _UNRESOLVED:
            child_id = self._document.down(self._node_id)
            self._first = (XMLElement(self._document, child_id)
                           if child_id is not None else None)
        return self._first

    def right(self) -> Optional["XMLElement"]:
        """The right sibling (``r``), or None."""
        if self._next is _UNRESOLVED:
            sibling_id = self._document.right(self._node_id)
            self._next = (XMLElement(self._document, sibling_id)
                          if sibling_id is not None else None)
        return self._next

    # -- conveniences built on the minimal command set -------------------
    def children(self) -> Iterator["XMLElement"]:
        """Iterate children left to right (lazy)."""
        child = self.first_child()
        while child is not None:
            yield child
            child = child.right()

    def child_list(self) -> List["XMLElement"]:
        return list(self.children())

    def find(self, tag: str) -> Optional["XMLElement"]:
        """First child with the given tag."""
        for child in self.children():
            if child.tag == tag:
                return child
        return None

    def find_all(self, tag: str) -> List["XMLElement"]:
        return [c for c in self.children() if c.tag == tag]

    @property
    def is_leaf(self) -> bool:
        return self.first_child() is None

    # -- degradation markers --------------------------------------------
    @property
    def is_error(self) -> bool:
        """Whether this element is a ``<mix:error>`` placeholder left
        by a degraded source (see :mod:`repro.runtime.resilience`)."""
        from ..runtime.resilience import is_error_label
        return is_error_label(self.tag)

    def error_info(self) -> Optional[dict]:
        """For a placeholder element: ``{"source": ..., "reason":
        ...}``; None for ordinary elements."""
        if not self.is_error:
            return None
        info = {}
        for child in self.children():
            info[child.tag] = child.text()
        return info

    def find_errors(self) -> List["XMLElement"]:
        """All ``<mix:error>`` placeholders in this subtree (forces
        it) -- the quick way to ask "was this answer degraded?"."""
        if self.is_error:
            return [self]
        found: List["XMLElement"] = []
        for child in self.children():
            found.extend(child.find_errors())
        return found

    def text(self) -> str:
        """Concatenated leaf text below this element (forces the
        subtree)."""
        if self.is_leaf:
            return self.tag
        parts: List[str] = []
        for child in self.children():
            parts.append(child.text())
        return "".join(parts)

    def to_tree(self) -> Tree:
        """Materialize this element into an in-memory Tree (forces the
        whole subtree -- exactly what lazy clients avoid)."""
        return Tree(self.tag, [c.to_tree() for c in self.children()])

    def __repr__(self) -> str:
        return "<XMLElement %s>" % self.tag


def open_virtual_document(document: NavigableDocument) -> XMLElement:
    """Wrap a navigable (virtual or materialized) document into the
    client API, returning the root element handle."""
    return XMLElement(document, document.root())
