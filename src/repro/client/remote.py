"""Remote clients: the mediator/client split of Section 5's outlook.

"in our current implementation the mediator and the client application
run in the same address space ... In the future we will allow the
client and the mediator to communicate over the network, however this
will require exchanging fragments of XML documents to avoid the
communication overhead." -- paper, Section 5.

This module realizes that plan with the machinery the paper already
provides: the *virtual answer document itself* is exported through LXP
(:class:`NavigableLXPServer` turns any NavigableDocument into an LXP
wrapper), shipped over a cost-charging :class:`MessageChannel`, and
reassembled client-side by the ordinary generic buffer component.  The
client's XMLElement API is unchanged -- the stack composes:

    XMLElement -> BufferComponent -> MessageChannel -> NavigableLXPServer
        -> VirtualDocument -> lazy mediators -> ... -> sources

The naive alternative -- every DOM-VXD command as its own round trip --
is modeled by :class:`RPCDocument` so experiment E10 can quantify the
fragment protocol's advantage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..buffer.holes import (
    FragElem,
    FragHole,
    Fragment,
    LXPProtocolError,
    fragment_wire_size,
)
from ..buffer.lxp import LXPServer, LXPStats, measure_fragment
from ..navigation.interface import NavigableDocument
from ..runtime.config import validate_granularity
from ..runtime.context import ExecutionContext
from ..runtime.resilience import Clock, resilient_server
from .element import XMLElement
from ..runtime.locks import make_lock

__all__ = ["NavigableLXPServer", "MessageChannel", "MeteredTransport",
           "ChannelStats", "RPCDocument", "connect_remote",
           "fragment_wire_size"]


class NavigableLXPServer(LXPServer):
    """Export any NavigableDocument through LXP.

    Hole identifiers embed the document's own (hashable) pointers, so
    the server is stateless beyond the document it serves:

    * ``("root",)`` -- the unexplored root element;
    * ``("kids", p)`` -- the children of pointer ``p``;
    * ``("at", p)`` -- the element at ``p`` and its right siblings.

    ``chunk_size`` bounds siblings per fill, ``depth`` bounds how many
    levels each shipped element carries -- the same granularity model
    as the source-side wrappers, now applied mediator->client.
    """

    def __init__(self, document: NavigableDocument,
                 chunk_size: Optional[int] = None,
                 depth: Optional[int] = None):
        self.document = document
        self.chunk_size, self.depth = validate_granularity(chunk_size,
                                                           depth)
        self.stats = LXPStats()

    def get_root(self) -> FragHole:
        return FragHole(("root",))

    def _ship(self, pointer, depth_left: int) -> FragElem:
        label = self.document.fetch(pointer)
        if depth_left <= 1:
            child = self.document.down(pointer)
            if child is None:
                return FragElem(label)
            return FragElem(label, (FragHole(("at", child)),))
        kids: List[Fragment] = []
        child = self.document.down(pointer)
        shipped = 0
        while child is not None and shipped < self.chunk_size:
            kids.append(self._ship(child, depth_left - 1))
            shipped += 1
            child = self.document.right(child)
        if child is not None:
            kids.append(FragHole(("at", child)))
        return FragElem(label, tuple(kids))

    def fill(self, hole_id) -> List[Fragment]:
        kind = hole_id[0]
        if kind == "root":
            reply: List[Fragment] = [
                self._ship(self.document.root(), self.depth)]
        elif kind == "kids":
            child = self.document.down(hole_id[1])
            reply = self._ship_siblings(child)
        elif kind == "at":
            reply = self._ship_siblings(hole_id[1])
        else:
            raise LXPProtocolError("unknown hole id %r" % (hole_id,))
        measure_fragment(self.stats, reply)
        return reply

    def _ship_siblings(self, pointer) -> List[Fragment]:
        reply: List[Fragment] = []
        shipped = 0
        while pointer is not None and shipped < self.chunk_size:
            reply.append(self._ship(pointer, self.depth))
            shipped += 1
            pointer = self.document.right(pointer)
        if pointer is not None:
            reply.append(FragHole(("at", pointer)))
        return reply


@dataclass
class ChannelStats:
    """Traffic accounting for one client connection.

    ``messages`` counts request/reply round trips; ``commands`` counts
    the navigation/fill commands those round trips carried.  Without
    batching the two are equal; a pipelined channel ships many
    commands per message, so ``messages <= commands`` always and the
    gap is exactly what batching saved.

    Carries its own :attr:`lock` (like
    :class:`~repro.buffer.lxp.LXPStats`): one channel is charged from
    the client thread, prefetch workers, and -- under the session
    server -- a per-connection handler thread, while reporters read
    concurrently through :meth:`snapshot`.
    """

    messages: int = 0          # request/reply round trips
    commands: int = 0          # commands carried by those round trips
    bytes_transferred: int = 0
    virtual_ms: float = 0.0

    def __post_init__(self) -> None:
        # Not a dataclass field: equality/repr stay value-based.
        self.lock = make_lock("channel.stats")

    def snapshot(self) -> dict:
        """A consistent point-in-time copy of the counters, taken
        under the lock -- what reporters (the execution context, the
        session server) read instead of racing live mutation."""
        with self.lock:
            return {
                "messages": self.messages,
                "commands": self.commands,
                "bytes_transferred": self.bytes_transferred,
                "virtual_ms": self.virtual_ms,
            }

    def reset(self) -> None:
        with self.lock:
            self.messages = 0
            self.commands = 0
            self.bytes_transferred = 0
            self.virtual_ms = 0.0


class MeteredTransport:
    """Shared cost-charging core of every simulated remote transport
    (:class:`MessageChannel`, :class:`RPCDocument`): one
    :class:`ChannelStats` object, one charging rule, one reset path.

    Charging is lock-guarded (through the stats object's own lock,
    so external reporters and the charger serialize on one lock):
    with a thread-backed prefetcher the channel is driven from worker
    threads and the client thread at once.
    """

    def __init__(self, latency_ms: float = 20.0,
                 ms_per_kb: float = 2.0,
                 tracer=None, metrics=None, name: str = ""):
        self.latency_ms = latency_ms
        self.ms_per_kb = ms_per_kb
        self.stats = ChannelStats()
        self.tracer = tracer
        #: optional MetricsRegistry + channel name: charges also feed
        #: the channel_* metric series (``name`` is assigned by the
        #: context when the channel registers)
        self.metrics = metrics
        self.name = name

    def _charge(self, size: int, commands: int = 1) -> None:
        with self.stats.lock:
            self.stats.messages += 1
            self.stats.commands += commands
            self.stats.bytes_transferred += size
            self.stats.virtual_ms += self.latency_ms \
                + self.ms_per_kb * (size / 1024.0)
        if self.tracer is not None and self.tracer.active:
            self.tracer.emit("channel", "round_trip", bytes=size,
                             commands=commands)
        metrics = self.metrics
        if metrics is not None and metrics.enabled:
            channel = self.name or "unnamed"
            metrics.counter("channel_round_trips_total").inc(
                channel=channel)
            metrics.counter("channel_commands_total").inc(
                commands, channel=channel)
            metrics.histogram("channel_message_bytes").observe(
                size, channel=channel)

    def reset_stats(self) -> None:
        """Zero the traffic counters (shared by every transport)."""
        self.stats.reset()


class MessageChannel(MeteredTransport, LXPServer):
    """An LXP server proxied over a simulated network.

    Each ``fill`` is one round trip: fixed ``latency_ms`` plus
    ``ms_per_kb`` transfer cost on the serialized reply.  A
    ``fill_batch`` is *also* one round trip -- that is the point of
    the pipelined protocol -- carrying one command per answered hole.
    """

    def __init__(self, server: LXPServer, latency_ms: float = 20.0,
                 ms_per_kb: float = 2.0, tracer=None, metrics=None,
                 name: str = ""):
        super().__init__(latency_ms, ms_per_kb, tracer, metrics, name)
        self.server = server

    def get_root(self) -> FragHole:
        root = self.server.get_root()
        self._charge(fragment_wire_size(root))
        return root

    def fill(self, hole_id) -> List[Fragment]:
        reply = self.server.fill(hole_id)
        self._charge(sum(fragment_wire_size(f) for f in reply)
                     + len(repr(hole_id)))
        return reply

    def fill_batch(self, hole_ids, speculate: int = 0
                   ) -> List[Tuple[object, List[Fragment]]]:
        replies = self.server.fill_batch(hole_ids, speculate)
        size = len(repr(list(hole_ids)))
        for hole_id, fragments in replies:
            size += len(repr(hole_id)) \
                + sum(fragment_wire_size(f) for f in fragments)
        self._charge(size, commands=max(len(replies), 1))
        return replies


class RPCDocument(MeteredTransport, NavigableDocument):
    """The naive remote design: every DOM-VXD command is a round trip.

    This is the baseline the paper's fragment-exchange plan beats: a
    fetch of one label costs a full network latency.
    """

    _COMMAND_BYTES = 48  # request + pointer + small reply

    def __init__(self, document: NavigableDocument,
                 latency_ms: float = 20.0, ms_per_kb: float = 2.0,
                 tracer=None, metrics=None, name: str = ""):
        super().__init__(latency_ms, ms_per_kb, tracer, metrics, name)
        self.document = document

    def root(self):
        # Handing out the root handle is free (it ships with the
        # query's reply).
        return self.document.root()

    def down(self, pointer):
        self._charge(self._COMMAND_BYTES)
        return self.document.down(pointer)

    def right(self, pointer):
        self._charge(self._COMMAND_BYTES)
        return self.document.right(pointer)

    def fetch(self, pointer):
        result = self.document.fetch(pointer)
        self._charge(self._COMMAND_BYTES + len(result))
        return result


def connect_remote(document: NavigableDocument,
                   chunk_size: Optional[int] = None,
                   depth: Optional[int] = None,
                   latency_ms: Optional[float] = None,
                   ms_per_kb: Optional[float] = None,
                   context: Optional[ExecutionContext] = None,
                   clock: Optional[Clock] = None
                   ) -> Tuple[XMLElement, ChannelStats]:
    """Open a remote client session onto ``document``.

    Granularity and channel costs default to the execution context's
    engine config (or the config defaults when no context is given);
    the channel's stats register with the context so the query's
    aggregated ``stats()`` covers the wire traffic.

    When the config's resilience is active (retries, a retry deadline,
    or degrade mode) the channel is wrapped in a
    :class:`~repro.runtime.resilience.ResilientLXPServer`: transient
    round-trip failures are retried with deterministic backoff, a
    per-channel circuit breaker fails fast once the channel is dead,
    and in degrade mode a broken round trip splices a ``<mix:error>``
    placeholder into the client's view instead of aborting.  ``clock``
    injects a time source for the backoff/breaker (tests use a fake).

    The client-side buffer honours the config's concurrency knobs:
    ``batch_navigations`` demands fills through pipelined
    ``fill_batch`` round trips (with ``prefetch`` as the speculation
    budget), ``prefetch_workers`` backs the lookahead with a thread
    pool, and plain ``prefetch`` keeps the deterministic prefetcher.
    All off (the defaults) yields the plain buffer, byte-for-byte.

    Returns the client-side root XMLElement (backed by a client-local
    buffer over the fragment channel) and the channel's stats object.
    """
    from ..wrappers.base import buffered

    if context is None:
        context = ExecutionContext.create()
    config = context.config
    server = NavigableLXPServer(
        document,
        chunk_size=config.chunk_size if chunk_size is None else chunk_size,
        depth=config.depth if depth is None else depth)
    channel = MessageChannel(
        server,
        latency_ms=config.latency_ms if latency_ms is None else latency_ms,
        ms_per_kb=config.ms_per_kb if ms_per_kb is None else ms_per_kb,
        tracer=context.tracer, metrics=context.metrics)
    name = context.register_channel_auto(channel.stats)
    channel.name = name
    server.stats.metrics = context.metrics
    server.stats.source = name
    transport = resilient_server(channel, config, name=name,
                                 clock=clock, tracer=context.tracer,
                                 context=context)
    buffer = buffered(transport, prefetch=config.prefetch,
                      workers=config.prefetch_workers,
                      batch=config.batch_navigations,
                      tracer=context.tracer, name=name)
    context.register_buffer_auto(buffer.stats)
    return XMLElement(buffer, buffer.root()), channel.stats
