"""BBQ: a browse-and-query session over virtual mediated views.

The paper's Section 6 mentions "the DTD-oriented query interface BBQ
which blends browsing and querying of XML data" as the client being
developed for the navigation-driven mediator.  This module provides a
scriptable session with that flavour: issue an XMAS query, then *walk*
the virtual answer with shell-like commands -- every step translated
into DOM-VXD navigations, so the user only pays for what they look at.

Commands (see :meth:`BBQSession.execute`)::

    query <xmas text>     run a query; cwd := the virtual answer root
    ls                    list the children of the cwd (tag + preview)
    cd <n | tag>          descend into the n-th child / first <tag>
    up                    back to the parent
    pwd                   the path of tags from the root
    text                  the text content of the cwd (forces subtree)
    tree                  render the cwd subtree
    stats                 source navigations spent so far
    schema                the inferred DTD of the current query

The session object is plain Python; the interactive loop in
``examples/bbq_browser.py`` is a thin wrapper around
:meth:`execute`.
"""

from __future__ import annotations

from typing import List, Optional

from .element import XMLElement

__all__ = ["BBQSession", "BBQError"]


from ..errors import ReproError


class BBQError(ReproError):
    """Raised for invalid commands or navigation (stays in-session)."""


class BBQSession:
    """A stateful browse-and-query session against a MIX mediator."""

    def __init__(self, mediator):
        self.mediator = mediator
        self._stack: List[XMLElement] = []
        self._last_query_text: Optional[str] = None

    # -- state -------------------------------------------------------------
    @property
    def cwd(self) -> XMLElement:
        if not self._stack:
            raise BBQError("no document open; run a query first")
        return self._stack[-1]

    @property
    def has_document(self) -> bool:
        return bool(self._stack)

    # -- commands ------------------------------------------------------------
    def query(self, xmas_text: str) -> XMLElement:
        """Run an XMAS query; the cwd becomes the virtual answer root."""
        result = self.mediator.prepare(xmas_text)
        self._stack = [result.root]
        self._last_query_text = xmas_text
        return self.cwd

    def schema(self) -> str:
        """The inferred DTD of the current query's answers (the
        DTD-oriented side of BBQ)."""
        if self._last_query_text is None:
            raise BBQError("no query to infer a schema from")
        from ..xmas.dtd import infer_dtd
        from ..xmas.parser import parse_xmas
        return infer_dtd(parse_xmas(self._last_query_text)).render()

    def ls(self) -> List[str]:
        """Tags of the cwd's children with a short content preview."""
        lines = []
        for index, child in enumerate(self.cwd.children()):
            preview = _preview(child)
            lines.append("%2d: <%s>%s" % (
                index, child.tag, "  " + preview if preview else ""))
        return lines

    def cd(self, target: str) -> XMLElement:
        """Descend into a child by index or by tag name."""
        children = self.cwd.child_list()
        if not children:
            raise BBQError("<%s> has no children" % self.cwd.tag)
        chosen: Optional[XMLElement] = None
        if target.lstrip("-").isdigit():
            index = int(target)
            if not 0 <= index < len(children):
                raise BBQError(
                    "index %d out of range (0..%d)"
                    % (index, len(children) - 1))
            chosen = children[index]
        else:
            for child in children:
                if child.tag == target:
                    chosen = child
                    break
            if chosen is None:
                raise BBQError(
                    "no child <%s> under <%s>" % (target, self.cwd.tag))
        self._stack.append(chosen)
        return chosen

    def up(self) -> XMLElement:
        if len(self._stack) <= 1:
            raise BBQError("already at the answer root")
        self._stack.pop()
        return self.cwd

    def pwd(self) -> str:
        return "/" + "/".join(e.tag for e in self._stack)

    def text(self) -> str:
        return self.cwd.text()

    def tree(self) -> str:
        return self.cwd.to_tree().sexpr()

    def stats(self) -> str:
        total = self.mediator.total_source_navigations()
        per_source = ", ".join(
            "%s=%d" % (name, meter.total)
            for name, meter in sorted(self.mediator.meters.items()))
        return "source navigations: %d (%s)" % (total, per_source)

    # -- the command-line surface ----------------------------------------
    def execute(self, line: str) -> str:
        """Execute one command line; returns printable output."""
        line = line.strip()
        if not line:
            return ""
        command, _, argument = line.partition(" ")
        command = command.lower()
        argument = argument.strip()
        try:
            if command == "query":
                if not argument:
                    raise BBQError("usage: query <xmas text>")
                root = self.query(argument)
                return "opened virtual answer <%s>" % root.tag
            if command == "ls":
                return "\n".join(self.ls()) or "(no children)"
            if command == "cd":
                if not argument:
                    raise BBQError("usage: cd <index | tag>")
                return "now at %s" % (self.cd(argument), self.pwd())[1]
            if command == "up":
                self.up()
                return "now at %s" % self.pwd()
            if command == "pwd":
                return self.pwd()
            if command == "text":
                return self.text()
            if command == "tree":
                return self.tree()
            if command == "stats":
                return self.stats()
            if command == "schema":
                return self.schema()
            raise BBQError("unknown command %r (try: query ls cd up "
                           "pwd text tree stats schema)" % command)
        except BBQError as err:
            return "error: %s" % err


def _preview(element: XMLElement, limit: int = 40) -> str:
    """A cheap one-line preview: the first child's tag or leaf text."""
    first = element.first_child()
    if first is None:
        return ""
    if first.is_leaf:
        text = first.tag
        return text if len(text) <= limit else text[:limit - 3] + "..."
    return "<%s>..." % first.tag
