"""Predicates for the select and join operators.

Predicates compare bound values (``$V1 = $V2``, ``$P < 100``) with
SQL-ish weak typing: when both sides look numeric they compare as
numbers, otherwise as strings.  Values are compared through
:func:`~repro.algebra.bindings.value_text`, i.e. on their leaf text --
which is what the zip-code join of the running example does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence, Set, Tuple, Union

from ..xtree.tree import Tree
from .bindings import Binding, value_text

__all__ = ["Predicate", "Comparison", "And", "Or", "Not", "TruePredicate",
           "Var", "Const", "compare_values"]

_OPS = ("=", "!=", "<", "<=", ">", ">=")


@dataclass(frozen=True)
class Var:
    """A variable reference in a predicate."""
    name: str

    def __str__(self) -> str:
        return "$%s" % self.name


@dataclass(frozen=True)
class Const:
    """A literal operand."""
    value: Union[str, int, float]

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return '"%s"' % self.value
        return str(self.value)


Operand = Union[Var, Const]


def _coerce_pair(left: str, right: str) -> Tuple:
    """Numeric comparison when both sides parse as numbers."""
    try:
        return float(left), float(right)
    except (TypeError, ValueError):
        return left, right


def compare_values(left: str, op: str, right: str) -> bool:
    """Apply ``op`` to two string values with numeric awareness."""
    lv, rv = _coerce_pair(left, right)
    if op == "=":
        return lv == rv
    if op == "!=":
        return lv != rv
    if op == "<":
        return lv < rv
    if op == "<=":
        return lv <= rv
    if op == ">":
        return lv > rv
    if op == ">=":
        return lv >= rv
    raise ValueError("unknown comparison operator %r" % op)


class Predicate:
    """Base class; subclasses implement evaluation over a binding."""

    def evaluate(self, lookup: Callable[[str], str]) -> bool:
        """Evaluate given ``lookup(var) -> string value``."""
        raise NotImplementedError

    def holds(self, binding: Binding) -> bool:
        """Evaluate against an eager binding."""
        return self.evaluate(lambda var: value_text(binding.value(var)))

    def variables(self) -> Set[str]:
        """All variables mentioned (for analysis and rewriting)."""
        raise NotImplementedError


@dataclass(frozen=True)
class Comparison(Predicate):
    left: Operand
    op: str
    right: Operand

    def __post_init__(self):
        if self.op not in _OPS:
            raise ValueError("unknown comparison operator %r" % self.op)

    def evaluate(self, lookup):
        left = (lookup(self.left.name) if isinstance(self.left, Var)
                else str(self.left.value))
        right = (lookup(self.right.name) if isinstance(self.right, Var)
                 else str(self.right.value))
        return compare_values(left, self.op, right)

    def variables(self):
        names = set()
        if isinstance(self.left, Var):
            names.add(self.left.name)
        if isinstance(self.right, Var):
            names.add(self.right.name)
        return names

    def __str__(self) -> str:
        return "%s %s %s" % (self.left, self.op, self.right)


@dataclass(frozen=True)
class And(Predicate):
    parts: Tuple[Predicate, ...]

    def evaluate(self, lookup):
        return all(p.evaluate(lookup) for p in self.parts)

    def variables(self):
        names: Set[str] = set()
        for part in self.parts:
            names |= part.variables()
        return names

    def __str__(self) -> str:
        return " AND ".join(str(p) for p in self.parts)


@dataclass(frozen=True)
class Or(Predicate):
    parts: Tuple[Predicate, ...]

    def evaluate(self, lookup):
        return any(p.evaluate(lookup) for p in self.parts)

    def variables(self):
        names: Set[str] = set()
        for part in self.parts:
            names |= part.variables()
        return names

    def __str__(self) -> str:
        return " OR ".join("(%s)" % p for p in self.parts)


@dataclass(frozen=True)
class Not(Predicate):
    inner: Predicate

    def evaluate(self, lookup):
        return not self.inner.evaluate(lookup)

    def variables(self):
        return self.inner.variables()

    def __str__(self) -> str:
        return "NOT (%s)" % self.inner


@dataclass(frozen=True)
class TruePredicate(Predicate):
    """Always true (turns a join into a product)."""

    def evaluate(self, lookup):
        return True

    def variables(self):
        return set()

    def __str__(self) -> str:
        return "true"
