"""Lists of variable bindings, the values flowing through the algebra.

The XMAS algebra operators "input lists of variable bindings and
produce new lists of bindings" (paper Section 3).  The paper represents
a binding list as a tree::

    bs[ b[ X[x1], Y[y1] ],  b[ X[x2], Y[y2] ] ]

whose value subtrees are *shared with the input documents* (footnote 7)
-- node identity must be preserved for grouping, duplicate elimination
and order preservation.  We model bindings as immutable ordered
var->Tree maps whose Tree values are shared references, and provide the
conversion to/from the paper's ``bs``/``b`` tree encoding.

Grouped collections are trees labeled ``list`` (the paper's reserved
label): ``LSs[ list[school1, school2] ]``.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..xtree.tree import Tree

__all__ = ["Binding", "BindingList", "LIST_LABEL", "make_list_value",
           "is_list_value", "list_items", "value_key", "value_text"]

#: The reserved label for grouped/concatenated collections.
LIST_LABEL = "list"


class Binding:
    """One variable binding ``b[X[x], Y[y], ...]``: an immutable ordered
    map from variable names to shared Tree values."""

    __slots__ = ("_items", "_index")

    def __init__(self, items: Iterable[Tuple[str, Tree]] = ()):
        self._items: Tuple[Tuple[str, Tree], ...] = tuple(items)
        self._index: Dict[str, Tree] = dict(self._items)
        if len(self._index) != len(self._items):
            raise ValueError("duplicate variable in binding: %s"
                             % [name for name, _ in self._items])

    # -- access -----------------------------------------------------------
    def value(self, var: str) -> Tree:
        """The tree bound to ``var`` (paper's ``b_i.X``)."""
        try:
            return self._index[var]
        except KeyError:
            raise KeyError(
                "no variable %s in binding over %s"
                % (var, list(self._index))
            ) from None

    def get(self, var: str) -> Optional[Tree]:
        return self._index.get(var)

    @property
    def variables(self) -> List[str]:
        return [name for name, _ in self._items]

    def items(self) -> Tuple[Tuple[str, Tree], ...]:
        return self._items

    def __contains__(self, var: str) -> bool:
        return var in self._index

    # -- derivation --------------------------------------------------------
    def extend(self, var: str, value: Tree) -> "Binding":
        """The paper's ``b_i + X[v]``: a new binding with one more
        variable."""
        if var in self._index:
            raise ValueError("binding already has variable %s" % var)
        return Binding(self._items + ((var, value),))

    def project(self, variables: Sequence[str]) -> "Binding":
        """Keep only ``variables`` (in the given order)."""
        return Binding(tuple((v, self.value(v)) for v in variables))

    # -- comparison ----------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Binding):
            return NotImplemented
        return self._items == other._items

    def __hash__(self) -> int:
        return hash(tuple((name, value_key(val))
                          for name, val in self._items))

    def __repr__(self) -> str:
        inner = ", ".join(
            "%s[%s]" % (name, value.sexpr(max_depth=2))
            for name, value in self._items
        )
        return "b[%s]" % inner


class BindingList:
    """An ordered list of bindings (``bs[...]``), with a fixed variable
    schema shared by all bindings."""

    def __init__(self, bindings: Iterable[Binding] = (),
                 variables: Optional[Sequence[str]] = None):
        self.bindings: List[Binding] = list(bindings)
        if variables is not None:
            self.variables = list(variables)
        elif self.bindings:
            self.variables = self.bindings[0].variables
        else:
            self.variables = []
        for binding in self.bindings:
            if binding.variables != self.variables:
                raise ValueError(
                    "binding schema %s differs from list schema %s"
                    % (binding.variables, self.variables)
                )

    def append(self, binding: Binding) -> None:
        if not self.bindings and not self.variables:
            self.variables = binding.variables
        elif binding.variables != self.variables:
            raise ValueError(
                "binding schema %s differs from list schema %s"
                % (binding.variables, self.variables)
            )
        self.bindings.append(binding)

    def __len__(self) -> int:
        return len(self.bindings)

    def __iter__(self) -> Iterator[Binding]:
        return iter(self.bindings)

    def __getitem__(self, index: int) -> Binding:
        return self.bindings[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BindingList):
            return NotImplemented
        return (self.variables == other.variables
                and self.bindings == other.bindings)

    def __repr__(self) -> str:
        return "bs[%s]" % ", ".join(repr(b) for b in self.bindings)

    # -- tree encoding ---------------------------------------------------
    def to_tree(self) -> Tree:
        """Encode as the paper's ``bs[b[...], ...]`` tree (sharing the
        value subtrees)."""
        return Tree("bs", [
            Tree("b", [Tree(name, [value]) for name, value in b.items()])
            for b in self.bindings
        ])

    @classmethod
    def from_tree(cls, tree: Tree) -> "BindingList":
        """Decode a ``bs[b[X[v], ...], ...]`` tree."""
        if tree.label != "bs":
            raise ValueError("expected a bs[...] tree, got %r" % tree.label)
        bindings = []
        for b_node in tree.children:
            if b_node.label != "b":
                raise ValueError("expected b[...] children in bs tree")
            items = []
            for var_node in b_node.children:
                if len(var_node.children) != 1:
                    raise ValueError(
                        "variable node %s must wrap exactly one value"
                        % var_node.label
                    )
                items.append((var_node.label, var_node.child(0)))
            bindings.append(Binding(items))
        return cls(bindings)


# ----------------------------------------------------------------------
# Grouped list values
# ----------------------------------------------------------------------

def make_list_value(items: Sequence[Tree]) -> Tree:
    """A ``list[...]`` collection node over shared item subtrees."""
    return Tree(LIST_LABEL, items)


def is_list_value(value: Tree) -> bool:
    """Whether a value is a ``list[...]`` collection node."""
    return value.label == LIST_LABEL


def list_items(value: Tree) -> Tuple[Tree, ...]:
    """The items of a collection value; a non-list value is the
    singleton of itself (the paper's concatenate case analysis)."""
    if is_list_value(value):
        return value.children
    return (value,)


# ----------------------------------------------------------------------
# Value comparison helpers
# ----------------------------------------------------------------------

def value_key(value: Tree):
    """A hashable canonical key realizing structural value equality.

    Grouping, duplicate elimination and set operators compare *values*;
    shared nodes compare equal trivially, and equal trees from
    different sources also coincide, matching XML value semantics.
    """
    if value.is_leaf:
        return value.label
    return (value.label, tuple(value_key(c) for c in value.children))


def value_text(value: Tree) -> str:
    """The string value used by comparison predicates: the label of a
    leaf, else the concatenated leaf text."""
    return value.text() if not value.is_leaf else value.label
