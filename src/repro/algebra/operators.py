"""The XMAS algebra: plan nodes (operator AST).

Each node corresponds to one operator of Section 3 of the paper and is
implemented twice: by the eager reference evaluator
(:mod:`repro.algebra.eager`) and as a lazy mediator
(:mod:`repro.lazy`).  ``pretty()`` renders a plan in the layout of the
paper's Figure 4.

Design notes
------------
* ``GroupBy`` generalizes the paper's single collected variable to a
  tuple of ``(var, out_var)`` aggregations; Figure 4 uses exactly one.
* ``Concatenate`` is n-ary (folds the paper's binary case analysis);
  the binary semantics is preserved for two arguments.
* ``Constant`` extends every binding with a fixed tree -- the target of
  literal text in XMAS construction heads.
* ``TupleDestroy`` names the variable whose value becomes the answer
  document root (the paper leaves it implicit in the singleton list).
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple, Union

from ..xtree.path import PathExpr, parse_path
from ..xtree.tree import Tree
from .predicates import Predicate, TruePredicate

__all__ = [
    "Operator", "Source", "Constant", "GetDescendants", "Select", "Join",
    "product", "Union", "Difference", "Distinct", "Project", "GroupBy",
    "OrderBy", "Concatenate", "CreateElement", "TupleDestroy",
    "PlanError", "walk_plan",
]


from ..errors import ReproError


class PlanError(ReproError):
    """Raised for structurally invalid plans."""


class Operator:
    """Base class of all plan nodes."""

    #: subclasses set this to their child operators
    inputs: Tuple["Operator", ...] = ()

    def output_variables(self) -> List[str]:
        """The variable schema of the binding list this node emits."""
        raise NotImplementedError

    def signature(self) -> str:
        """Short one-line description, Figure-4 style."""
        raise NotImplementedError

    def validate(self) -> None:
        """Raise PlanError when variables are used before being bound."""
        for child in self.inputs:
            child.validate()
        self._validate_self()

    def _validate_self(self) -> None:
        pass

    def _require(self, variables: Sequence[str], available: Sequence[str],
                 what: str) -> None:
        missing = [v for v in variables if v not in available]
        if missing:
            raise PlanError(
                "%s references unbound variable(s) %s (bound: %s)"
                % (what, ", ".join("$" + v for v in missing),
                   ", ".join("$" + v for v in available) or "none")
            )

    def pretty(self, indent: int = 0) -> str:
        """Indented plan tree (root at top, like Figure 4 rotated)."""
        pad = "  " * indent
        lines = [pad + self.signature()]
        for child in self.inputs:
            lines.append(child.pretty(indent + 1))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return "<%s>" % self.signature()


def walk_plan(plan: Operator) -> Iterator[Operator]:
    """All nodes of a plan, root first."""
    yield plan
    for child in plan.inputs:
        yield from walk_plan(child)


# ----------------------------------------------------------------------
# Leaves
# ----------------------------------------------------------------------

class Source(Operator):
    """``source_{url -> v}``: the singleton binding list
    ``bs[b[v[root]]]`` for the root element at ``url``."""

    def __init__(self, url: str, out_var: str):
        self.url = url
        self.out_var = out_var
        self.inputs = ()

    def output_variables(self) -> List[str]:
        return [self.out_var]

    def signature(self) -> str:
        return "source[%s -> $%s]" % (self.url, self.out_var)


# ----------------------------------------------------------------------
# Unary operators
# ----------------------------------------------------------------------

class Constant(Operator):
    """Extend each binding with a fixed tree value."""

    def __init__(self, child: Operator, value: Tree, out_var: str):
        self.child = child
        self.value = value
        self.out_var = out_var
        self.inputs = (child,)

    def output_variables(self) -> List[str]:
        return self.child.output_variables() + [self.out_var]

    def signature(self) -> str:
        return "constant[%s -> $%s]" % (
            self.value.sexpr(max_depth=1), self.out_var)

    def _validate_self(self) -> None:
        if self.out_var in self.child.output_variables():
            raise PlanError("constant rebinds $%s" % self.out_var)


class GetDescendants(Operator):
    """``getDescendants_{e, re -> ch}``: for each input binding and each
    descendant of ``b.e`` reachable by a label path matching ``re`` (in
    document order), emit ``b + ch[d]``."""

    def __init__(self, child: Operator, parent_var: str,
                 path: Union[str, PathExpr], out_var: str):
        self.child = child
        self.parent_var = parent_var
        self.path: PathExpr = (parse_path(path) if isinstance(path, str)
                               else path)
        self.out_var = out_var
        self.inputs = (child,)

    def output_variables(self) -> List[str]:
        return self.child.output_variables() + [self.out_var]

    def signature(self) -> str:
        return "getDescendants[$%s, %s -> $%s]" % (
            self.parent_var, self.path, self.out_var)

    def _validate_self(self) -> None:
        available = self.child.output_variables()
        self._require([self.parent_var], available, self.signature())
        if self.out_var in available:
            raise PlanError("getDescendants rebinds $%s" % self.out_var)


class Select(Operator):
    """``sigma_p``: keep bindings satisfying the predicate."""

    def __init__(self, child: Operator, predicate: Predicate):
        self.child = child
        self.predicate = predicate
        self.inputs = (child,)

    def output_variables(self) -> List[str]:
        return self.child.output_variables()

    def signature(self) -> str:
        return "select[%s]" % self.predicate

    def _validate_self(self) -> None:
        self._require(sorted(self.predicate.variables()),
                      self.child.output_variables(), self.signature())


class Project(Operator):
    """``pi_{vars}``: keep only the named variables (in given order)."""

    def __init__(self, child: Operator, variables: Sequence[str]):
        self.child = child
        self.variables = list(variables)
        self.inputs = (child,)

    def output_variables(self) -> List[str]:
        return list(self.variables)

    def signature(self) -> str:
        return "project[%s]" % ", ".join("$" + v for v in self.variables)

    def _validate_self(self) -> None:
        self._require(self.variables, self.child.output_variables(),
                      self.signature())


class Rename(Operator):
    """``rho_{old -> new}``: rename variables (values untouched).

    Needed by view composition: the view plan's answer variable is
    renamed to the root variable the consuming query expects.
    """

    def __init__(self, child: Operator, mapping: dict):
        self.child = child
        self.mapping = dict(mapping)
        self.inputs = (child,)

    def output_variables(self) -> List[str]:
        return [self.mapping.get(v, v)
                for v in self.child.output_variables()]

    def signature(self) -> str:
        return "rename[%s]" % ", ".join(
            "$%s -> $%s" % (old, new)
            for old, new in self.mapping.items())

    def _validate_self(self) -> None:
        available = self.child.output_variables()
        self._require(list(self.mapping), available, self.signature())
        out = self.output_variables()
        if len(set(out)) != len(out):
            raise PlanError("rename creates duplicate variables: %s"
                            % out)


class Distinct(Operator):
    """Duplicate elimination by structural value equality, preserving
    first-occurrence order."""

    def __init__(self, child: Operator):
        self.child = child
        self.inputs = (child,)

    def output_variables(self) -> List[str]:
        return self.child.output_variables()

    def signature(self) -> str:
        return "distinct"


class GroupBy(Operator):
    """``groupBy_{keys}, v -> l``: one output binding per distinct
    combination of the key variables (first-occurrence order), carrying
    the keys plus one ``list[...]`` collection per aggregation.

    ``aggregations`` is a sequence of ``(var, out_var)`` pairs; the
    paper's operator is the single-pair case.
    """

    def __init__(self, child: Operator, group_vars: Sequence[str],
                 aggregations: Sequence[Tuple[str, str]]):
        self.child = child
        self.group_vars = list(group_vars)
        self.aggregations = [tuple(a) for a in aggregations]
        self.inputs = (child,)

    def output_variables(self) -> List[str]:
        return self.group_vars + [out for _, out in self.aggregations]

    def signature(self) -> str:
        keys = ", ".join("$" + v for v in self.group_vars)
        aggs = ", ".join("$%s -> $%s" % (v, o)
                         for v, o in self.aggregations)
        return "groupBy[{%s}, %s]" % (keys, aggs)

    def _validate_self(self) -> None:
        available = self.child.output_variables()
        self._require(self.group_vars, available, self.signature())
        self._require([v for v, _ in self.aggregations], available,
                      self.signature())
        outs = [o for _, o in self.aggregations]
        if len(set(outs)) != len(outs):
            raise PlanError("duplicate aggregation outputs in %s"
                            % self.signature())
        for out in outs:
            if out in self.group_vars:
                raise PlanError("groupBy output $%s collides with a key"
                                % out)


class OrderBy(Operator):
    """``orderBy_{x1..xk}``: reorder bindings by the values of the key
    variables (stable; numeric-aware string comparison).

    Example 1's unbrowsable view: no output can be produced before the
    whole input has been seen.
    """

    def __init__(self, child: Operator, variables: Sequence[str],
                 descending: bool = False):
        self.child = child
        self.variables = list(variables)
        self.descending = descending
        self.inputs = (child,)

    def output_variables(self) -> List[str]:
        return self.child.output_variables()

    def signature(self) -> str:
        direction = " desc" if self.descending else ""
        return "orderBy[%s%s]" % (
            ", ".join("$" + v for v in self.variables), direction)

    def _validate_self(self) -> None:
        self._require(self.variables, self.child.output_variables(),
                      self.signature())


class Concatenate(Operator):
    """``concatenate_{x1..xn -> z}``: per binding, a ``list[...]`` whose
    items are the concatenation of each argument's items (a list value
    contributes its items, a non-list value contributes itself)."""

    def __init__(self, child: Operator, in_vars: Sequence[str],
                 out_var: str):
        if not in_vars:
            raise PlanError("concatenate needs at least one variable")
        self.child = child
        self.in_vars = list(in_vars)
        self.out_var = out_var
        self.inputs = (child,)

    def output_variables(self) -> List[str]:
        return self.child.output_variables() + [self.out_var]

    def signature(self) -> str:
        return "concatenate[%s -> $%s]" % (
            ", ".join("$" + v for v in self.in_vars), self.out_var)

    def _validate_self(self) -> None:
        available = self.child.output_variables()
        self._require(self.in_vars, available, self.signature())
        if self.out_var in available:
            raise PlanError("concatenate rebinds $%s" % self.out_var)


class CreateElement(Operator):
    """``createElement_{label, ch -> e}``: per binding, a new element
    whose label is ``label`` (a constant string, or a variable whose
    value's text is used) and whose children are the *subtrees* of the
    ``ch`` value (the items, for a list value)."""

    def __init__(self, child: Operator, label: Union[str, Tuple[str, str]],
                 content_var: str, out_var: str):
        self.child = child
        # label: plain string constant, or ("var", name) for a variable.
        if isinstance(label, tuple):
            kind, name = label
            if kind != "var":
                raise PlanError("bad label spec %r" % (label,))
            self.label_var: Optional[str] = name
            self.label_const: Optional[str] = None
        else:
            self.label_var = None
            self.label_const = label
        self.content_var = content_var
        self.out_var = out_var
        self.inputs = (child,)

    def output_variables(self) -> List[str]:
        return self.child.output_variables() + [self.out_var]

    def signature(self) -> str:
        label = ("$" + self.label_var if self.label_var
                 else self.label_const)
        return "createElement[%s, $%s -> $%s]" % (
            label, self.content_var, self.out_var)

    def _validate_self(self) -> None:
        available = self.child.output_variables()
        needed = [self.content_var]
        if self.label_var:
            needed.append(self.label_var)
        self._require(needed, available, self.signature())
        if self.out_var in available:
            raise PlanError("createElement rebinds $%s" % self.out_var)


class Materialize(Operator):
    """An intermediate *eager* step (paper Section 6's future work:
    "a combination of lazy demand-driven evaluation and intermediate
    eager steps").

    Semantically the identity; operationally the lazy implementation
    evaluates its subtree completely on first touch and serves all
    subsequent navigation from memory.  The hybrid optimizer inserts
    it above subplans whose navigational complexity is unbrowsable --
    they force a full input scan anyway, so buffering the result
    avoids re-paying source navigations on every value access.
    """

    def __init__(self, child: Operator):
        self.child = child
        self.inputs = (child,)

    def output_variables(self) -> List[str]:
        return self.child.output_variables()

    def signature(self) -> str:
        return "materialize"


class TupleDestroy(Operator):
    """``tupleDestroy``: from the singleton list ``bs[b[v[e]]]``, return
    the element ``e`` -- the root of the answer document."""

    def __init__(self, child: Operator, var: Optional[str] = None):
        self.child = child
        child_vars = child.output_variables()
        if var is None:
            if len(child_vars) != 1:
                raise PlanError(
                    "tupleDestroy needs an explicit variable when the "
                    "input schema is %s" % child_vars
                )
            var = child_vars[0]
        self.var = var
        self.inputs = (child,)

    def output_variables(self) -> List[str]:
        return []

    def signature(self) -> str:
        return "tupleDestroy[$%s]" % self.var

    def _validate_self(self) -> None:
        self._require([self.var], self.child.output_variables(),
                      self.signature())


# ----------------------------------------------------------------------
# Binary operators
# ----------------------------------------------------------------------

class Join(Operator):
    """``join_p``: nested-loop join of two binding lists; output order
    is left-major (outer loop on the left input)."""

    def __init__(self, left: Operator, right: Operator,
                 predicate: Predicate):
        self.left = left
        self.right = right
        self.predicate = predicate
        self.inputs = (left, right)

    def output_variables(self) -> List[str]:
        return self.left.output_variables() + self.right.output_variables()

    def signature(self) -> str:
        return "join[%s]" % self.predicate

    def _validate_self(self) -> None:
        left_vars = self.left.output_variables()
        right_vars = self.right.output_variables()
        overlap = set(left_vars) & set(right_vars)
        if overlap:
            raise PlanError(
                "join inputs share variables %s"
                % ", ".join("$" + v for v in sorted(overlap))
            )
        self._require(sorted(self.predicate.variables()),
                      left_vars + right_vars, self.signature())


def product(left: Operator, right: Operator) -> Join:
    """Cartesian product: a join with the true predicate."""
    return Join(left, right, TruePredicate())


class Union(Operator):
    """List union: left bindings followed by right bindings (schemas
    must agree)."""

    def __init__(self, left: Operator, right: Operator):
        self.left = left
        self.right = right
        self.inputs = (left, right)

    def output_variables(self) -> List[str]:
        return self.left.output_variables()

    def signature(self) -> str:
        return "union"

    def _validate_self(self) -> None:
        if self.left.output_variables() != self.right.output_variables():
            raise PlanError(
                "union schemas differ: %s vs %s"
                % (self.left.output_variables(),
                   self.right.output_variables())
            )


class Difference(Operator):
    """List difference: left bindings whose values do not appear (by
    structural equality) in the right input."""

    def __init__(self, left: Operator, right: Operator):
        self.left = left
        self.right = right
        self.inputs = (left, right)

    def output_variables(self) -> List[str]:
        return self.left.output_variables()

    def signature(self) -> str:
        return "difference"

    def _validate_self(self) -> None:
        if self.left.output_variables() != self.right.output_variables():
            raise PlanError(
                "difference schemas differ: %s vs %s"
                % (self.left.output_variables(),
                   self.right.output_variables())
            )
