"""Eager (fully materializing) evaluation of XMAS algebra plans.

This is the *reference semantics*: every operator is computed bottom-up
over complete binding lists, exactly following the operator definitions
of Section 3.  The lazy mediators of :mod:`repro.lazy` must be
observationally equivalent to it -- the integration and property tests
compare ``materialize(lazy_plan)`` against ``evaluate(plan, sources)``.

It is also the paper's foil: "current mediator systems ... materialize
the result of the user query" -- the lazy-vs-eager experiment (E3)
meters this evaluator against the navigation-driven one.
"""

from __future__ import annotations

import typing
from typing import Callable, Dict, List, Mapping, Tuple

from ..xtree.path import PathNFA
from ..xtree.tree import Tree
from .bindings import (
    Binding,
    BindingList,
    make_list_value,
    value_key,
    value_text,
)
from .operators import (
    Concatenate,
    Constant,
    CreateElement,
    Difference,
    Distinct,
    GetDescendants,
    GroupBy,
    Join,
    Materialize,
    Operator,
    OrderBy,
    PlanError,
    Project,
    Rename,
    Select,
    Source,
    TupleDestroy,
    Union as UnionOp,
)

__all__ = ["evaluate", "evaluate_bindings", "match_descendants",
           "sort_key_for_value"]

#: Resolves a source URL to its exported document root tree.
SourceResolver = typing.Union[Mapping[str, Tree], Callable[[str], Tree]]


def _resolve(sources: SourceResolver, url: str) -> Tree:
    if callable(sources):
        return sources(url)
    try:
        return sources[url]
    except KeyError:
        raise PlanError("no source registered for url %r" % url) from None


def evaluate(plan: Operator, sources: SourceResolver
             ) -> typing.Union[Tree, BindingList]:
    """Evaluate ``plan``; a TupleDestroy root yields the answer Tree,
    any other root yields its BindingList."""
    plan.validate()
    if isinstance(plan, TupleDestroy):
        bindings = evaluate_bindings(plan.child, sources)
        if len(bindings) != 1:
            raise PlanError(
                "tupleDestroy expects a singleton binding list, got %d "
                "bindings" % len(bindings)
            )
        return bindings[0].value(plan.var)
    return evaluate_bindings(plan, sources)


def evaluate_bindings(plan: Operator,
                      sources: SourceResolver) -> BindingList:
    """Evaluate a plan node to its (materialized) binding list."""
    if isinstance(plan, Source):
        root = _resolve(sources, plan.url)
        return BindingList([Binding([(plan.out_var, root)])])

    if isinstance(plan, Constant):
        inner = evaluate_bindings(plan.child, sources)
        return BindingList(
            [b.extend(plan.out_var, plan.value) for b in inner],
            variables=inner.variables + [plan.out_var],
        )

    if isinstance(plan, GetDescendants):
        inner = evaluate_bindings(plan.child, sources)
        nfa = PathNFA(plan.path)
        out = BindingList(
            variables=inner.variables + [plan.out_var])
        for binding in inner:
            parent = binding.value(plan.parent_var)
            for descendant in match_descendants(parent, nfa):
                out.append(binding.extend(plan.out_var, descendant))
        return out

    if isinstance(plan, Select):
        inner = evaluate_bindings(plan.child, sources)
        return BindingList(
            [b for b in inner if plan.predicate.holds(b)],
            variables=inner.variables,
        )

    if isinstance(plan, Project):
        inner = evaluate_bindings(plan.child, sources)
        return BindingList(
            [b.project(plan.variables) for b in inner],
            variables=list(plan.variables),
        )

    if isinstance(plan, Rename):
        inner = evaluate_bindings(plan.child, sources)
        renamed = [
            Binding([(plan.mapping.get(name, name), value)
                     for name, value in b.items()])
            for b in inner
        ]
        return BindingList(
            renamed,
            variables=[plan.mapping.get(v, v) for v in inner.variables],
        )

    if isinstance(plan, Distinct):
        inner = evaluate_bindings(plan.child, sources)
        seen = set()
        kept: List[Binding] = []
        for binding in inner:
            key = tuple(value_key(v) for _, v in binding.items())
            if key not in seen:
                seen.add(key)
                kept.append(binding)
        return BindingList(kept, variables=inner.variables)

    if isinstance(plan, Join):
        left = evaluate_bindings(plan.left, sources)
        right = evaluate_bindings(plan.right, sources)
        out = BindingList(variables=left.variables + right.variables)
        for lb in left:
            for rb in right:
                merged = Binding(lb.items() + rb.items())
                if plan.predicate.holds(merged):
                    out.append(merged)
        return out

    if isinstance(plan, UnionOp):
        left = evaluate_bindings(plan.left, sources)
        right = evaluate_bindings(plan.right, sources)
        return BindingList(
            list(left) + [b.project(left.variables) for b in right],
            variables=left.variables,
        )

    if isinstance(plan, Difference):
        left = evaluate_bindings(plan.left, sources)
        right = evaluate_bindings(plan.right, sources)
        right_keys = {
            tuple(value_key(b.value(v)) for v in left.variables)
            for b in right
        }
        return BindingList(
            [b for b in left
             if tuple(value_key(b.value(v))
                      for v in left.variables) not in right_keys],
            variables=left.variables,
        )

    if isinstance(plan, Materialize):
        # Semantically the identity; materialization is an
        # operational property of the lazy implementation.
        return evaluate_bindings(plan.child, sources)

    if isinstance(plan, GroupBy):
        return _evaluate_group_by(plan, sources)

    if isinstance(plan, OrderBy):
        inner = evaluate_bindings(plan.child, sources)
        ordered = sorted(
            inner,
            key=lambda b: tuple(
                sort_key_for_value(value_text(b.value(v)))
                for v in plan.variables
            ),
            reverse=plan.descending,
        )
        return BindingList(ordered, variables=inner.variables)

    if isinstance(plan, Concatenate):
        inner = evaluate_bindings(plan.child, sources)
        out = BindingList(variables=inner.variables + [plan.out_var])
        for binding in inner:
            items: List[Tree] = []
            for var in plan.in_vars:
                value = binding.value(var)
                if value.label == "list":
                    items.extend(value.children)
                else:
                    items.append(value)
            out.append(binding.extend(plan.out_var,
                                      make_list_value(items)))
        return out

    if isinstance(plan, CreateElement):
        inner = evaluate_bindings(plan.child, sources)
        out = BindingList(variables=inner.variables + [plan.out_var])
        for binding in inner:
            label = (value_text(binding.value(plan.label_var))
                     if plan.label_var else plan.label_const)
            content = binding.value(plan.content_var)
            element = Tree(label, content.children)
            out.append(binding.extend(plan.out_var, element))
        return out

    if isinstance(plan, TupleDestroy):
        raise PlanError(
            "tupleDestroy may only appear at the plan root; "
            "use evaluate() for full plans"
        )

    raise PlanError("eager evaluator does not know operator %r" % plan)


def _evaluate_group_by(plan: GroupBy,
                       sources: SourceResolver) -> BindingList:
    inner = evaluate_bindings(plan.child, sources)
    out_vars = plan.group_vars + [o for _, o in plan.aggregations]

    groups: Dict[Tuple, Dict] = {}
    order: List[Tuple] = []
    for binding in inner:
        key = tuple(value_key(binding.value(v)) for v in plan.group_vars)
        group = groups.get(key)
        if group is None:
            group = {
                "witness": binding,
                "collected": [[] for _ in plan.aggregations],
            }
            groups[key] = group
            order.append(key)
        for index, (var, _out) in enumerate(plan.aggregations):
            group["collected"][index].append(binding.value(var))

    if not plan.group_vars and not order:
        # groupBy{} over the empty input still yields the single empty
        # group (SQL's aggregate-without-GROUP-BY convention); this is
        # what makes <answer></answer>{} produce an empty answer element
        # rather than no answer at all.
        empty = {"witness": None,
                 "collected": [[] for _ in plan.aggregations]}
        groups[()] = empty
        order.append(())

    out = BindingList(variables=out_vars)
    for key in order:
        group = groups[key]
        witness = group["witness"]
        items: List[Tuple[str, Tree]] = []
        for var in plan.group_vars:
            items.append((var, witness.value(var)))
        for index, (_var, out_var) in enumerate(plan.aggregations):
            items.append(
                (out_var, make_list_value(group["collected"][index])))
        out.append(Binding(items))
    return out


def match_descendants(parent: Tree, nfa: PathNFA) -> List[Tree]:
    """All descendants of ``parent`` whose label path from (below)
    ``parent`` matches the NFA, in document order.

    Dead NFA frontiers prune whole subtrees -- the same pruning the
    lazy mediator performs navigation-by-navigation.
    """
    matches: List[Tree] = []

    def descend(node: Tree, states) -> None:
        for child in node.children:
            next_states = nfa.step(states, child.label)
            if not nfa.is_alive(next_states):
                continue
            if nfa.is_accepting(next_states):
                matches.append(child)
            descend(child, next_states)

    descend(parent, nfa.start_states)
    return matches


def sort_key_for_value(text: str):
    """Numeric-aware sort key over value text (mirrors predicate
    comparison semantics)."""
    try:
        return (0, float(text), "")
    except ValueError:
        return (1, 0.0, text)
