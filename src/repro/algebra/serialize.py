"""Serialization of algebra plans (and their predicates and paths) to
plain JSON-compatible dictionaries.

Lets compiled view plans be cached on disk, shipped between mediator
tiers (Figure 1's stacking across address spaces), and inspected by
tools.  ``plan_from_dict(plan_to_dict(p))`` reproduces a plan that
evaluates identically; the property suite checks this over random
plans.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from ..xtree.tree import Tree
from . import operators as ops
from . import predicates as preds

__all__ = ["plan_to_dict", "plan_from_dict", "plan_to_json",
           "plan_from_json", "SerializationError"]


from ..errors import ReproError


class SerializationError(ReproError):
    """Raised for unknown node kinds or malformed dictionaries."""


# ----------------------------------------------------------------------
# Trees: serialized via the compact (label, children) object form.
# ----------------------------------------------------------------------

def _tree_to_obj(tree: Tree):
    return tree.to_obj()


def _tree_from_obj(obj) -> Tree:
    from ..xtree.tree import tree_from_obj
    return tree_from_obj(_listify(obj))


def _listify(obj):
    # JSON turns the (label, children) tuples into 2-element lists.
    if isinstance(obj, str):
        return obj
    label, children = obj
    return (label, [_listify(c) for c in children])


# ----------------------------------------------------------------------
# Predicates
# ----------------------------------------------------------------------

def _operand_to_dict(operand) -> Dict[str, Any]:
    if isinstance(operand, preds.Var):
        return {"var": operand.name}
    return {"const": operand.value}


def _operand_from_dict(data):
    if "var" in data:
        return preds.Var(data["var"])
    return preds.Const(data["const"])


def predicate_to_dict(predicate: preds.Predicate) -> Dict[str, Any]:
    if isinstance(predicate, preds.Comparison):
        return {"kind": "cmp", "left": _operand_to_dict(predicate.left),
                "op": predicate.op,
                "right": _operand_to_dict(predicate.right)}
    if isinstance(predicate, preds.And):
        return {"kind": "and",
                "parts": [predicate_to_dict(p) for p in predicate.parts]}
    if isinstance(predicate, preds.Or):
        return {"kind": "or",
                "parts": [predicate_to_dict(p) for p in predicate.parts]}
    if isinstance(predicate, preds.Not):
        return {"kind": "not",
                "inner": predicate_to_dict(predicate.inner)}
    if isinstance(predicate, preds.TruePredicate):
        return {"kind": "true"}
    raise SerializationError("unknown predicate %r" % (predicate,))


def predicate_from_dict(data: Dict[str, Any]) -> preds.Predicate:
    kind = data["kind"]
    if kind == "cmp":
        return preds.Comparison(_operand_from_dict(data["left"]),
                                data["op"],
                                _operand_from_dict(data["right"]))
    if kind == "and":
        return preds.And(tuple(predicate_from_dict(p)
                               for p in data["parts"]))
    if kind == "or":
        return preds.Or(tuple(predicate_from_dict(p)
                              for p in data["parts"]))
    if kind == "not":
        return preds.Not(predicate_from_dict(data["inner"]))
    if kind == "true":
        return preds.TruePredicate()
    raise SerializationError("unknown predicate kind %r" % kind)


# ----------------------------------------------------------------------
# Plans
# ----------------------------------------------------------------------

def plan_to_dict(plan: ops.Operator) -> Dict[str, Any]:
    """Serialize a plan tree to a JSON-compatible dictionary."""
    if isinstance(plan, ops.Source):
        return {"op": "source", "url": plan.url, "var": plan.out_var}
    if isinstance(plan, ops.Constant):
        return {"op": "constant", "child": plan_to_dict(plan.child),
                "value": _tree_to_obj(plan.value), "var": plan.out_var}
    if isinstance(plan, ops.GetDescendants):
        return {"op": "getDescendants",
                "child": plan_to_dict(plan.child),
                "parent": plan.parent_var, "path": str(plan.path),
                "var": plan.out_var}
    if isinstance(plan, ops.Select):
        return {"op": "select", "child": plan_to_dict(plan.child),
                "predicate": predicate_to_dict(plan.predicate)}
    if isinstance(plan, ops.Project):
        return {"op": "project", "child": plan_to_dict(plan.child),
                "vars": list(plan.variables)}
    if isinstance(plan, ops.Rename):
        return {"op": "rename", "child": plan_to_dict(plan.child),
                "mapping": dict(plan.mapping)}
    if isinstance(plan, ops.Distinct):
        return {"op": "distinct", "child": plan_to_dict(plan.child)}
    if isinstance(plan, ops.Materialize):
        return {"op": "materialize",
                "child": plan_to_dict(plan.child)}
    if isinstance(plan, ops.Join):
        return {"op": "join", "left": plan_to_dict(plan.left),
                "right": plan_to_dict(plan.right),
                "predicate": predicate_to_dict(plan.predicate)}
    if isinstance(plan, ops.Union):
        return {"op": "union", "left": plan_to_dict(plan.left),
                "right": plan_to_dict(plan.right)}
    if isinstance(plan, ops.Difference):
        return {"op": "difference", "left": plan_to_dict(plan.left),
                "right": plan_to_dict(plan.right)}
    if isinstance(plan, ops.GroupBy):
        return {"op": "groupBy", "child": plan_to_dict(plan.child),
                "keys": list(plan.group_vars),
                "aggregations": [list(a) for a in plan.aggregations]}
    if isinstance(plan, ops.OrderBy):
        return {"op": "orderBy", "child": plan_to_dict(plan.child),
                "vars": list(plan.variables),
                "descending": plan.descending}
    if isinstance(plan, ops.Concatenate):
        return {"op": "concatenate", "child": plan_to_dict(plan.child),
                "vars": list(plan.in_vars), "var": plan.out_var}
    if isinstance(plan, ops.CreateElement):
        label = ({"var": plan.label_var} if plan.label_var
                 else {"const": plan.label_const})
        return {"op": "createElement",
                "child": plan_to_dict(plan.child), "label": label,
                "content": plan.content_var, "var": plan.out_var}
    if isinstance(plan, ops.TupleDestroy):
        return {"op": "tupleDestroy", "child": plan_to_dict(plan.child),
                "var": plan.var}
    raise SerializationError("unknown operator %r" % (plan,))


def plan_from_dict(data: Dict[str, Any]) -> ops.Operator:
    """Reconstruct a plan from its dictionary form."""
    kind = data.get("op")
    if kind == "source":
        return ops.Source(data["url"], data["var"])
    if kind == "constant":
        return ops.Constant(plan_from_dict(data["child"]),
                            _tree_from_obj(data["value"]), data["var"])
    if kind == "getDescendants":
        return ops.GetDescendants(plan_from_dict(data["child"]),
                                  data["parent"], data["path"],
                                  data["var"])
    if kind == "select":
        return ops.Select(plan_from_dict(data["child"]),
                          predicate_from_dict(data["predicate"]))
    if kind == "project":
        return ops.Project(plan_from_dict(data["child"]), data["vars"])
    if kind == "rename":
        return ops.Rename(plan_from_dict(data["child"]),
                          data["mapping"])
    if kind == "distinct":
        return ops.Distinct(plan_from_dict(data["child"]))
    if kind == "materialize":
        return ops.Materialize(plan_from_dict(data["child"]))
    if kind == "join":
        return ops.Join(plan_from_dict(data["left"]),
                        plan_from_dict(data["right"]),
                        predicate_from_dict(data["predicate"]))
    if kind == "union":
        return ops.Union(plan_from_dict(data["left"]),
                         plan_from_dict(data["right"]))
    if kind == "difference":
        return ops.Difference(plan_from_dict(data["left"]),
                              plan_from_dict(data["right"]))
    if kind == "groupBy":
        return ops.GroupBy(plan_from_dict(data["child"]), data["keys"],
                           [tuple(a) for a in data["aggregations"]])
    if kind == "orderBy":
        return ops.OrderBy(plan_from_dict(data["child"]), data["vars"],
                           data.get("descending", False))
    if kind == "concatenate":
        return ops.Concatenate(plan_from_dict(data["child"]),
                               data["vars"], data["var"])
    if kind == "createElement":
        label_spec = data["label"]
        label = (("var", label_spec["var"]) if "var" in label_spec
                 else label_spec["const"])
        return ops.CreateElement(plan_from_dict(data["child"]), label,
                                 data["content"], data["var"])
    if kind == "tupleDestroy":
        return ops.TupleDestroy(plan_from_dict(data["child"]),
                                data["var"])
    raise SerializationError("unknown operator kind %r" % kind)


def plan_to_json(plan: ops.Operator, indent: int = None) -> str:
    """Serialize a plan to a JSON string."""
    return json.dumps(plan_to_dict(plan), indent=indent)


def plan_from_json(text: str) -> ops.Operator:
    """Reconstruct a plan from its JSON string."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as err:
        raise SerializationError("bad plan JSON: %s" % err) from None
    return plan_from_dict(data)
