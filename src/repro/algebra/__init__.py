"""The XMAS algebra (paper Section 3): binding lists, predicates,
operator plan nodes, and the eager reference evaluator."""

from .bindings import (
    LIST_LABEL,
    Binding,
    BindingList,
    is_list_value,
    list_items,
    make_list_value,
    value_key,
    value_text,
)
from .eager import evaluate, evaluate_bindings, match_descendants
from .operators import (
    Concatenate,
    Constant,
    CreateElement,
    Difference,
    Distinct,
    GetDescendants,
    GroupBy,
    Join,
    Materialize,
    Operator,
    OrderBy,
    PlanError,
    Project,
    Rename,
    Select,
    Source,
    TupleDestroy,
    Union,
    product,
    walk_plan,
)
from .serialize import (
    SerializationError,
    plan_from_dict,
    plan_from_json,
    plan_to_dict,
    plan_to_json,
)
from .predicates import (
    And,
    Comparison,
    Const,
    Not,
    Or,
    Predicate,
    TruePredicate,
    Var,
    compare_values,
)

__all__ = [
    "Binding", "BindingList", "LIST_LABEL", "make_list_value",
    "is_list_value", "list_items", "value_key", "value_text",
    "Predicate", "Comparison", "And", "Or", "Not", "TruePredicate",
    "Var", "Const", "compare_values",
    "Operator", "Source", "Constant", "GetDescendants", "Select", "Join",
    "product", "Union", "Difference", "Distinct", "Project", "Rename",
    "GroupBy", "Materialize",
    "OrderBy", "Concatenate", "CreateElement", "TupleDestroy",
    "PlanError", "walk_plan",
    "evaluate", "evaluate_bindings", "match_descendants",
    "plan_to_dict", "plan_from_dict", "plan_to_json",
    "plan_from_json", "SerializationError",
]
