"""Relational schemas: columns, types, and validation.

The MIX relational wrapper (paper Section 4) exposes a database as an
XML tree ``db[table*[row*[att[value]]]]`` and needs the schema -- table
names, column names and types -- to answer the database-level ``fill``
request.  This module provides exactly that metadata layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

__all__ = ["ColumnType", "Column", "TableSchema", "SchemaError"]


from ..errors import PermanentSourceError


class SchemaError(PermanentSourceError):
    """Raised for invalid schemas or rows that violate them
    (permanent: the schema does not change between retries)."""


class ColumnType:
    """Supported column types and their Python representations."""

    INT = "int"
    FLOAT = "float"
    STR = "str"

    ALL = (INT, FLOAT, STR)

    _PYTHON = {INT: int, FLOAT: float, STR: str}

    @classmethod
    def validate(cls, type_name: str) -> str:
        if type_name not in cls.ALL:
            raise SchemaError("unknown column type %r" % type_name)
        return type_name

    @classmethod
    def coerce(cls, type_name: str, value):
        """Coerce ``value`` to the column's Python type.

        Accepts compatible inputs (``"3"`` for an int column) so that
        wrappers can feed string-typed XML content straight in.
        """
        if value is None:
            return None
        python_type = cls._PYTHON[type_name]
        if isinstance(value, python_type) and not (
                python_type is float and isinstance(value, bool)):
            return value
        try:
            if python_type is int and isinstance(value, str):
                return int(value.strip())
            if python_type is float and isinstance(value, (str, int)):
                return float(value)
            if python_type is str:
                return str(value)
            if python_type is int and isinstance(value, float) \
                    and value.is_integer():
                return int(value)
        except ValueError:
            pass
        raise SchemaError(
            "value %r is not coercible to column type %s"
            % (value, type_name)
        )


@dataclass(frozen=True)
class Column:
    """A named, typed column."""

    name: str
    type: str = ColumnType.STR

    def __post_init__(self):
        if not self.name or not self.name.replace("_", "").isalnum():
            raise SchemaError("invalid column name %r" % self.name)
        ColumnType.validate(self.type)


class TableSchema:
    """The schema of one table: an ordered list of typed columns."""

    def __init__(self, name: str, columns: Sequence[Column]):
        if not name or not name.replace("_", "").isalnum():
            raise SchemaError("invalid table name %r" % name)
        if not columns:
            raise SchemaError("table %r needs at least one column" % name)
        names = [c.name for c in columns]
        if len(set(names)) != len(names):
            raise SchemaError("duplicate column names in table %r" % name)
        self.name = name
        self.columns: Tuple[Column, ...] = tuple(columns)
        self._index = {c.name: i for i, c in enumerate(self.columns)}

    @property
    def column_names(self) -> List[str]:
        return [c.name for c in self.columns]

    def column_index(self, name: str) -> int:
        try:
            return self._index[name]
        except KeyError:
            raise SchemaError(
                "no column %r in table %r (has: %s)"
                % (name, self.name, ", ".join(self.column_names))
            ) from None

    def column(self, name: str) -> Column:
        return self.columns[self.column_index(name)]

    def coerce_row(self, values: Sequence) -> Tuple:
        """Validate and coerce one row of values against the schema."""
        if len(values) != len(self.columns):
            raise SchemaError(
                "row arity %d does not match table %r arity %d"
                % (len(values), self.name, len(self.columns))
            )
        return tuple(
            ColumnType.coerce(col.type, value)
            for col, value in zip(self.columns, values)
        )

    def __repr__(self) -> str:
        cols = ", ".join("%s %s" % (c.name, c.type) for c in self.columns)
        return "TableSchema(%s(%s))" % (self.name, cols)
