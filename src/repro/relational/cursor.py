"""Tuple-at-a-time cursors: the source-side navigation quantum.

"A relational wrapper will translate this into a request to advance the
relational cursor and fetch the complete next tuple (since the tuple is
the quantum of navigation in relational databases)." -- paper, Ex. 5.

Cursors count their advances so the granularity experiments can compare
cursor traffic against DOM-VXD command traffic.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional, Sequence, Tuple

__all__ = ["Cursor"]


class Cursor:
    """A forward-only cursor over a row iterator.

    The cursor pulls lazily from the underlying iterator: creating one
    performs no work, matching the demand-driven design of the stack
    above it.
    """

    def __init__(self, column_names: Sequence[str],
                 rows: Iterator[Tuple]):
        self.column_names: List[str] = list(column_names)
        self._rows = iter(rows)
        self._current: Optional[Tuple] = None
        self._exhausted = False
        #: number of advance() calls that touched the underlying store
        self.advances = 0

    def advance(self) -> Optional[Tuple]:
        """Move to the next tuple and return it (None when exhausted)."""
        if self._exhausted:
            return None
        self.advances += 1
        try:
            self._current = next(self._rows)
        except StopIteration:
            self._current = None
            self._exhausted = True
        return self._current

    @property
    def current(self) -> Optional[Tuple]:
        """The tuple the cursor is positioned on (None before the first
        advance and after exhaustion)."""
        return self._current

    def fetch_chunk(self, size: int) -> List[Tuple]:
        """Advance up to ``size`` times and return the tuples fetched.

        This is the bulk-transfer entry point used by the buffered
        relational wrapper ("chunks of 100 tuples at a time").
        """
        if size <= 0:
            raise ValueError("chunk size must be positive, got %d" % size)
        chunk: List[Tuple] = []
        for _ in range(size):
            row = self.advance()
            if row is None:
                break
            chunk.append(row)
        return chunk

    @property
    def exhausted(self) -> bool:
        return self._exhausted

    def as_dicts(self) -> Iterator[dict]:
        """Drain the cursor into column-name dictionaries (testing aid)."""
        while True:
            row = self.advance()
            if row is None:
                return
            yield dict(zip(self.column_names, row))
