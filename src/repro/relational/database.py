"""Databases and the JDBC-flavoured connection facade.

The MIX relational wrapper connects "through JDBC" with the database
named in the URI; :class:`Connection` is the local stand-in, offering
``execute(sql)`` (returns a cursor) plus the catalog inspection the
wrapper needs for its database-level ``fill`` answer.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from .cursor import Cursor
from .schema import Column, SchemaError, TableSchema
from .sql import execute_select, parse_select
from .table import Table

__all__ = ["Database", "Connection", "connect"]


class Database:
    """A named collection of tables."""

    def __init__(self, name: str):
        if not name or not name.replace("_", "").isalnum():
            raise SchemaError("invalid database name %r" % name)
        self.name = name
        self._tables: Dict[str, Table] = {}

    def create_table(self, name: str,
                     columns: Sequence) -> Table:
        """Create a table; ``columns`` may be Column objects or
        ``(name, type)`` pairs or bare names (typed str)."""
        if name in self._tables:
            raise SchemaError("table %r already exists" % name)
        cols: List[Column] = []
        for spec in columns:
            if isinstance(spec, Column):
                cols.append(spec)
            elif isinstance(spec, str):
                cols.append(Column(spec))
            else:
                col_name, col_type = spec
                cols.append(Column(col_name, col_type))
        table = Table(TableSchema(name, cols))
        self._tables[name] = table
        return table

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise SchemaError(
                "no table %r in database %r (has: %s)"
                % (name, self.name, ", ".join(sorted(self._tables)))
            ) from None

    @property
    def table_names(self) -> List[str]:
        """Table names in creation order (the wrapper exposes them in
        this stable order)."""
        return list(self._tables)

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def __repr__(self) -> str:
        return "Database(%s: %s)" % (self.name, ", ".join(self._tables))


class Connection:
    """A live connection to a database (the JDBC stand-in).

    Counts executed statements so experiments can report source-side
    query traffic alongside navigation traffic.
    """

    def __init__(self, database: Database):
        self.database = database
        self.statements_executed = 0

    def execute(self, sql: str) -> Cursor:
        """Parse and run a SELECT, returning a tuple-at-a-time cursor."""
        statement = parse_select(sql)
        self.statements_executed += 1
        return execute_select(statement, self.database.table(
            statement.table))

    def tables(self) -> List[str]:
        return self.database.table_names

    def columns(self, table: str) -> List[str]:
        return self.database.table(table).schema.column_names


#: Registry used by connect() -- the moral equivalent of a JDBC URI
#: resolver.  Wrappers receive URIs like "rdb://homesdb".
_REGISTRY: Dict[str, Database] = {}


def register_database(database: Database) -> str:
    """Register a database for URI-based lookup; returns its URI."""
    _REGISTRY[database.name] = database
    return "rdb://%s" % database.name


def connect(uri: str) -> Connection:
    """Open a connection to a registered database URI."""
    if not uri.startswith("rdb://"):
        raise SchemaError("not a relational URI: %r" % uri)
    name = uri[len("rdb://"):]
    try:
        return Connection(_REGISTRY[name])
    except KeyError:
        raise SchemaError("no registered database %r" % name) from None
