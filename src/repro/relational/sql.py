"""A small SQL SELECT dialect over the in-memory engine.

The MIX relational wrapper translates XMAS subqueries into SQL before
opening a cursor; this module supplies the receiving end::

    SELECT * | col [, col ...]
    FROM table
    [WHERE col OP literal [AND ...]]      OP in = <> != < <= > >= LIKE
    [ORDER BY col [ASC|DESC] [, ...]]
    [LIMIT n]

Execution is demand-driven: filtering and projection are generators, so
an unread cursor costs nothing.  ``ORDER BY`` necessarily materializes
its input first -- the relational mirror of the paper's *unbrowsable*
class.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

from .cursor import Cursor
from .schema import SchemaError
from .table import Table

__all__ = ["SQLError", "SelectStatement", "Condition", "OrderKey",
           "parse_select", "execute_select"]


from ..errors import PermanentSourceError


class SQLError(PermanentSourceError):
    """Raised for SQL syntax or semantic errors (permanent: the same
    statement fails the same way on every retry)."""


_TOKEN_RE = re.compile(
    r"\s*(?:"
    r"(?P<string>'(?:[^']|'')*')"
    r"|(?P<number>-?\d+(?:\.\d+)?)"
    r"|(?P<op><>|!=|<=|>=|=|<|>)"
    r"|(?P<punct>[,*()])"
    r"|(?P<word>[A-Za-z_][A-Za-z0-9_.]*)"
    r")"
)

_KEYWORDS = {"select", "from", "where", "and", "order", "by", "asc",
             "desc", "limit", "like"}


def _tokenize(text: str) -> List[Tuple[str, str]]:
    tokens: List[Tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if not match or match.end() == pos:
            remainder = text[pos:].strip()
            if not remainder:
                break
            raise SQLError("cannot tokenize SQL at %r" % remainder[:20])
        pos = match.end()
        kind = match.lastgroup
        value = match.group(kind)
        if kind == "word" and value.lower() in _KEYWORDS:
            tokens.append(("kw", value.lower()))
        else:
            tokens.append((kind, value))
    return tokens


@dataclass(frozen=True)
class Condition:
    """One ``column OP literal`` conjunct of the WHERE clause."""

    column: str
    op: str
    value: object

    def evaluate(self, row_value) -> bool:
        if self.op == "like":
            return _like_match(str(self.value), str(row_value))
        if row_value is None:
            return False
        left, right = _align_types(row_value, self.value)
        if self.op == "=":
            return left == right
        if self.op in ("<>", "!="):
            return left != right
        if self.op == "<":
            return left < right
        if self.op == "<=":
            return left <= right
        if self.op == ">":
            return left > right
        if self.op == ">=":
            return left >= right
        raise SQLError("unknown operator %r" % self.op)


def _align_types(left, right):
    """Make the comparison types compatible (SQL-ish weak typing)."""
    if isinstance(left, (int, float)) and isinstance(right, str):
        try:
            right = float(right) if "." in right else int(right)
        except ValueError:
            left = str(left)
    elif isinstance(left, str) and isinstance(right, (int, float)):
        try:
            left = float(left) if "." in left else int(left)
        except ValueError:
            right = str(right)
    return left, right


def _like_match(pattern: str, value: str) -> bool:
    regex = re.escape(pattern).replace("%", ".*").replace("_", ".")
    return re.fullmatch(regex, value) is not None


@dataclass(frozen=True)
class OrderKey:
    column: str
    descending: bool = False


@dataclass
class SelectStatement:
    """Parsed form of a SELECT statement."""

    columns: Optional[List[str]]  # None means '*'
    table: str
    conditions: List[Condition] = field(default_factory=list)
    order_by: List[OrderKey] = field(default_factory=list)
    limit: Optional[int] = None


class _TokenStream:
    def __init__(self, tokens: List[Tuple[str, str]]):
        self.tokens = tokens
        self.pos = 0

    def peek(self) -> Optional[Tuple[str, str]]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> Tuple[str, str]:
        token = self.peek()
        if token is None:
            raise SQLError("unexpected end of SQL")
        self.pos += 1
        return token

    def expect_kw(self, keyword: str) -> None:
        token = self.next()
        if token != ("kw", keyword):
            raise SQLError("expected %s, got %r" % (keyword.upper(), token[1]))

    def at_kw(self, keyword: str) -> bool:
        return self.peek() == ("kw", keyword)


def parse_select(sql: str) -> SelectStatement:
    """Parse one SELECT statement into its AST."""
    stream = _TokenStream(_tokenize(sql))
    stream.expect_kw("select")

    columns: Optional[List[str]]
    if stream.peek() == ("punct", "*"):
        stream.next()
        columns = None
    else:
        columns = [_expect_name(stream)]
        while stream.peek() == ("punct", ","):
            stream.next()
            columns.append(_expect_name(stream))

    stream.expect_kw("from")
    table = _expect_name(stream)

    statement = SelectStatement(columns=columns, table=table)

    if stream.at_kw("where"):
        stream.next()
        statement.conditions.append(_parse_condition(stream))
        while stream.at_kw("and"):
            stream.next()
            statement.conditions.append(_parse_condition(stream))

    if stream.at_kw("order"):
        stream.next()
        stream.expect_kw("by")
        statement.order_by.append(_parse_order_key(stream))
        while stream.peek() == ("punct", ","):
            stream.next()
            statement.order_by.append(_parse_order_key(stream))

    if stream.at_kw("limit"):
        stream.next()
        kind, value = stream.next()
        if kind != "number" or "." in value:
            raise SQLError("LIMIT expects an integer")
        statement.limit = int(value)

    if stream.peek() is not None:
        raise SQLError("trailing tokens after statement: %r"
                       % (stream.peek()[1],))
    return statement


def _expect_name(stream: _TokenStream) -> str:
    kind, value = stream.next()
    if kind != "word":
        raise SQLError("expected an identifier, got %r" % value)
    return value


def _parse_condition(stream: _TokenStream) -> Condition:
    column = _expect_name(stream)
    kind, op = stream.next()
    if kind == "kw" and op == "like":
        op = "like"
    elif kind != "op":
        raise SQLError("expected a comparison operator, got %r" % op)
    value = _parse_literal(stream)
    return Condition(column, op, value)


def _parse_order_key(stream: _TokenStream) -> OrderKey:
    column = _expect_name(stream)
    descending = False
    if stream.at_kw("desc"):
        stream.next()
        descending = True
    elif stream.at_kw("asc"):
        stream.next()
    return OrderKey(column, descending)


def _parse_literal(stream: _TokenStream):
    kind, value = stream.next()
    if kind == "string":
        return value[1:-1].replace("''", "'")
    if kind == "number":
        return float(value) if "." in value else int(value)
    raise SQLError("expected a literal, got %r" % value)


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------

def execute_select(statement: SelectStatement, table: Table) -> Cursor:
    """Execute a parsed SELECT against ``table``, returning a cursor."""
    if statement.table != table.name:
        raise SQLError(
            "statement targets table %r, got table %r"
            % (statement.table, table.name)
        )
    schema = table.schema
    condition_indexes = [
        (schema.column_index(c.column), c) for c in statement.conditions
    ]
    if statement.columns is None:
        out_names = schema.column_names
        projection = None
    else:
        projection = [schema.column_index(c) for c in statement.columns]
        out_names = list(statement.columns)

    def generate() -> Iterator[Tuple]:
        source: Iterator[Tuple] = table.rows()
        if statement.order_by:
            # ORDER BY must see every row before emitting the first one:
            # the relational analogue of an unbrowsable view.
            keys = [(schema.column_index(k.column), k.descending)
                    for k in statement.order_by]
            rows = list(source)
            for index, descending in reversed(keys):
                rows.sort(key=lambda row: _sort_key(row[index]),
                          reverse=descending)
            source = iter(rows)
        emitted = 0
        for row in source:
            if all(cond.evaluate(row[idx])
                   for idx, cond in condition_indexes):
                if projection is not None:
                    row = tuple(row[i] for i in projection)
                yield row
                emitted += 1
                if statement.limit is not None \
                        and emitted >= statement.limit:
                    return

    return Cursor(out_names, generate())


def _sort_key(value):
    """Total order across None/number/str for ORDER BY."""
    if value is None:
        return (0, "", 0.0)
    if isinstance(value, (int, float)):
        return (1, "", float(value))
    return (2, str(value), 0.0)
