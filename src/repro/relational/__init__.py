"""In-memory relational engine: the substrate behind the MIX relational
wrapper (paper Section 4, Example 5).

Provides schemas, insertion-ordered tables, a small SQL SELECT dialect,
tuple-at-a-time cursors with advance accounting, and a JDBC-flavoured
connection facade resolved from ``rdb://`` URIs.
"""

from .cursor import Cursor
from .database import Connection, Database, connect, register_database
from .schema import Column, ColumnType, SchemaError, TableSchema
from .sql import (
    Condition,
    OrderKey,
    SelectStatement,
    SQLError,
    execute_select,
    parse_select,
)
from .table import Table

__all__ = [
    "Column", "ColumnType", "TableSchema", "SchemaError",
    "Table", "Cursor",
    "Database", "Connection", "connect", "register_database",
    "SQLError", "SelectStatement", "Condition", "OrderKey",
    "parse_select", "execute_select",
]
