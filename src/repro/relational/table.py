"""Tables: ordered collections of typed rows."""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence, Tuple

from .schema import SchemaError, TableSchema

__all__ = ["Table"]


class Table:
    """An in-memory table with insertion-ordered rows.

    Row order is stable and observable: the relational wrapper's hole
    identifiers (``db.table.row_number``) index into this order, so it
    must not change behind a running navigation.
    """

    def __init__(self, schema: TableSchema):
        self.schema = schema
        self._rows: List[Tuple] = []

    @property
    def name(self) -> str:
        return self.schema.name

    def insert(self, values: Sequence) -> None:
        """Append one row (validated and coerced against the schema)."""
        self._rows.append(self.schema.coerce_row(values))

    def insert_many(self, rows: Iterable[Sequence]) -> None:
        for row in rows:
            self.insert(row)

    def row(self, index: int) -> Tuple:
        """The ``index``-th row (0-based)."""
        return self._rows[index]

    def rows(self) -> Iterator[Tuple]:
        """Iterate rows in insertion order."""
        return iter(self._rows)

    def value(self, index: int, column: str):
        """One cell, addressed by row index and column name."""
        return self._rows[index][self.schema.column_index(column)]

    def __len__(self) -> int:
        return len(self._rows)

    def __repr__(self) -> str:
        return "Table(%s, %d rows)" % (self.schema.name, len(self._rows))
