"""The paper's primary contribution under one roof.

``repro.core`` re-exports the navigation-driven evaluation stack -- the
MIX mediator, lazy mediators, the virtual answer document, navigational
complexity, and the client API -- so downstream users can write::

    from repro.core import MIXMediator, Browsability

while the implementation lives in the focused subpackages
(:mod:`repro.mediator`, :mod:`repro.lazy`, :mod:`repro.navigation`,
:mod:`repro.client`).
"""

from ..client.element import XMLElement, open_virtual_document
from ..lazy.base import BindingsDocument, LazyOperator
from ..lazy.build import build_lazy_plan, build_virtual_document
from ..lazy.document import VirtualDocument
from ..mediator.mix import (
    MediatorError,
    MediatorWarning,
    MIXMediator,
    QueryResult,
)
from ..navigation.complexity import Browsability, classify
from ..navigation.counting import CountingDocument, NavCounters
from ..navigation.interface import NavigableDocument, materialize
from ..rewriter.analyzer import classify_plan
from ..rewriter.optimizer import optimize
from ..runtime import (
    CacheManager,
    CacheStats,
    EngineConfig,
    ExecutionContext,
    Tracer,
)
from ..xmas.parser import parse_xmas
from ..xmas.translate import translate

__all__ = [
    "MIXMediator", "MediatorError", "MediatorWarning", "QueryResult",
    "EngineConfig", "ExecutionContext", "CacheManager", "CacheStats",
    "Tracer",
    "XMLElement", "open_virtual_document",
    "LazyOperator", "BindingsDocument", "VirtualDocument",
    "build_lazy_plan", "build_virtual_document",
    "NavigableDocument", "materialize",
    "CountingDocument", "NavCounters",
    "Browsability", "classify", "classify_plan", "optimize",
    "parse_xmas", "translate",
]
