"""The MIX mediator: catalog of wrapped sources and views, XMAS query
processing, and the virtual-answer client handle."""

from .mix import MediatorError, MIXMediator, QueryResult

__all__ = ["MIXMediator", "MediatorError", "QueryResult"]
