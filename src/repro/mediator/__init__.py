"""The MIX mediator: catalog of wrapped sources and views, XMAS query
processing, and the virtual-answer client handle."""

from .mix import MediatorError, MediatorWarning, MIXMediator, QueryResult

__all__ = ["MIXMediator", "MediatorError", "MediatorWarning",
           "QueryResult"]
