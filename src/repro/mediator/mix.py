"""The MIX mediator: catalog, views, query processing (paper Fig. 1).

Query processing follows Section 3's three phases:

1. **Preprocessing** -- parse the XMAS query, compose it with any view
   definitions it references (algebraic inlining), translate to the
   initial algebra plan.
2. **Query rewriting** -- optimize the plan for navigational
   complexity.
3. **Query evaluation** -- build the tree of lazy mediators over the
   registered sources and hand the client a root handle; nothing else
   happens until the client navigates.

Sources can be registered three ways, mirroring Figure 1:

* a ready :class:`NavigableDocument` (``register_source``);
* an LXP wrapper, automatically stacked under the generic buffer
  component (``register_wrapper``);
* another mediator's view (``register_view`` + queries that name it) --
  views compose algebraically by default, or stack as navigable
  sources via ``as_source=True``.
"""

from __future__ import annotations

from typing import Dict, Optional, Union

from ..algebra.eager import evaluate
from ..algebra.operators import Operator, Source, TupleDestroy, walk_plan
from ..buffer.lxp import LXPServer
from ..client.element import XMLElement, open_virtual_document
from ..lazy.build import build_virtual_document
from ..lazy.document import VirtualDocument
from ..navigation.counting import CountingDocument
from ..navigation.interface import NavigableDocument, materialize
from ..rewriter.optimizer import OptimizationTrace, optimize
from ..wrappers.base import buffered
from ..xmas.ast import XMASQuery
from ..xmas.compose import inline_views
from ..xmas.parser import parse_xmas
from ..xmas.translate import translate
from ..xtree.tree import Tree

__all__ = ["MIXMediator", "MediatorError", "QueryResult"]


from ..errors import ReproError


class MediatorError(ReproError):
    """Raised for catalog problems (unknown sources, name clashes)."""


class QueryResult:
    """Everything the mediator knows about one processed query."""

    def __init__(self, mediator: "MIXMediator", plan: TupleDestroy,
                 initial_plan: TupleDestroy,
                 trace: Optional[OptimizationTrace],
                 document: VirtualDocument):
        self.mediator = mediator
        self.plan = plan
        self.initial_plan = initial_plan
        self.optimization_trace = trace
        self.document = document
        self._root: Optional[XMLElement] = None

    @property
    def root(self) -> XMLElement:
        """The client handle to the virtual answer (free of source
        access until navigated)."""
        if self._root is None:
            self._root = open_virtual_document(self.document)
        return self._root

    def materialize(self) -> Tree:
        """Navigate the whole virtual answer into memory."""
        return materialize(self.document)

    def explain(self) -> str:
        """A human-readable report: rewritten plan, rules fired, and
        per-node browsability classification."""
        from ..rewriter.analyzer import classify_plan, explain_plan
        lines = ["plan:"]
        lines.append(self.plan.pretty())
        if self.optimization_trace is not None:
            fired = self.optimization_trace.applied
            lines.append("")
            lines.append("rewrites: %s"
                         % (", ".join(fired) if fired else "none"))
        lines.append("")
        lines.append("browsability: %s" % classify_plan(self.plan))
        lines.append("")
        lines.append(explain_plan(self.plan))
        return "\n".join(lines)


class MIXMediator:
    """A MIX mediator instance over a catalog of sources and views."""

    def __init__(self, optimize_plans: bool = True,
                 cache_enabled: bool = True,
                 use_sigma: bool = False,
                 hybrid: bool = False):
        self.optimize_plans = optimize_plans
        self.cache_enabled = cache_enabled
        #: insert intermediate eager steps above unbrowsable subplans
        #: (Section 6's lazy/eager combination)
        self.hybrid = hybrid
        #: let getDescendants push sibling selection to the sources
        #: (the select(sigma) command of Section 2)
        self.use_sigma = use_sigma
        self._documents: Dict[str, NavigableDocument] = {}
        self._meters: Dict[str, CountingDocument] = {}
        self._views: Dict[str, TupleDestroy] = {}

    # -- catalog -----------------------------------------------------------
    def register_source(self, name: str,
                        document: NavigableDocument,
                        meter: bool = True) -> None:
        """Register a navigable source under ``name``.

        With ``meter=True`` a counting proxy is interposed so per-source
        navigation statistics are available from :attr:`meters`.
        """
        self._check_free(name)
        if meter:
            counted = CountingDocument(document, name=name)
            self._meters[name] = counted
            document = counted
        self._documents[name] = document

    def register_wrapper(self, name: str, server: LXPServer,
                         prefetch: int = 0, meter: bool = True) -> None:
        """Register an LXP wrapper, stacked under the generic buffer."""
        self.register_source(name, buffered(server, prefetch), meter)

    def register_view(self, name: str,
                      query: Union[str, XMASQuery, TupleDestroy],
                      as_source: bool = False) -> None:
        """Register a named XMAS view.

        ``as_source=False`` (default): queries naming the view compose
        with it algebraically (one optimizable plan).
        ``as_source=True``: the view is evaluated as its own lazy
        mediator tower and exposed like a wrapped source (Figure 1
        stacking).
        """
        self._check_free(name)
        plan = self._plan_of(query)
        if as_source:
            document = build_virtual_document(
                plan, self._resolver(), self.cache_enabled,
                self.use_sigma)
            self._documents[name] = document
        else:
            self._views[name] = plan

    def _check_free(self, name: str) -> None:
        if name in self._documents or name in self._views:
            raise MediatorError("name %r is already registered" % name)

    @property
    def meters(self) -> Dict[str, CountingDocument]:
        """Per-source navigation meters (when registered with
        meter=True)."""
        return self._meters

    def total_source_navigations(self) -> int:
        return sum(m.total for m in self._meters.values())

    def reset_meters(self) -> None:
        for meter in self._meters.values():
            meter.reset()

    # -- query processing ---------------------------------------------------
    def _plan_of(self, query: Union[str, XMASQuery, TupleDestroy]
                 ) -> TupleDestroy:
        if isinstance(query, str):
            query = parse_xmas(query)
        if isinstance(query, XMASQuery):
            return translate(query)
        return query

    def _resolver(self):
        documents = self._documents

        def resolve(url: str) -> NavigableDocument:
            try:
                return documents[url]
            except KeyError:
                raise MediatorError(
                    "no source registered for %r (have: %s)"
                    % (url, ", ".join(sorted(documents)) or "none")
                ) from None

        return resolve

    def prepare(self, query: Union[str, XMASQuery, TupleDestroy]
                ) -> QueryResult:
        """Run preprocessing + rewriting and build the lazy plan.

        Returns a QueryResult whose ``root`` is the virtual answer
        handle; no source is touched yet.
        """
        initial = self._plan_of(query)
        if self._views:
            initial = inline_views(initial, self._views)
        self._validate_sources(initial)
        plan = initial
        trace = None
        if self.optimize_plans:
            plan, trace = optimize(initial, hybrid=self.hybrid)
            if not isinstance(plan, TupleDestroy):
                plan = initial  # safety net; optimize preserves roots
        document = build_virtual_document(
            plan, self._resolver(), self.cache_enabled,
            self.use_sigma)
        return QueryResult(self, plan, initial, trace, document)

    def query(self, query: Union[str, XMASQuery, TupleDestroy]
              ) -> XMLElement:
        """The client entry point: an XMLElement root handle over the
        virtual answer document."""
        return self.prepare(query).root

    def query_eager(self, query: Union[str, XMASQuery, TupleDestroy]
                    ) -> Tree:
        """The materializing baseline: evaluate the full answer at
        once (what "current mediator systems" do, per the paper)."""
        initial = self._plan_of(query)
        if self._views:
            initial = inline_views(initial, self._views)
        self._validate_sources(initial)

        def tree_of(url: str) -> Tree:
            return materialize(self._resolver()(url))

        return evaluate(initial, tree_of)

    def _validate_sources(self, plan: Operator) -> None:
        for node in walk_plan(plan):
            if isinstance(node, Source) \
                    and node.url not in self._documents:
                raise MediatorError(
                    "query references unregistered source %r (have: %s)"
                    % (node.url,
                       ", ".join(sorted(self._documents)) or "none"))
