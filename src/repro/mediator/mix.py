"""The MIX mediator: catalog, views, query processing (paper Fig. 1).

Query processing follows Section 3's three phases:

1. **Preprocessing** -- parse the XMAS query, compose it with any view
   definitions it references (algebraic inlining), translate to the
   initial algebra plan.
2. **Query rewriting** -- optimize the plan for navigational
   complexity.
3. **Query evaluation** -- build the tree of lazy mediators over the
   registered sources and hand the client a root handle; nothing else
   happens until the client navigates.

Sources can be registered three ways, mirroring Figure 1:

* a ready :class:`NavigableDocument` (``register_source``);
* an LXP wrapper, automatically stacked under the generic buffer
  component (``register_wrapper``);
* another mediator's view (``register_view`` + queries that name it) --
  views compose algebraically by default, or stack as navigable
  sources via ``as_source=True``.

Configuration lives in one frozen :class:`~repro.runtime.config.
EngineConfig`; every ``prepare()`` creates a fresh
:class:`~repro.runtime.context.ExecutionContext` (config + budgeted
cache registry + tracing hooks) and threads it down the whole operator
tower.  With ``config.pushdown`` on, ``prepare()`` additionally runs
the :mod:`repro.pushdown` compiler pass: maximal single-source
subplans whose wrappers accept the negotiation execute as one native
request each instead of navigation-by-navigation.
"""

from __future__ import annotations

import warnings
from typing import Dict, List, Optional, Tuple, Union

from ..algebra.eager import evaluate
from ..algebra.operators import Operator, Source, TupleDestroy, walk_plan
from ..buffer.lxp import LXPServer
from ..client.element import XMLElement, open_virtual_document
from ..lazy.build import build_virtual_document
from ..lazy.document import VirtualDocument
from ..navigation.counting import CountingDocument, NavCounters
from ..navigation.interface import NavigableDocument, materialize
from ..rewriter.optimizer import OptimizationTrace, optimize
from ..runtime.config import EngineConfig
from ..runtime.context import ExecutionContext, Tracer
from ..runtime.resilience import Clock, resilient_server
from ..wrappers.base import buffered
from ..xmas.ast import XMASQuery
from ..xmas.compose import inline_views
from ..xmas.parser import parse_xmas
from ..xmas.translate import translate
from ..xtree.tree import Tree

__all__ = ["MIXMediator", "MediatorError", "MediatorWarning",
           "QueryResult"]


from ..errors import ReproError
from ..runtime.locks import make_lock


class MediatorError(ReproError):
    """Raised for catalog problems (unknown sources, name clashes)."""


class MediatorWarning(UserWarning):
    """Emitted for recoverable mediator anomalies (e.g. the optimizer
    returning a plan with a non-tupleDestroy root, which is discarded
    in favor of the initial plan)."""


class QueryResult:
    """Everything the mediator knows about one processed query,
    including its :class:`ExecutionContext` (config, caches, tracing)
    and a per-query baseline of the source navigation meters."""

    def __init__(self, mediator: "MIXMediator", plan: TupleDestroy,
                 initial_plan: TupleDestroy,
                 trace: Optional[OptimizationTrace],
                 document: VirtualDocument,
                 context: Optional[ExecutionContext] = None,
                 meter_baseline: Optional[Dict[str, NavCounters]] = None,
                 executed_plan: Optional[Operator] = None,
                 pushdown_decisions: Tuple = ()):
        self.mediator = mediator
        self.plan = plan
        self.initial_plan = initial_plan
        self.optimization_trace = trace
        self.document = document
        self.context = (context if context is not None
                        else ExecutionContext.create())
        self._meter_baseline = dict(meter_baseline or {})
        self._root: Optional[XMLElement] = None
        #: the static AnalysisReport when prepare() ran with analysis
        self.analysis = None
        #: the plan that actually executes: ``plan`` with accepted
        #: chains spliced as PushedSource leaves (== ``plan`` when the
        #: pushdown pass is off or pushed nothing)
        self.executed_plan = executed_plan if executed_plan is not None \
            else plan
        #: the pushdown pass's PushdownDecision records (empty when
        #: the pass did not run)
        self.pushdown_decisions = tuple(pushdown_decisions)

    @property
    def root(self) -> XMLElement:
        """The client handle to the virtual answer (free of source
        access until navigated)."""
        if self._root is None:
            self._root = open_virtual_document(self.document)
        return self._root

    def materialize(self) -> Tree:
        """Navigate the whole virtual answer into memory."""
        return materialize(self.document)

    def connect_remote(self, **kwargs):
        """Open a remote client session onto this query's virtual
        answer (Section 5's mediator/client split).

        Granularity and channel-cost defaults come from the engine
        config; the channel's stats register with the query context,
        so :meth:`stats` covers the wire traffic.  Returns the
        client-side root :class:`XMLElement` and the channel stats.
        """
        from ..client.remote import connect_remote
        kwargs.setdefault("clock", self.mediator.clock)
        return connect_remote(self.document, context=self.context,
                              **kwargs)

    # -- aggregated telemetry ---------------------------------------------
    def stats(self) -> dict:
        """One aggregated report for this query: source navigations
        (since ``prepare()``), per-cache hit/miss/eviction counts, and
        -- for remote sessions -- channel messages/bytes.
        """
        report = self.context.stats_report()
        per_source = {}
        total = NavCounters()
        for name, meter in sorted(self.mediator.meters.items()):
            counters = meter.counters
            baseline = self._meter_baseline.get(name)
            if baseline is not None:
                counters = counters - baseline
            per_source[name] = counters.as_dict()
            total = total + counters
        report["source_navigations"] = {
            "total": total.total,
            "per_source": per_source,
            "by_command": total.as_dict(),
        }
        if self.pushdown_decisions:
            report["pushdown"] = {
                "pushed": sum(1 for d in self.pushdown_decisions
                              if d.pushed),
                "decisions": [d.as_dict()
                              for d in self.pushdown_decisions],
            }
        fc_decisions = self.mediator.fragcache_decisions
        if fc_decisions:
            # Merge with the store counters the context contributed
            # (when the store was registered).
            section = dict(report.get("fragcache") or {})
            section["cached_sources"] = sum(
                1 for d in fc_decisions if d.cached)
            section["decisions"] = [d.as_dict()
                                    for d in fc_decisions]
            report["fragcache"] = section
        return report

    def profile(self):
        """Re-execute this query's plan once under full observation
        and return the :class:`~repro.navigation.profiler.
        NavigationProfile`.

        Builds a second virtual document over the same catalog with
        ``observe_operators`` forced on (the original document -- and
        its caches -- stay untouched), subscribes a collector to the
        session tracer, and materializes the whole answer.  The
        profile reports per-operator and whole-view client->source
        navigation amplification from the resulting span tree.
        """
        from ..navigation.profiler import NavigationProfile
        events = []
        tracer = self.mediator.tracer
        config = self.mediator.config.replace(observe_operators=True)
        context = ExecutionContext(config, tracer=tracer,
                                   metrics=self.mediator.runtime.metrics)
        context.adopt_registries(self.mediator.runtime)
        document = build_virtual_document(
            self.plan, self.mediator._resolver(), context)
        with tracer.subscribed(events.append):
            materialize(document)
        return NavigationProfile.from_events(events)

    def explain(self, analyze: bool = False,
                lint: bool = False) -> str:
        """A human-readable report: rewritten plan, rules fired,
        per-node browsability classification, and the aggregated
        runtime view (source navigations, cache behavior, wire
        traffic).

        With ``analyze=True``, additionally runs the query once under
        full observation (see :meth:`profile`) and appends the
        empirical browsability profile -- observed client->source
        amplification per operator and for the whole view.

        With ``lint=True``, appends the *static* diagnostics: the
        :class:`~repro.analysis.findings.AnalysisReport` attached by
        ``prepare(..., analyze=...)``, or a fresh analysis of this
        plan when none was requested at prepare time.
        """
        from ..rewriter.analyzer import classify_plan, explain_plan
        lines = ["plan:"]
        lines.append(self.plan.pretty())
        if self.optimization_trace is not None:
            fired = self.optimization_trace.applied
            lines.append("")
            lines.append("rewrites: %s"
                         % (", ".join(fired) if fired else "none"))
        lines.append("")
        lines.append("browsability: %s" % classify_plan(self.plan))
        lines.append("")
        lines.append(explain_plan(self.plan))
        if self.pushdown_decisions:
            lines.append("")
            lines.append("pushdown:")
            for decision in self.pushdown_decisions:
                lines.append("  %-6s %s: %s"
                             % ("pushed" if decision.pushed
                                else "kept", decision.url,
                                decision.detail))
        fc_decisions = self.mediator.fragcache_decisions
        if fc_decisions:
            lines.append("")
            lines.append("fragment cache:")
            for decision in fc_decisions:
                lines.append("  %-6s %s: %s"
                             % ("cached" if decision.cached
                                else "kept", decision.url,
                                decision.detail))
        lines.append("")
        lines.extend(self._stats_lines())
        if lint:
            report = self.analysis
            if report is None:
                from ..analysis import analyze_plan
                report = analyze_plan(
                    self.plan, config=self.mediator.config,
                    schemas=dict(self.mediator._schemas))
            lines.append("")
            lines.append("static diagnostics:")
            lines.extend("  " + line
                         for line in report.summary().splitlines())
        if analyze:
            profile = self.profile()
            lines.append("")
            lines.append("browsability profile (observed):")
            lines.extend("  " + line
                         for line in profile.summary().splitlines())
        return "\n".join(lines)

    def _stats_lines(self) -> list:
        stats = self.stats()
        caches = stats["caches"]
        lines = ["runtime:"]
        lines.append("  cache policy: %s, budget=%s"
                     % ("on" if caches["enabled"] else "off",
                        caches["budget"]))
        navigations = stats["source_navigations"]
        lines.append("  source navigations: %d" % navigations["total"])
        for name, counts in sorted(caches["caches"].items()):
            lines.append(
                "  cache %-22s hits=%-6d misses=%-6d evictions=%d"
                % (name, counts["hits"], counts["misses"],
                   counts["evictions"]))
        channels = stats.get("channels")
        if channels:
            lines.append("  channel: %d messages, %d bytes"
                         % (channels["messages"],
                            channels["bytes_transferred"]))
        resilience = stats.get("resilience")
        if resilience:
            lines.append(
                "  resilience: %d retries, %d giveups, %d degraded, "
                "%d breaker opens"
                % (resilience["retries"], resilience["giveups"],
                   resilience["degraded"],
                   resilience["breaker_opens"]))
        fragcache = stats.get("fragcache")
        if fragcache and "hits" in fragcache:
            lines.append(
                "  fragcache: %d hits, %d misses, %d invalidations, "
                "%d view adoptions"
                % (fragcache["hits"], fragcache["misses"],
                   fragcache["invalidations"],
                   fragcache["view_adoptions"]))
        return lines


class MIXMediator:
    """A MIX mediator instance over a catalog of sources and views.

    Configure it with one :class:`EngineConfig`::

        MIXMediator(EngineConfig(cache_budget=256, use_sigma=True))
    """

    def __init__(self, config: Optional[EngineConfig] = None,
                 tracer: Optional[Tracer] = None,
                 clock: Optional[Clock] = None):
        if config is None:
            config = EngineConfig()
        elif not isinstance(config, EngineConfig):
            raise TypeError(
                "config must be an EngineConfig, got %r (the pre-"
                "runtime boolean keywords were removed; pass "
                "MIXMediator(EngineConfig(...)))" % (config,))
        self.config = config
        self.tracer = tracer if tracer is not None else Tracer()
        if config.trace_sample_rate < 1.0 and self.tracer.configured:
            # Head-based sampling: one deterministic verdict per
            # trace id, decided before any span is minted, so the
            # sampled-out path never pays span-bookkeeping cost.
            self.tracer.ensure_trace_id()
            self.tracer.sample(config.trace_sample_rate)
        #: time source for retry backoff and breaker windows (tests
        #: inject a fake clock so nothing really sleeps)
        self.clock = clock
        #: session-level context: buffers registered at source
        #: registration time report through it
        self.runtime = ExecutionContext(config, tracer=self.tracer)
        self._documents: Dict[str, NavigableDocument] = {}
        self._meters: Dict[str, CountingDocument] = {}
        self._views: Dict[str, TupleDestroy] = {}
        #: raw (pre-resilience, pre-buffer) LXP servers advertising
        #: the push capability, keyed by source name -- what the
        #: pushdown compiler pass negotiates with
        self._pushables: Dict[str, LXPServer] = {}
        #: source schema knowledge for the static analyzer (sample
        #: Tree / InferredDTD / SchemaGraph, see register_schema)
        self._schemas: Dict[str, object] = {}
        #: one FragcacheDecision per wrapper registered while
        #: ``config.fragment_cache`` is on (empty otherwise): the
        #: compile-time admissibility record, surfaced through
        #: ``QueryResult.stats()``/``explain()``
        self._fragcache_decisions: List = []
        #: serializes catalog registration: concurrent sessions may
        #: register sources on a shared mediator, and the name-clash
        #: check must be atomic with the insert
        self._catalog_lock = make_lock("mediator.catalog")

    # -- config compatibility views ----------------------------------------
    @property
    def optimize_plans(self) -> bool:
        """Whether the rewriting phase runs (from config)."""
        return self.config.optimize_plans

    @property
    def cache_enabled(self) -> bool:
        """Whether operator caches are on (from config)."""
        return self.config.cache_enabled

    @property
    def use_sigma(self) -> bool:
        """Whether select(sigma) pushdown is on (from config)."""
        return self.config.use_sigma

    @property
    def hybrid(self) -> bool:
        """Whether the optimizer may insert eager steps (from
        config)."""
        return self.config.hybrid

    def _new_context(self) -> ExecutionContext:
        """A fresh per-query execution context (shared tracer), seeded
        with the session-level wrapper registrations so per-query
        ``stats()`` reports cover buffer and resilience counters."""
        context = ExecutionContext(self.config, tracer=self.tracer,
                                   metrics=self.runtime.metrics)
        context.adopt_registries(self.runtime)
        return context

    # -- catalog -----------------------------------------------------------
    def register_source(self, name: str,
                        document: NavigableDocument,
                        meter: bool = True) -> None:
        """Register a navigable source under ``name``.

        With ``meter=True`` a counting proxy is interposed so per-source
        navigation statistics are available from :attr:`meters`.
        """
        counted: Optional[CountingDocument] = None
        if meter:
            counted = CountingDocument(document, name=name,
                                       tracer=self.tracer,
                                       metrics=self.runtime.metrics)
            document = counted
        with self._catalog_lock:
            self._check_free(name)
            if counted is not None:
                self._meters[name] = counted
            self._documents[name] = document
        self.tracer.emit("mediator", "register_source", name=name)

    def register_schema(self, name: str, schema) -> None:
        """Declare what source ``name``'s documents look like.

        ``schema`` may be a sample :class:`~repro.xtree.tree.Tree`, an
        :class:`~repro.xmas.dtd.InferredDTD`, or a ready
        :class:`~repro.analysis.schema.SchemaGraph`.  Schema knowledge
        is only consulted by the static analyzer
        (``prepare(..., analyze=...)``): it enables the
        unsatisfiable-path / typo / dead-join checks for this source.
        Execution never reads it.
        """
        with self._catalog_lock:
            self._schemas[name] = schema

    def register_wrapper(self, name: str, server: LXPServer,
                         prefetch: Optional[int] = None,
                         meter: bool = True) -> None:
        """Register an LXP wrapper, stacked under the generic buffer.

        ``prefetch`` defaults to the engine config's buffer lookahead.

        When the engine config's resilience is active (retries, a
        retry deadline, or degrade mode), the wrapper is hardened
        behind a :class:`~repro.runtime.resilience.ResilientLXPServer`
        before the buffer stacks on top: every ``fill`` the buffer
        issues gets the retry/breaker/degradation treatment, and the
        per-source counters surface through ``QueryResult.stats()``.

        A wrapper advertising the push capability (``push_compile``,
        see :mod:`repro.wrappers.base`) is additionally recorded for
        the pushdown compiler pass; with ``config.pushdown`` off the
        record is never consulted.

        With ``config.fragment_cache`` on, an *admissible* wrapper
        (versioned snapshots, no side effects, browsable export --
        see :func:`repro.runtime.fragcache.admissible`) is routed
        through the process-wide fragment store: fills consult the
        store before touching the source, and when the store already
        holds the complete view at the wrapper's current snapshot
        version the source is adopted as a pre-filled buffer without
        a single source navigation.  The caching seam sits *below*
        the resilience layer, so degraded ``<mix:error>``
        placeholders are never cached.
        """
        if prefetch is None:
            prefetch = self.config.prefetch
        raw_server = server
        stats = getattr(server, "stats", None)
        if stats is not None and hasattr(stats, "metrics"):
            # Wire the LXP fragment meter into the session metrics so
            # fills/bytes shipped by this wrapper land in the registry.
            stats.metrics = self.runtime.metrics
            stats.source = name
        prefill_tree = None
        if self.config.fragment_cache:
            # Deferred import: with the default off, the fragment
            # cache module is never even loaded.
            from ..runtime.fragcache import fragment_cached, \
                shared_store
            store = shared_store()
            server, prefill_tree, decision = fragment_cached(
                name, server, store=store, tracer=self.tracer)
            self.runtime.register_fragcache(store.stats)
            with self._catalog_lock:
                self._fragcache_decisions.append(decision)
        server = resilient_server(server, self.config, name=name,
                                  clock=self.clock,
                                  tracer=self.tracer,
                                  context=self.runtime)
        if prefill_tree is not None:
            from ..buffer.component import BufferComponent
            buffer = BufferComponent.prefilled(
                prefill_tree, tracer=self.tracer, name=name)
        else:
            buffer = buffered(server, prefetch,
                              workers=self.config.prefetch_workers,
                              batch=self.config.batch_navigations,
                              tracer=self.tracer, name=name)
        if hasattr(buffer, "stats"):
            self.runtime.register_buffer(name, buffer.stats)
        self.register_source(name, buffer, meter)
        if hasattr(raw_server, "push_compile"):
            with self._catalog_lock:
                self._pushables[name] = raw_server

    def register_view(self, name: str,
                      query: Union[str, XMASQuery, TupleDestroy],
                      as_source: bool = False) -> None:
        """Register a named XMAS view.

        ``as_source=False`` (default): queries naming the view compose
        with it algebraically (one optimizable plan).
        ``as_source=True``: the view is evaluated as its own lazy
        mediator tower and exposed like a wrapped source (Figure 1
        stacking).
        """
        plan = self._plan_of(query)
        if as_source:
            document = build_virtual_document(
                plan, self._resolver(), self._new_context())
            with self._catalog_lock:
                self._check_free(name)
                self._documents[name] = document
        else:
            with self._catalog_lock:
                self._check_free(name)
                self._views[name] = plan

    def _check_free(self, name: str) -> None:
        if name in self._documents or name in self._views:
            raise MediatorError("name %r is already registered" % name)

    @property
    def fragcache_decisions(self) -> Tuple:
        """The admissibility decisions of every wrapper registered
        under ``config.fragment_cache`` (empty when the cache is
        off)."""
        with self._catalog_lock:
            return tuple(self._fragcache_decisions)

    @property
    def meters(self) -> Dict[str, CountingDocument]:
        """Per-source navigation meters (when registered with
        meter=True)."""
        return self._meters

    def total_source_navigations(self) -> int:
        return sum(m.total for m in self._meters.values())

    def reset_meters(self) -> None:
        for meter in self._meters.values():
            meter.reset()

    # -- query processing ---------------------------------------------------
    def _plan_of(self, query: Union[str, XMASQuery, TupleDestroy]
                 ) -> TupleDestroy:
        if isinstance(query, str):
            query = parse_xmas(query)
        if isinstance(query, XMASQuery):
            return translate(query)
        return query

    def _resolver(self):
        documents = self._documents

        def resolve(url: str) -> NavigableDocument:
            try:
                return documents[url]
            except KeyError:
                raise MediatorError(
                    "no source registered for %r (have: %s)"
                    % (url, ", ".join(sorted(documents)) or "none")
                ) from None

        return resolve

    def prepare(self, query: Union[str, XMASQuery, TupleDestroy],
                analyze: Optional[str] = None) -> QueryResult:
        """Run preprocessing + rewriting and build the lazy plan.

        Returns a QueryResult whose ``root`` is the virtual answer
        handle; no source is touched yet.  The result carries a fresh
        :class:`ExecutionContext` holding this query's caches and
        tracing hooks.

        ``analyze`` runs the static plan analyzer over the plan that
        will execute (default: ``config.static_analysis``):

        * ``"off"`` -- skip (the analyzer is not even imported);
        * ``"static"`` -- attach the :class:`~repro.analysis.findings.
          AnalysisReport` as ``result.analysis`` and raise
          :class:`~repro.errors.StaticAnalysisError` on *error*
          findings;
        * ``"strict"`` -- additionally raise on warnings.
        """
        context = self._new_context()
        context.trace("mediator", "prepare.begin")
        initial = self._plan_of(query)
        if self._views:
            initial = inline_views(initial, self._views)
        self._validate_sources(initial)
        plan = initial
        trace = None
        if self.config.optimize_plans:
            plan, trace = optimize(initial, hybrid=self.config.hybrid)
            context.trace("mediator", "optimize",
                          applied=tuple(trace.applied) if trace else ())
            if not isinstance(plan, TupleDestroy):
                # The optimizer must preserve the tupleDestroy root; a
                # different root means a rewrite rule misfired.  Fall
                # back to the initial plan, but loudly: silently
                # swallowing the anomaly hid real rule bugs.
                warnings.warn(
                    "optimizer returned a %s-rooted plan instead of "
                    "tupleDestroy; discarding the rewrite and using "
                    "the initial plan"
                    % type(plan).__name__,
                    MediatorWarning, stacklevel=2)
                context.trace("mediator", "optimizer.discarded_result",
                              got=type(plan).__name__)
                plan = initial
        report = self._analyze_plan(plan, analyze, context)
        executed: Operator = plan
        decisions: List = []
        if self.config.pushdown and self._pushables:
            from ..pushdown.compiler import compile_pushdown
            with context.span("pushdown", "compile"):
                executed, decisions = compile_pushdown(
                    plan, dict(self._pushables), context)
        document = build_virtual_document(
            executed, self._resolver(), context)
        baseline = {name: meter.counters.snapshot()
                    for name, meter in self._meters.items()}
        context.trace("mediator", "prepare.end")
        result = QueryResult(self, plan, initial, trace, document,
                             context=context, meter_baseline=baseline,
                             executed_plan=executed,
                             pushdown_decisions=tuple(decisions))
        result.analysis = report
        return result

    def _analyze_plan(self, plan: TupleDestroy,
                      analyze: Optional[str],
                      context: ExecutionContext):
        """Run the static analyzer when requested; returns the report
        (or None when analysis is off).  Raises StaticAnalysisError
        when the mode rejects the plan.  The import is deferred so the
        default path never loads the analysis package."""
        mode = analyze if analyze is not None \
            else self.config.static_analysis
        if mode == "off":
            return None
        if mode not in ("static", "strict"):
            raise MediatorError(
                "analyze must be 'off', 'static' or 'strict', not %r"
                % (mode,))
        from ..analysis import analyze_plan
        from ..errors import StaticAnalysisError
        report = analyze_plan(plan, config=self.config,
                              schemas=dict(self._schemas))
        context.trace("mediator", "static_analysis",
                      verdict=report.verdict,
                      errors=len(report.errors),
                      warnings=len(report.warnings))
        rejected = report.errors or (mode == "strict"
                                     and report.warnings)
        if rejected:
            raise StaticAnalysisError(
                "static analysis rejected the plan (%d error(s), "
                "%d warning(s)):\n%s"
                % (len(report.errors), len(report.warnings),
                   report.summary()),
                report=report)
        return report

    def query(self, query: Union[str, XMASQuery, TupleDestroy],
              analyze: Optional[str] = None) -> XMLElement:
        """The client entry point: an XMLElement root handle over the
        virtual answer document.

        ``analyze="static"`` vets the plan with the static analyzer
        first (see :meth:`prepare`); hostile or broken views are
        rejected before any source is touched.
        """
        return self.prepare(query, analyze=analyze).root

    def query_eager(self, query: Union[str, XMASQuery, TupleDestroy]
                    ) -> Tree:
        """The materializing baseline: evaluate the full answer at
        once (what "current mediator systems" do, per the paper)."""
        initial = self._plan_of(query)
        if self._views:
            initial = inline_views(initial, self._views)
        self._validate_sources(initial)

        def tree_of(url: str) -> Tree:
            return materialize(self._resolver()(url))

        return evaluate(initial, tree_of)

    def _validate_sources(self, plan: Operator) -> None:
        for node in walk_plan(plan):
            if isinstance(node, Source) \
                    and node.url not in self._documents:
                raise MediatorError(
                    "query references unregistered source %r (have: %s)"
                    % (node.url,
                       ", ".join(sorted(self._documents)) or "none"))
