"""Pass 3: cost and cardinality bounding (C-codes).

Assigns every node a *cardinality degree* -- the exponent ``k`` in the
``O(n^k)`` bound on the node's output cardinality, ``n`` being the
total source size -- by structural induction (sources are ``O(1)``
singletons, each getDescendants multiplies by a data-dependent fan-out,
join degrees add, groupBy cannot exceed its input).  On top of the
degrees it reports:

* ``C001`` unbounded navigation amplification: an operator that both
  forces a full input scan and sits over input whose size grows with
  the sources -- a single client ``down`` can trigger navigation
  proportional to an entire source list;
* ``C010`` unbounded inner-join cache: the join's inner memo is
  evictable, but the current :class:`EngineConfig` sets no
  ``cache_budget``, so one query may cache the whole inner input;
* ``C011`` unbounded operator state: non-evictable evaluation state
  (orderBy's buffer, distinct's seen-set, groupBy's key table, ...)
  that no cache budget bounds, growing with the consumed input.

``C010``/``C011`` are advisory (info): unbounded memory is the
configured default, but the production checklist wants it visible.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..algebra import operators as ops
from ..lazy.build import STATEFUL_OPERATORS
from ..runtime.config import EngineConfig
from .findings import Finding
from .walk import walk_with_paths

__all__ = ["cost_pass", "cardinality_degree"]


def cardinality_degree(plan: ops.Operator) -> int:
    """The exponent ``k`` of the ``O(n^k)`` output-cardinality bound."""
    children = [cardinality_degree(child) for child in plan.inputs]
    if isinstance(plan, (ops.Source, ops.Constant)):
        return max(children) if children else 0
    if isinstance(plan, ops.GetDescendants):
        # every binding can fan out to a data-dependent number of
        # descendants: one more factor of n
        return children[0] + 1
    if isinstance(plan, ops.Join):
        return children[0] + children[1]
    if isinstance(plan, (ops.Union,)):
        return max(children)
    if isinstance(plan, ops.Difference):
        return children[0]
    if isinstance(plan, ops.GroupBy):
        # groups cannot outnumber the input; a keyless groupBy emits
        # exactly one group
        return 0 if not plan.group_vars else children[0]
    return children[0] if children else 0


def cost_pass(plan: ops.Operator,
              config: Optional[EngineConfig] = None) -> List[Finding]:
    config = config or EngineConfig()
    findings: List[Finding] = []
    degrees: Dict[int, int] = {}
    for path, node in walk_with_paths(plan):
        degrees[id(node)] = cardinality_degree(node)

    for path, node in walk_with_paths(plan):
        input_degree = max(
            (degrees[id(child)] for child in node.inputs), default=0)
        scans_growing_input = input_degree >= 1

        if isinstance(node, (ops.OrderBy, ops.Difference,
                             ops.Materialize)) \
                and scans_growing_input:
            findings.append(Finding(
                "C001",
                "%s over O(n^%d) input: one client navigation may "
                "trigger source navigation proportional to an entire "
                "source list%s" % (
                    type(node).__name__.lower(), input_degree,
                    "" if (config.hybrid
                           or isinstance(node, ops.Materialize))
                    else "; hybrid=True would buffer this step"),
                node_path=path, signature=node.signature(),
                data={"input_degree": input_degree}))

        if isinstance(node, ops.Join) and config.cache_enabled \
                and config.cache_budget is None:
            inner_degree = degrees[id(node.right)]
            if inner_degree >= 1:
                findings.append(Finding(
                    "C010",
                    "inner input is O(n^%d) and cache_budget is "
                    "unset: the join.inner memo may cache the whole "
                    "inner input; set EngineConfig.cache_budget to "
                    "bound it (eviction is answer-preserving)"
                    % inner_degree,
                    node_path=path, signature=node.signature(),
                    data={"inner_degree": inner_degree,
                          "cache_enabled": config.cache_enabled}))

        state = STATEFUL_OPERATORS.get(type(node))
        if state is not None and not isinstance(node, ops.Join) \
                and scans_growing_input:
            findings.append(Finding(
                "C011",
                "%s keeps %s: non-evictable state grows with its "
                "O(n^%d) input regardless of cache_budget" % (
                    type(node).__name__.lower(), state, input_degree),
                node_path=path, signature=node.signature(),
                data={"state": state, "input_degree": input_degree}))
    return findings
