"""Static plan diagnostics: compile-time browsability, schema, cost,
rewrite, and pushdown analysis over XMAS algebra plans (the
query-compiler counterpart of the PR 4 *empirical* navigation
profiler).

Entry points:

* :func:`analyze_plan` / :func:`analyze_query` -- run the five passes,
* :class:`AnalysisReport` / :class:`Finding` / :data:`CODES` -- the
  structured result model,
* :class:`SchemaGraph` -- source schema knowledge for the path checker,
* ``repro lint`` (CLI) and ``MIXMediator.prepare(..., analyze=...)``
  -- the wired-in surfaces.

Nothing here is imported by the execution path unless analysis is
requested: the default query path stays byte-identical.
"""

from .analyzer import analyze_plan, analyze_query
from .browsability import browsability_pass
from .cost import cardinality_degree, cost_pass
from .examples_scan import ExampleQuery, extract_queries, scan_examples
from .findings import (
    CODES,
    AnalysisReport,
    CodeInfo,
    Finding,
    Severity,
)
from .pushdown import pushdown_pass
from .rewrites import rewrites_pass
from .schema import SchemaGraph, schema_pass, static_truth
from .walk import node_at, walk_with_paths

__all__ = [
    "analyze_plan", "analyze_query",
    "AnalysisReport", "Finding", "Severity", "CodeInfo", "CODES",
    "SchemaGraph", "static_truth",
    "browsability_pass", "schema_pass", "cost_pass", "rewrites_pass",
    "pushdown_pass",
    "cardinality_degree",
    "ExampleQuery", "extract_queries", "scan_examples",
    "walk_with_paths", "node_at",
]
