"""Pass 4: rewrite hints (R-codes) -- surfaced, never applied.

Dry-runs the optimizer's local rule set over every node and reports
where a rule *would* fire (``R001``); on an optimized plan the rules
have reached fixpoint and this stays silent, so hints only appear for
un-optimized plans or rules the fixpoint loop cannot see.  On top of
the rule set, structural redundancy patterns the optimizer does not
rewrite yet:

* ``R010`` a ``concatenate`` of a single variable whose output only
  feeds element construction -- collapsible into the consumer;
* ``R011`` a ``project`` that keeps exactly its input schema;
* ``R012`` identical stacked operators (``distinct`` over
  ``distinct``, ``materialize`` over ``materialize``, ``orderBy``
  directly under ``orderBy``).

All hints are informational: the analyzer never mutates the plan.
"""

from __future__ import annotations

from typing import List

from ..algebra import operators as ops
from ..rewriter.rules import ALL_RULES
from .findings import Finding
from .walk import walk_with_paths

__all__ = ["rewrites_pass"]


def rewrites_pass(plan: ops.Operator) -> List[Finding]:
    findings: List[Finding] = []
    uses = _variable_uses(plan)
    for path, node in walk_with_paths(plan):
        for name, rule in ALL_RULES:
            if rule(node) is not None:
                findings.append(Finding(
                    "R001",
                    "rewrite rule %r applies here but was not "
                    "applied; run the optimizer (optimize_plans) to "
                    "pick it up" % name,
                    node_path=path, signature=node.signature(),
                    data={"rule": name}))

        if isinstance(node, ops.Concatenate) \
                and len(node.in_vars) == 1 \
                and uses.get(node.out_var, 0) <= 1:
            findings.append(Finding(
                "R010",
                "concatenate of the single variable $%s is the "
                "identity on its value; the consumer can read $%s "
                "directly" % (node.in_vars[0], node.in_vars[0]),
                node_path=path, signature=node.signature(),
                data={"variable": node.in_vars[0]}))

        if isinstance(node, ops.Project) \
                and node.variables == node.child.output_variables():
            findings.append(Finding(
                "R011",
                "project keeps exactly its input schema (%s); it is "
                "the identity"
                % ", ".join("$" + v for v in node.variables),
                node_path=path, signature=node.signature(),
                data={"variables": list(node.variables)}))

        if _stacked_duplicate(node):
            findings.append(Finding(
                "R012",
                "%s is stacked directly on an identical %s; the "
                "outer one is redundant"
                % (type(node).__name__.lower(),
                   type(node).__name__.lower()),
                node_path=path, signature=node.signature(),
                data={"operator": type(node).__name__}))
    return findings


def _stacked_duplicate(node: ops.Operator) -> bool:
    if isinstance(node, ops.Distinct):
        return isinstance(node.child, ops.Distinct)
    if isinstance(node, ops.Materialize):
        return isinstance(node.child, ops.Materialize)
    if isinstance(node, ops.OrderBy):
        return (isinstance(node.child, ops.OrderBy)
                and node.child.variables == node.variables
                and node.child.descending == node.descending)
    return False


def _variable_uses(plan: ops.Operator) -> dict:
    """How many operators *read* each variable (not counting the
    binding site)."""
    uses: dict = {}

    def bump(var: str) -> None:
        uses[var] = uses.get(var, 0) + 1

    for _, node in walk_with_paths(plan):
        if isinstance(node, ops.GetDescendants):
            bump(node.parent_var)
        elif isinstance(node, (ops.Select, ops.Join)):
            for var in node.predicate.variables():
                bump(var)
        elif isinstance(node, ops.Project):
            for var in node.variables:
                bump(var)
        elif isinstance(node, ops.GroupBy):
            for var in node.group_vars:
                bump(var)
            for var, _out in node.aggregations:
                bump(var)
        elif isinstance(node, ops.OrderBy):
            for var in node.variables:
                bump(var)
        elif isinstance(node, ops.Concatenate):
            for var in node.in_vars:
                bump(var)
        elif isinstance(node, ops.CreateElement):
            bump(node.content_var)
            if node.label_var:
                bump(node.label_var)
        elif isinstance(node, ops.TupleDestroy):
            bump(node.var)
        elif isinstance(node, ops.Rename):
            for var in node.mapping:
                bump(var)
    return uses
