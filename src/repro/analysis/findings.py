"""Structured findings: codes, severities, and the analysis report.

Every diagnostic the static analyzer can emit has a *stable code*
(``B001``, ``S010``, ...) registered in :data:`CODES`; the registry is
the single source of a code's default severity and title, and the
documentation table in PROTOCOLS.md is tested against it.  A
:class:`Finding` pins one occurrence to a plan node (provenance path +
signature); an :class:`AnalysisReport` aggregates the findings of one
plan together with the whole-view browsability verdict and renders as
text or machine-readable JSON.

Severity semantics
------------------
``error``
    The plan is wrong or cannot produce what it promises (an
    unsatisfiable path, a join that can never match).  ``lint`` exits 2.
``warning``
    The plan works but can hurt at scale (an unbrowsable view, an
    unbounded amplification).  ``lint`` exits 1.
``info``
    Advisory: rewrite opportunities, configuration suggestions.
    Never affects the exit code unless ``--fail-on info``.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

__all__ = ["Severity", "CodeInfo", "CODES", "Finding", "AnalysisReport"]


class Severity(enum.Enum):
    """Finding severity, ordered info < warning < error."""

    INFO = "info"
    WARNING = "warning"
    ERROR = "error"

    def __str__(self) -> str:
        return self.value

    @property
    def rank(self) -> int:
        return _SEVERITY_RANK[self]

    @classmethod
    def parse(cls, text: str) -> "Severity":
        for sev in cls:
            if sev.value == text:
                return sev
        raise ValueError("unknown severity %r (expected %s)"
                         % (text, "/".join(s.value for s in cls)))


_SEVERITY_RANK = {Severity.INFO: 0, Severity.WARNING: 1,
                  Severity.ERROR: 2}


@dataclass(frozen=True)
class CodeInfo:
    """Registry entry for one diagnostic code."""

    code: str
    severity: Severity
    title: str
    summary: str


def _registry(*entries: CodeInfo) -> Dict[str, CodeInfo]:
    table: Dict[str, CodeInfo] = {}
    for entry in entries:
        if entry.code in table:
            raise ValueError("duplicate code %s" % entry.code)
        table[entry.code] = entry
    return table


#: The stable code registry.  B = browsability, S = schema/path,
#: C = cost/cardinality, R = rewrite hints, P = pushdown.  Codes are
#: append-only: retired codes keep their number reserved.
CODES: Dict[str, CodeInfo] = _registry(
    CodeInfo("B001", Severity.WARNING, "unbrowsable-view",
             "the whole view is unbrowsable: some client navigation "
             "must consume a source list entirely"),
    CodeInfo("B002", Severity.WARNING, "unbrowsable-operator",
             "this operator forces a full input scan before its first "
             "output"),
    CodeInfo("B003", Severity.INFO, "composed-collection-navigation",
             "getDescendants navigates a collected list; its class is "
             "the composition of path and collection streaming class"),
    CodeInfo("B010", Severity.INFO, "sigma-upgrade-available",
             "a labeled path would become bounded browsable with "
             "select(sigma) pushdown (use_sigma)"),
    CodeInfo("S010", Severity.ERROR, "unsatisfiable-path",
             "no path in the source schema can ever match this "
             "regular path expression"),
    CodeInfo("S011", Severity.WARNING, "element-name-typo",
             "a path label does not occur in the source schema but "
             "closely resembles one that does"),
    CodeInfo("S020", Severity.WARNING, "dead-select-branch",
             "a selection predicate is statically false (or true): "
             "the branch can never fire"),
    CodeInfo("S021", Severity.ERROR, "join-never-matches",
             "a join key can never bind: its predicate is statically "
             "false or a key variable has unsatisfiable provenance"),
    CodeInfo("C001", Severity.WARNING, "unbounded-amplification",
             "one client navigation may translate into source "
             "navigation proportional to an entire source list"),
    CodeInfo("C010", Severity.INFO, "unbounded-join-cache",
             "the inner join cache is unbounded under the current "
             "EngineConfig cache budget"),
    CodeInfo("C011", Severity.INFO, "unbounded-operator-state",
             "a stateful operator accumulates non-evictable state "
             "proportional to its input"),
    CodeInfo("R001", Severity.INFO, "rewrite-available",
             "a rewrite rule applies but was not applied (pushdown, "
             "merge, fusion)"),
    CodeInfo("R010", Severity.INFO, "redundant-concatenate",
             "a concatenate of a single variable is collapsible into "
             "its consumer"),
    CodeInfo("R011", Severity.INFO, "redundant-project",
             "a project keeps exactly its input schema"),
    CodeInfo("R012", Severity.INFO, "redundant-duplicate-operator",
             "an operator is stacked directly on an identical one "
             "(distinct over distinct, materialize over materialize)"),
    CodeInfo("R013", Severity.INFO, "pushdown-available",
             "a maximal single-source chain compiles to one native "
             "request (merged SELECT, page drain, extent query, "
             "document scan)"),
    CodeInfo("P001", Severity.INFO, "pushdown-disabled",
             "the plan has pushable single-source chains but "
             "EngineConfig.pushdown is off, so they evaluate "
             "navigation-by-navigation"),
    CodeInfo("X001", Severity.ERROR, "query-does-not-compile",
             "the query text fails to parse, translate, or validate"),
)


@dataclass(frozen=True)
class Finding:
    """One diagnostic occurrence, pinned to a plan node.

    ``node_path`` is the child-index path from the plan root
    ("0.1.0": first child's second child's first child); together with
    ``signature`` it identifies the node stably across re-analysis of
    the same plan.
    """

    code: str
    message: str
    node_path: str = ""
    signature: str = ""
    severity: Optional[Severity] = None
    data: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.code not in CODES:
            raise ValueError("unregistered finding code %r" % self.code)
        if self.severity is None:
            object.__setattr__(self, "severity",
                               CODES[self.code].severity)

    @property
    def title(self) -> str:
        return CODES[self.code].title

    def render(self) -> str:
        where = " at %s" % self.signature if self.signature else ""
        return "%s %s [%s]%s: %s" % (
            str(self.severity).upper(), self.code, self.title, where,
            self.message)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "code": self.code,
            "title": self.title,
            "severity": str(self.severity),
            "message": self.message,
            "node_path": self.node_path,
            "signature": self.signature,
            "data": dict(self.data),
        }


class AnalysisReport:
    """All findings of one analyzed plan, plus the overall verdict."""

    def __init__(self, findings: Iterable[Finding],
                 verdict: str = "",
                 plan_signature: str = "",
                 subject: str = "",
                 suppressed: Iterable[str] = ()) -> None:
        self.subject = subject
        self.verdict = verdict
        self.plan_signature = plan_signature
        self.suppressed: Tuple[str, ...] = tuple(suppressed)
        kept: List[Finding] = []
        dropped = 0
        for finding in findings:
            if finding.code in self.suppressed:
                dropped += 1
            else:
                kept.append(finding)
        self.findings: List[Finding] = sorted(
            kept, key=lambda f: (-f.severity.rank, f.code, f.node_path))
        self.suppressed_count = dropped

    # -- aggregation ----------------------------------------------------
    def by_severity(self, severity: Severity) -> List[Finding]:
        return [f for f in self.findings if f.severity is severity]

    @property
    def errors(self) -> List[Finding]:
        return self.by_severity(Severity.ERROR)

    @property
    def warnings(self) -> List[Finding]:
        return self.by_severity(Severity.WARNING)

    @property
    def max_severity(self) -> Optional[Severity]:
        if not self.findings:
            return None
        return max((f.severity for f in self.findings),
                   key=lambda s: s.rank)

    def counts(self) -> Dict[str, int]:
        counts = {s.value: 0 for s in Severity}
        for finding in self.findings:
            counts[finding.severity.value] += 1
        return counts

    def exit_code(self, fail_on: Severity = Severity.WARNING) -> int:
        """CI exit code: 0 clean, 1 warnings, 2 errors.

        ``fail_on`` is the lowest severity that makes the exit code
        non-zero; findings below it still appear in the report but do
        not fail the build.
        """
        if any(f.severity is Severity.ERROR for f in self.findings) \
                and Severity.ERROR.rank >= fail_on.rank:
            return 2
        if any(f.severity.rank >= fail_on.rank
               for f in self.findings):
            return 1
        return 0

    # -- rendering ------------------------------------------------------
    def summary(self) -> str:
        counts = self.counts()
        lines = []
        if self.subject:
            lines.append("subject: %s" % self.subject)
        if self.verdict:
            lines.append("verdict: %s" % self.verdict)
        lines.append("findings: %d error(s), %d warning(s), %d hint(s)"
                     % (counts["error"], counts["warning"],
                        counts["info"]))
        if self.suppressed_count:
            lines.append("suppressed: %d (%s)"
                         % (self.suppressed_count,
                            ", ".join(self.suppressed)))
        for finding in self.findings:
            lines.append("  " + finding.render())
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "subject": self.subject,
            "verdict": self.verdict,
            "plan": self.plan_signature,
            "counts": self.counts(),
            "suppressed": list(self.suppressed),
            "suppressed_count": self.suppressed_count,
            "findings": [f.to_dict() for f in self.findings],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent,
                          sort_keys=True)

    def __repr__(self) -> str:
        counts = self.counts()
        return "<AnalysisReport %de/%dw/%di>" % (
            counts["error"], counts["warning"], counts["info"])
