"""Pass 1: composed browsability inference (B-codes).

Delegates the class algebra to the static classifier
(:func:`repro.rewriter.analyzer.classify_plan`, which composes
Definition 2 classes through joins, groupBy collections, and
getDescendants paths) and turns the verdicts into findings:

* ``B001`` when the whole view is unbrowsable,
* ``B002`` at each operator that *forces* the full-scan on its own
  (orderBy, difference, materialize outside the hybrid idiom),
* ``B003`` informational provenance where a getDescendants navigates a
  collected list and the composed rule applied,
* ``B010`` when a labeled path would become bounded under
  ``use_sigma`` but the configuration has it off.

The whole-view verdict this pass reports is by construction the same
value ``complexity.classify`` targets and the navigation profiler
checks empirically; the agreement suite holds the static side to
"never more optimistic".
"""

from __future__ import annotations

from typing import List, Optional, Set

from ..algebra import operators as ops
from ..navigation.complexity import Browsability
from ..rewriter.analyzer import classify_path, classify_plan
from ..runtime.config import EngineConfig
from .findings import Finding
from .walk import walk_with_paths

__all__ = ["browsability_pass"]


def _collection_vars(plan: ops.Operator) -> Set[str]:
    """Variables bound to collected lists anywhere below ``plan``."""
    collected: Set[str] = set()
    for _, node in walk_with_paths(plan):
        if isinstance(node, ops.GroupBy):
            collected.update(out for _, out in node.aggregations)
        elif isinstance(node, ops.Concatenate):
            collected.add(node.out_var)
    return collected


def browsability_pass(plan: ops.Operator,
                      config: Optional[EngineConfig] = None
                      ) -> List[Finding]:
    config = config or EngineConfig()
    sigma = config.use_sigma
    findings: List[Finding] = []

    overall = classify_plan(plan, sigma_available=sigma)
    if overall is Browsability.UNBROWSABLE:
        findings.append(Finding(
            "B001",
            "view is %s: at least one client navigation consumes an "
            "entire source list%s" % (
                overall,
                "" if config.hybrid else
                " (consider hybrid=True to buffer the unbrowsable "
                "step)"),
            node_path="", signature=plan.signature(),
            data={"class": str(overall)}))

    collections = _collection_vars(plan)
    for path, node in walk_with_paths(plan):
        if isinstance(node, (ops.OrderBy, ops.Difference,
                             ops.Materialize)):
            reason = {
                ops.OrderBy: "orderBy cannot emit before its input "
                             "is exhausted",
                ops.Difference: "difference must read its right "
                                "input entirely",
                ops.Materialize: "materialize evaluates its subtree "
                                 "eagerly on first touch",
            }[type(node)]
            findings.append(Finding(
                "B002", reason, node_path=path,
                signature=node.signature(),
                data={"operator": type(node).__name__}))
        elif isinstance(node, ops.GetDescendants):
            own = classify_path(node.path, sigma_available=sigma)
            if node.parent_var in collections:
                composed = classify_plan(node, sigma_available=sigma)
                findings.append(Finding(
                    "B003",
                    "navigates collected list $%s: composed class is "
                    "%s (path alone: %s)"
                    % (node.parent_var, composed, own),
                    node_path=path, signature=node.signature(),
                    data={"collection": node.parent_var,
                          "composed": str(composed),
                          "path_class": str(own)}))
            if not sigma and own is Browsability.BROWSABLE \
                    and classify_path(node.path, sigma_available=True) \
                    is Browsability.BOUNDED:
                findings.append(Finding(
                    "B010",
                    "path %s is %s here but bounded browsable with "
                    "select(sigma) pushdown; enable use_sigma for "
                    "sigma-capable sources" % (node.path, own),
                    node_path=path, signature=node.signature(),
                    data={"path": str(node.path)}))
    return findings
