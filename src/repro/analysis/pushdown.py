"""Pass 5: pushdown opportunities (R013 / P001).

Walks the plan with the same chain recognizer the runtime pushdown
compiler uses (:func:`repro.pushdown.compiled.compile_chain`) and
reports every *maximal* single-source chain with at least one
navigation step as ``R013`` ("this compiles to one native request").
When the analyzed :class:`~repro.runtime.config.EngineConfig` has
``pushdown`` off, one plan-level ``P001`` points out that the chains
will evaluate navigation-by-navigation anyway.

Chains without a navigation step (a bare ``Source`` leaf, possibly
under a project) are not reported: there is nothing for a native
request to fold, so the hint would fire on virtually every plan.

Like every pass, this is advisory only -- the analyzer never mutates
the plan, and whether a wrapper would actually *accept* the chain is a
runtime negotiation this static pass cannot see.
"""

from __future__ import annotations

from typing import List

from ..algebra import operators as ops
from ..pushdown.compiled import CompiledSubplan, compile_chain
from ..runtime.config import EngineConfig
from .findings import Finding
from .walk import walk_with_paths

__all__ = ["pushdown_pass"]


def pushdown_pass(plan: ops.Operator,
                  config: EngineConfig) -> List[Finding]:
    findings: List[Finding] = []
    chains: List[CompiledSubplan] = []
    covered: set = set()
    for path, node in walk_with_paths(plan):
        if any(path.startswith(prefix) for prefix in covered):
            # Inside an already-reported maximal chain: sub-chains of
            # the same source would repeat the hint.
            continue
        compiled = compile_chain(node)
        if compiled is None or not compiled.steps:
            continue
        covered.add(path + "." if path else path)
        chains.append(compiled)
        findings.append(Finding(
            "R013",
            "single-source chain over %r (%d step(s), %d filter(s)) "
            "compiles to one native request"
            % (compiled.url, len(compiled.steps),
               len(compiled.filters)),
            node_path=path, signature=node.signature(),
            data={"url": compiled.url,
                  "steps": len(compiled.steps),
                  "filters": len(compiled.filters)}))
    if chains and not config.pushdown:
        findings.append(Finding(
            "P001",
            "%d pushable chain(s) found but EngineConfig.pushdown is "
            "off; enable it (or --pushdown) to collapse their source "
            "navigation into one native request each"
            % len(chains),
            node_path="", signature=plan.signature(),
            data={"chains": len(chains)}))
    return findings
