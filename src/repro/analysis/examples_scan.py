"""Scan example scripts for XMAS queries and lint each one.

The repository's ``examples/*.py`` keep their queries as module-level
string constants (``QUERY = \"\"\"CONSTRUCT ... WHERE ...\"\"\"``).
This module extracts those constants with :mod:`ast` (no example code
is executed), honors inline suppression comments, and runs the static
analyzer over every query found -- the machinery behind
``repro lint --examples`` and the CI lint job.

Suppression syntax
------------------
A comment on the assignment line or the line directly above it::

    # lint: allow=B001,B002 -- the reorder demo is deliberately slow
    QUERY = \"\"\"CONSTRUCT ...\"\"\"

suppresses the listed codes for that query only.  Suppressed findings
are counted (and listed by code) in the report, never silently gone.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Iterator, List, Optional, Sequence, Tuple

from ..runtime.config import EngineConfig
from .analyzer import analyze_query
from .findings import AnalysisReport

__all__ = ["extract_queries", "scan_examples", "ExampleQuery"]

_ALLOW_RE = re.compile(r"#\s*lint:\s*allow=([A-Z0-9,\s]+)")


class ExampleQuery:
    """One XMAS query constant found in an example file."""

    def __init__(self, path: Path, name: str, text: str,
                 line: int, suppress: Tuple[str, ...]) -> None:
        self.path = path
        self.name = name
        self.text = text
        self.line = line
        self.suppress = suppress

    @property
    def subject(self) -> str:
        return "%s:%s" % (self.path.name, self.name)


def _looks_like_query(text: str) -> bool:
    return "CONSTRUCT" in text and "WHERE" in text


def _suppressions(source_lines: Sequence[str], lineno: int
                  ) -> Tuple[str, ...]:
    """Codes allowed for an assignment starting at 1-based ``lineno``:
    from a trailing comment on that line or a comment directly above.
    """
    codes: List[str] = []
    candidates = []
    if 1 <= lineno <= len(source_lines):
        candidates.append(source_lines[lineno - 1])
    if lineno >= 2:
        candidates.append(source_lines[lineno - 2])
    for line in candidates:
        match = _ALLOW_RE.search(line)
        if match:
            codes.extend(code.strip()
                         for code in match.group(1).split(",")
                         if code.strip())
    return tuple(dict.fromkeys(codes))


def extract_queries(path: Path) -> Iterator[ExampleQuery]:
    """The XMAS query constants of one example file (not executed)."""
    source = path.read_text()
    lines = source.splitlines()
    tree = ast.parse(source, filename=str(path))
    for node in tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if not isinstance(value, ast.Constant) \
                or not isinstance(value.value, str):
            continue
        if not _looks_like_query(value.value):
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                yield ExampleQuery(
                    path, target.id, value.value, node.lineno,
                    _suppressions(lines, node.lineno))


def scan_examples(directory: Path,
                  config: Optional[EngineConfig] = None
                  ) -> List[AnalysisReport]:
    """Lint every query constant under ``directory`` (sorted order).

    Returns one report per query; queries that fail to parse yield no
    report (they are not XMAS text despite the keyword heuristic).
    """
    config = config or EngineConfig()
    reports: List[AnalysisReport] = []
    for path in sorted(directory.glob("*.py")):
        for query in extract_queries(path):
            try:
                _plan, report = analyze_query(
                    query.text, config=config,
                    suppress=query.suppress, subject=query.subject)
            except Exception as error:
                from .findings import Finding
                reports.append(AnalysisReport(
                    [Finding("X001",
                             "query does not compile: %s" % error,
                             signature=query.subject)],
                    verdict="error", subject=query.subject))
                continue
            reports.append(report)
    return reports
