"""Plan traversal with stable node provenance.

Findings pin to plan nodes via a *child-index path* from the root
("" for the root itself, "0" for its first child, "0.1" for that
child's second child).  The path is stable across re-analysis of an
identical plan and cheap to follow by hand next to ``plan.pretty()``.
"""

from __future__ import annotations

from typing import Iterator, Tuple

from ..algebra import operators as ops

__all__ = ["walk_with_paths", "node_at"]


def walk_with_paths(plan: ops.Operator
                    ) -> Iterator[Tuple[str, ops.Operator]]:
    """All nodes of a plan, root first, with their child-index paths."""

    def walk(node: ops.Operator, path: str
             ) -> Iterator[Tuple[str, ops.Operator]]:
        yield path, node
        for index, child in enumerate(node.inputs):
            child_path = ("%s.%d" % (path, index)) if path \
                else str(index)
            yield from walk(child, child_path)

    return walk(plan, "")


def node_at(plan: ops.Operator, path: str) -> ops.Operator:
    """Resolve a child-index path back to its node."""
    node = plan
    if path:
        for part in path.split("."):
            node = node.inputs[int(part)]
    return node
