"""The static plan analyzer: orchestrates the five diagnostic passes.

``analyze_plan`` walks a compiled XMAS algebra plan *before any source
is touched* and returns an :class:`AnalysisReport` combining

1. composed browsability inference   (:mod:`.browsability`, B-codes),
2. schema-aware path checking        (:mod:`.schema`,       S-codes),
3. cost / cardinality bounding       (:mod:`.cost`,         C-codes),
4. rewrite hints                     (:mod:`.rewrites`,     R-codes),
5. pushdown opportunities            (:mod:`.pushdown`,     R013/P001).

``analyze_query`` is the text-level entry: parse, translate, optionally
optimize (mirroring what the mediator would execute), then analyze.

The analyzer is pay-for-use: nothing in this package is imported by
the execution path unless an analysis is requested, so the default
query path stays byte-identical.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence, Tuple, Union

from ..algebra import operators as ops
from ..rewriter.analyzer import classify_plan
from ..rewriter.optimizer import optimize
from ..runtime.config import EngineConfig
from ..xmas.ast import XMASQuery
from ..xmas.parser import parse_xmas
from ..xmas.translate import translate
from .browsability import browsability_pass
from .cost import cost_pass
from .findings import AnalysisReport
from .pushdown import pushdown_pass
from .rewrites import rewrites_pass
from .schema import SchemaSpec, schema_pass

__all__ = ["analyze_plan", "analyze_query"]


def analyze_plan(plan: ops.Operator,
                 config: Optional[EngineConfig] = None,
                 schemas: Optional[Mapping[str, SchemaSpec]] = None,
                 suppress: Sequence[str] = (),
                 subject: str = "") -> AnalysisReport:
    """Run all five static passes over a compiled plan."""
    config = config or EngineConfig()
    plan.validate()
    findings: list = []
    findings.extend(browsability_pass(plan, config))
    findings.extend(schema_pass(plan, schemas))
    findings.extend(cost_pass(plan, config))
    findings.extend(rewrites_pass(plan))
    findings.extend(pushdown_pass(plan, config))
    verdict = str(classify_plan(
        plan, sigma_available=config.use_sigma))
    return AnalysisReport(findings, verdict=verdict,
                          plan_signature=plan.signature(),
                          subject=subject, suppressed=suppress)


def analyze_query(query: Union[str, XMASQuery, ops.Operator],
                  config: Optional[EngineConfig] = None,
                  schemas: Optional[Mapping[str, SchemaSpec]] = None,
                  suppress: Sequence[str] = (),
                  subject: str = ""
                  ) -> Tuple[ops.Operator, AnalysisReport]:
    """Parse/translate/optimize a query the way the mediator would,
    then analyze the plan that would actually execute.

    Returns ``(analyzed_plan, report)``.
    """
    config = config or EngineConfig()
    if isinstance(query, str):
        query = parse_xmas(query)
    if isinstance(query, XMASQuery):
        plan: ops.Operator = translate(query)
    else:
        plan = query
    if config.optimize_plans:
        optimized, _trace = optimize(plan, hybrid=config.hybrid)
        if isinstance(optimized, ops.TupleDestroy) \
                or not isinstance(plan, ops.TupleDestroy):
            plan = optimized
    return plan, analyze_plan(plan, config=config, schemas=schemas,
                              suppress=suppress, subject=subject)
