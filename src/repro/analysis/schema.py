"""Pass 2: DTD/schema-aware path and predicate checking (S-codes).

Given schema knowledge about the sources -- a sample document, an
:class:`~repro.xmas.dtd.InferredDTD`, or an explicit
:class:`SchemaGraph` -- this pass walks the plan bottom-up, tracking
for every bound variable the set of element labels it can possibly
hold, and reports:

* ``S010`` unsatisfiable regular path expressions: the product of the
  path NFA with the schema graph reaches no accepting configuration;
* ``S011`` element-name typos: a path label absent from the schema
  vocabulary but close (difflib) to a label that exists;
* ``S020`` dead select branches: predicates statically false (or
  non-trivially true);
* ``S021`` join keys that can never bind: a statically-false join
  predicate, or a key variable whose provenance is empty.

Schema knowledge is *optional* per source; unknown sources simply
contribute open-world provenance and produce no findings.  The open
world also flows through constructed elements, whose content comes
from the view itself rather than any one source schema.
"""

from __future__ import annotations

import difflib
from typing import (
    Dict, FrozenSet, List, Mapping, Optional, Set, Tuple, Union,
)

from ..algebra import operators as ops
from ..algebra.predicates import (
    And, Comparison, Const, Not, Or, Predicate, TruePredicate, Var,
    compare_values,
)
from ..xmas.dtd import InferredDTD
from ..xtree.path import (
    Alt, Label, Opt, PathExpr, PathNFA, Plus, Seq, Star, Wildcard,
)
from ..xtree.tree import Tree
from .findings import Finding
from .walk import walk_with_paths

__all__ = ["SchemaGraph", "schema_pass", "static_truth"]

#: What callers may register as "the schema of source X".
SchemaSpec = Union["SchemaGraph", Tree, InferredDTD]


class SchemaGraph:
    """Parent->child element-label edges of one source document.

    ``children[label]`` is the set of labels that may appear below
    ``label``; a label mapped to ``None`` has *open* content (anything
    may appear below it), which makes every path through it
    satisfiable.  ``root`` is the label navigation starts from -- the
    document node a ``source`` operator binds.
    """

    def __init__(self, root: str,
                 children: Mapping[str, Optional[Set[str]]]) -> None:
        self.root = root
        self.children: Dict[str, Optional[Set[str]]] = {
            label: (set(kids) if kids is not None else None)
            for label, kids in children.items()}
        self.labels: Set[str] = set(self.children)
        for kids in self.children.values():
            if kids:
                self.labels.update(kids)

    @classmethod
    def from_tree(cls, tree: Tree) -> "SchemaGraph":
        """Infer the graph from a sample document (closed world: the
        sample is taken as exhaustive for its label vocabulary)."""
        children: Dict[str, Optional[Set[str]]] = {}
        stack = [tree]
        while stack:
            node = stack.pop()
            kids = children.setdefault(node.label, set())
            assert kids is not None
            for child in node.children:
                kids.add(child.label)
                stack.append(child)
        return cls(tree.label, children)

    @classmethod
    def from_dtd(cls, dtd: InferredDTD) -> "SchemaGraph":
        """Build the graph from an inferred DTD; elements with open
        content models stay open."""
        children: Dict[str, Optional[Set[str]]] = {}
        pending = [dtd.root]
        while pending:
            name = pending.pop()
            if name in children:
                continue
            kids = dtd.child_names(name)
            children[name] = kids
            if kids:
                pending.extend(kids)
        return cls(dtd.root, children)

    @classmethod
    def coerce(cls, spec: SchemaSpec) -> "SchemaGraph":
        if isinstance(spec, cls):
            return spec
        if isinstance(spec, Tree):
            return cls.from_tree(spec)
        if isinstance(spec, InferredDTD):
            return cls.from_dtd(spec)
        raise TypeError("cannot build a SchemaGraph from %r" % (spec,))

    def child_labels(self, label: str) -> Optional[Set[str]]:
        """Labels allowed below ``label``; None = open content."""
        if label not in self.children:
            return set()
        return self.children[label]


#: (graph or None, possible labels or None-for-unknown).  An *empty*
#: label set means proven-empty provenance (downstream of an
#: unsatisfiable path); ``None`` means "could be anything".
_Prov = Tuple[Optional[SchemaGraph], Optional[FrozenSet[str]]]
_OPEN: _Prov = (None, None)


def _path_labels(path: PathExpr) -> Set[str]:
    """All label atoms mentioned in a path expression."""
    labels: Set[str] = set()

    def visit(expr: PathExpr) -> None:
        if isinstance(expr, Label):
            labels.add(expr.name)
        elif isinstance(expr, Seq):
            for part in expr.parts:
                visit(part)
        elif isinstance(expr, Alt):
            for option in expr.options:
                visit(option)
        elif isinstance(expr, (Star, Plus, Opt)):
            visit(expr.inner)

    visit(path)
    return labels


def _reachable_finals(nfa: PathNFA, graph: SchemaGraph,
                      start_labels: FrozenSet[str]
                      ) -> Optional[FrozenSet[str]]:
    """Product construction: the labels a match can end on, starting
    below any of ``start_labels``.

    Returns the (possibly empty) set of final labels, or ``None`` when
    the walk enters open content -- then nothing can be proven and the
    caller must treat the path as satisfiable with unknown results.
    """
    finals: Set[str] = set()
    seen: Set[Tuple[str, FrozenSet[int]]] = set()
    stack: List[Tuple[str, FrozenSet[int]]] = []

    def push_children(label: str, states: FrozenSet[int]) -> bool:
        """Expand one (label, frontier) configuration; returns False
        on open content (analysis must give up)."""
        kids = graph.child_labels(label)
        if kids is None:
            return False
        for kid in kids:
            nxt = nfa.step(states, kid)
            if not nxt:
                continue
            if nfa.is_accepting(nxt):
                finals.add(kid)
            key = (kid, nxt)
            if key not in seen:
                seen.add(key)
                stack.append(key)
        return True

    for label in start_labels:
        if not push_children(label, nfa.start_states):
            return None
    while stack:
        label, states = stack.pop()
        if not push_children(label, states):
            return None
    return frozenset(finals)


def static_truth(predicate: Predicate) -> Optional[bool]:
    """Tri-state static evaluation of a predicate.

    ``True``/``False`` when the verdict holds for *every* binding
    (constant comparisons, contradictory equality constraints inside a
    conjunction), ``None`` when it depends on the data.
    """
    if isinstance(predicate, TruePredicate):
        return True
    if isinstance(predicate, Comparison):
        if isinstance(predicate.left, Const) \
                and isinstance(predicate.right, Const):
            return compare_values(str(predicate.left.value),
                                  predicate.op,
                                  str(predicate.right.value))
        return None
    if isinstance(predicate, Not):
        inner = static_truth(predicate.inner)
        return None if inner is None else not inner
    if isinstance(predicate, And):
        verdicts = [static_truth(p) for p in predicate.parts]
        if any(v is False for v in verdicts):
            return False
        if _contradictory_equalities(predicate):
            return False
        if all(v is True for v in verdicts):
            return True
        return None
    if isinstance(predicate, Or):
        verdicts = [static_truth(p) for p in predicate.parts]
        if any(v is True for v in verdicts):
            return True
        if all(v is False for v in verdicts):
            return False
        return None
    return None


def _contradictory_equalities(conjunction: And) -> bool:
    """$V = c1 AND $V = c2 with c1 != c2 can never hold."""
    pinned: Dict[str, str] = {}
    for part in conjunction.parts:
        if not isinstance(part, Comparison) or part.op != "=":
            continue
        var, const = None, None
        if isinstance(part.left, Var) and isinstance(part.right, Const):
            var, const = part.left.name, str(part.right.value)
        elif isinstance(part.right, Var) \
                and isinstance(part.left, Const):
            var, const = part.right.name, str(part.left.value)
        if var is None or const is None:
            continue
        if var in pinned and not compare_values(pinned[var], "=",
                                                const):
            return True
        pinned.setdefault(var, const)
    return False


def schema_pass(plan: ops.Operator,
                schemas: Optional[Mapping[str, SchemaSpec]] = None
                ) -> List[Finding]:
    graphs: Dict[str, SchemaGraph] = {
        url: SchemaGraph.coerce(spec)
        for url, spec in (schemas or {}).items()}
    findings: List[Finding] = []
    env: Dict[int, Dict[str, _Prov]] = {}

    def infer(node: ops.Operator, path: str) -> Dict[str, _Prov]:
        merged: Dict[str, _Prov] = {}
        for index, child in enumerate(node.inputs):
            child_path = ("%s.%d" % (path, index)) if path \
                else str(index)
            merged.update(infer(child, child_path))
        out = dict(merged)

        if isinstance(node, ops.Source):
            graph = graphs.get(node.url)
            out[node.out_var] = (
                (graph, frozenset({graph.root})) if graph is not None
                else _OPEN)
        elif isinstance(node, ops.GetDescendants):
            out[node.out_var] = _descend(node, path, merged)
        elif isinstance(node, ops.Constant):
            out[node.out_var] = (None, frozenset({node.value.label}))
        elif isinstance(node, ops.GroupBy):
            for in_var, out_var in node.aggregations:
                # members of the collected list are the in_var values
                out[out_var] = merged.get(in_var, _OPEN)
        elif isinstance(node, ops.Concatenate):
            labels: Optional[Set[str]] = set()
            graph: Optional[SchemaGraph] = None
            for in_var in node.in_vars:
                g, ls = merged.get(in_var, _OPEN)
                if ls is None or labels is None:
                    labels = None
                else:
                    labels.update(ls)
                graph = graph or g
            out[node.out_var] = (
                graph, frozenset(labels) if labels is not None
                else None)
        elif isinstance(node, ops.CreateElement):
            label = node.label_const
            out[node.out_var] = (
                (None, frozenset({label})) if label is not None
                else _OPEN)
        elif isinstance(node, ops.Rename):
            for old, new in node.mapping.items():
                if old in out:
                    out[new] = out.pop(old)
        elif isinstance(node, ops.Select):
            _check_select(node, path, merged)
        elif isinstance(node, ops.Join):
            _check_join(node, path, merged)

        env[id(node)] = out
        return out

    def _descend(node: ops.GetDescendants, path: str,
                 scope: Dict[str, _Prov]) -> _Prov:
        graph, labels = scope.get(node.parent_var, _OPEN)
        nfa = PathNFA(node.path)
        if graph is None or labels is None:
            return (graph, nfa.final_labels())
        if not labels:
            # the parent's provenance is already proven empty -- the
            # S010 was reported where it became empty; don't cascade
            return (graph, frozenset())
        finals = _reachable_finals(nfa, graph, labels)
        if finals is None:  # open content reached: unknown
            return (graph, nfa.final_labels())
        mentioned = _path_labels(node.path)
        typos = {label: difflib.get_close_matches(label,
                                                  sorted(graph.labels),
                                                  n=1)
                 for label in mentioned if label not in graph.labels}
        if not finals:
            hints = "; ".join(
                "did you mean %r instead of %r?" % (close[0], label)
                for label, close in sorted(typos.items()) if close)
            findings.append(Finding(
                "S010",
                "path %s matches nothing below %s in the schema of "
                "the %s source%s" % (
                    node.path,
                    "/".join("<%s>" % l for l in sorted(labels)),
                    _source_of(scope, node.parent_var),
                    " (%s)" % hints if hints else ""),
                node_path=path, signature=node.signature(),
                data={"path": str(node.path),
                      "start_labels": sorted(labels),
                      "suggestions": {label: close[0]
                                      for label, close
                                      in typos.items() if close}}))
            return (graph, frozenset())
        for label, close in sorted(typos.items()):
            if close:
                findings.append(Finding(
                    "S011",
                    "label %r does not occur in the source schema; "
                    "did you mean %r?" % (label, close[0]),
                    node_path=path, signature=node.signature(),
                    data={"label": label, "suggestion": close[0]}))
        return (graph, finals)

    def _source_of(scope: Dict[str, _Prov], var: str) -> str:
        graph, _ = scope.get(var, _OPEN)
        return "<%s>-rooted" % graph.root if graph else "unknown"

    def _check_select(node: ops.Select, path: str,
                      scope: Dict[str, _Prov]) -> None:
        verdict = static_truth(node.predicate)
        if verdict is False:
            findings.append(Finding(
                "S020",
                "predicate %s is statically false: this select "
                "discards every binding" % node.predicate,
                node_path=path, signature=node.signature(),
                data={"predicate": str(node.predicate),
                      "verdict": "false"}))
        elif verdict is True \
                and not isinstance(node.predicate, TruePredicate):
            findings.append(Finding(
                "S020",
                "predicate %s is statically true: this select "
                "filters nothing" % node.predicate,
                node_path=path, signature=node.signature(),
                data={"predicate": str(node.predicate),
                      "verdict": "true"}))

    def _check_join(node: ops.Join, path: str,
                    scope: Dict[str, _Prov]) -> None:
        if static_truth(node.predicate) is False:
            findings.append(Finding(
                "S021",
                "join predicate %s is statically false: the join is "
                "always empty" % node.predicate,
                node_path=path, signature=node.signature(),
                data={"predicate": str(node.predicate)}))
            return
        for var in sorted(node.predicate.variables()):
            _, labels = scope.get(var, _OPEN)
            if labels is not None and not labels:
                findings.append(Finding(
                    "S021",
                    "join key $%s can never bind: its provenance "
                    "path is unsatisfiable, so the join is always "
                    "empty" % var,
                    node_path=path, signature=node.signature(),
                    data={"variable": var}))

    infer(plan, "")
    return findings
