"""Object-database substrate: classes, extents, oids, references and
path traversal (the source behind the OODB-XML wrapper of Figure 1)."""

from .store import (
    OClass,
    OObject,
    ObjectStore,
    OODBError,
    open_store,
    register_store,
)

__all__ = ["OClass", "OObject", "ObjectStore", "OODBError",
           "register_store", "open_store"]
