"""A small object database: classes, extents, and object graphs.

Figure 1 of the paper shows an OODB behind an ``OODB-XML`` wrapper as
one of the three source species.  This substrate provides what that
wrapper needs: named classes with typed-ish attributes, per-class
extents in stable creation order, object identity (oids), references
between objects, and path traversal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

__all__ = ["OODBError", "OClass", "OObject", "ObjectStore",
           "register_store", "open_store"]


from ..errors import PermanentSourceError


class OODBError(PermanentSourceError):
    """Raised for schema violations and unknown names/oids (permanent:
    retrying the same lookup cannot succeed)."""


@dataclass(frozen=True)
class OClass:
    """An object class: a name plus an ordered attribute list."""

    name: str
    attributes: tuple

    def __post_init__(self):
        if len(set(self.attributes)) != len(self.attributes):
            raise OODBError(
                "duplicate attribute in class %r" % self.name)


#: Attribute values: atoms, references to other objects, or lists of
#: either.
AttrValue = Union[str, int, float, "OObject", list]


class OObject:
    """An object with identity, a class, and attribute values."""

    __slots__ = ("oclass", "oid", "_values")

    def __init__(self, oclass: OClass, oid: str,
                 values: Dict[str, AttrValue]):
        unknown = set(values) - set(oclass.attributes)
        if unknown:
            raise OODBError(
                "class %s has no attributes %s"
                % (oclass.name, sorted(unknown))
            )
        self.oclass = oclass
        self.oid = oid
        self._values = dict(values)

    def get(self, attribute: str) -> Optional[AttrValue]:
        if attribute not in self.oclass.attributes:
            raise OODBError(
                "class %s has no attribute %r"
                % (self.oclass.name, attribute)
            )
        return self._values.get(attribute)

    def __repr__(self) -> str:
        return "<%s %s>" % (self.oclass.name, self.oid)


class ObjectStore:
    """A named store of classes and their extents."""

    def __init__(self, name: str):
        self.name = name
        self._classes: Dict[str, OClass] = {}
        self._extents: Dict[str, List[OObject]] = {}
        self._by_oid: Dict[str, OObject] = {}
        self._counter = 0

    # -- schema ----------------------------------------------------------
    def define_class(self, name: str,
                     attributes: Sequence[str]) -> OClass:
        if name in self._classes:
            raise OODBError("class %r already defined" % name)
        oclass = OClass(name, tuple(attributes))
        self._classes[name] = oclass
        self._extents[name] = []
        return oclass

    def oclass(self, name: str) -> OClass:
        try:
            return self._classes[name]
        except KeyError:
            raise OODBError("no class %r in store %r"
                            % (name, self.name)) from None

    @property
    def class_names(self) -> List[str]:
        return list(self._classes)

    # -- objects ---------------------------------------------------------
    def create(self, class_name: str, **values: AttrValue) -> OObject:
        """Create an object in the extent of ``class_name``."""
        oclass = self.oclass(class_name)
        self._counter += 1
        oid = "%s:%s%d" % (self.name, class_name.lower(), self._counter)
        obj = OObject(oclass, oid, values)
        self._extents[class_name].append(obj)
        self._by_oid[oid] = obj
        return obj

    def extent(self, class_name: str) -> List[OObject]:
        """All objects of a class, in creation order."""
        self.oclass(class_name)
        return list(self._extents[class_name])

    def get(self, oid: str) -> OObject:
        try:
            return self._by_oid[oid]
        except KeyError:
            raise OODBError("no object with oid %r" % oid) from None

    # -- traversal ---------------------------------------------------------
    def follow(self, obj: OObject, path: str) -> List[AttrValue]:
        """Evaluate a dotted attribute path from ``obj``.

        Reference attributes are traversed, list attributes fan out;
        the result is the list of values at the end of the path (OQL's
        implicit flattening).
        """
        frontier: List[AttrValue] = [obj]
        for attribute in path.split("."):
            next_frontier: List[AttrValue] = []
            for value in frontier:
                if not isinstance(value, OObject):
                    raise OODBError(
                        "cannot follow %r through non-object %r"
                        % (attribute, value)
                    )
                result = value.get(attribute)
                if result is None:
                    continue
                if isinstance(result, list):
                    next_frontier.extend(result)
                else:
                    next_frontier.append(result)
            frontier = next_frontier
        return frontier


#: URI registry, mirroring the relational one ("oodb://storename").
_REGISTRY: Dict[str, ObjectStore] = {}


def register_store(store: ObjectStore) -> str:
    """Register a store for URI-based lookup; returns its URI."""
    _REGISTRY[store.name] = store
    return "oodb://%s" % store.name


def open_store(uri: str) -> ObjectStore:
    """Resolve a previously registered ``oodb://`` URI."""
    if not uri.startswith("oodb://"):
        raise OODBError("not an OODB URI: %r" % uri)
    name = uri[len("oodb://"):]
    try:
        return _REGISTRY[name]
    except KeyError:
        raise OODBError("no registered store %r" % name) from None
