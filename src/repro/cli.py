"""Command-line interface: run XMAS queries over XML files.

Usage::

    python -m repro query  -s homesSrc=homes.xml -s schoolsSrc=schools.xml \\
                           -q "CONSTRUCT ... WHERE ..."        # or -f q.xmas
    python -m repro plan   -q "..."      # show initial + rewritten plan
    python -m repro classify -q "..."    # per-node browsability report
    python -m repro profile -s ... -q "..."  # observed amplification
    python -m repro lint -q "..." [-s NAME=FILE]  # static diagnostics
    python -m repro lint --examples examples/     # lint the examples

``lint`` runs the compile-time plan analyzer (browsability, schema
paths, cost bounds, rewrite hints) and exits 0 (clean), 1 (warnings)
or 2 (errors) -- ``--fail-on`` moves the threshold, ``--json`` writes
the findings machine-readably.

``query`` also exports observability data: ``--trace-out FILE``
(with ``--trace-format jsonl|chrome``) dumps the causal span stream,
``--metrics-out FILE`` writes the metrics registry in Prometheus text
exposition format.

``query`` builds a MIX mediator over the given files (each behind the
XML wrapper and the generic buffer), evaluates the query lazily, and
prints the answer document plus (with ``--stats``) the per-source
navigation counts.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional

from .errors import ReproError
from .mediator.mix import MIXMediator
from .rewriter.analyzer import classify_plan, explain_plan
from .rewriter.optimizer import optimize
from .runtime.config import EngineConfig
from .runtime.context import Tracer
from .runtime.observability import export_chrome_trace, export_jsonl
from .wrappers.xmlfile import XMLFileWrapper
from .xmas.parser import parse_xmas
from .xmas.translate import translate
from .xtree.serialize import to_xml

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MIX: navigation-driven evaluation of virtual "
                    "mediated views (EDBT 2000 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_query_arguments(p, with_sources: bool):
        group = p.add_mutually_exclusive_group(required=True)
        group.add_argument("-q", "--query", help="XMAS query text")
        group.add_argument("-f", "--query-file",
                           help="file containing the XMAS query")
        if with_sources:
            p.add_argument(
                "-s", "--source", action="append", default=[],
                metavar="NAME=FILE",
                help="register an XML file as source NAME "
                     "(repeatable)")

    run = sub.add_parser("query", help="evaluate a query lazily")
    add_query_arguments(run, with_sources=True)
    run.add_argument("--eager", action="store_true",
                     help="materialize eagerly instead (the baseline)")
    run.add_argument("--pretty", action="store_true",
                     help="indent the answer document")
    run.add_argument("--stats", action="store_true",
                     help="print per-source navigation counts")
    run.add_argument("--chunk-size", type=int, default=10,
                     help="wrapper fill granularity (default 10)")
    run.add_argument("--no-optimize", action="store_true",
                     help="skip the rewriting phase")
    run.add_argument("--no-cache", action="store_true",
                     help="disable the operator caches (E7 ablation)")
    run.add_argument("--cache-budget", type=int, default=None,
                     metavar="N",
                     help="bound live cached entries to N "
                          "(LRU-evicting; default unbounded)")
    run.add_argument("--sigma", action="store_true",
                     help="push sibling selection to the sources "
                          "(select(sigma))")
    run.add_argument("--hybrid", action="store_true",
                     help="allow intermediate eager steps above "
                          "unbrowsable subplans")
    run.add_argument("--pushdown", action="store_true",
                     help="compile maximal single-source subplans "
                          "into one native request each (E16; "
                          "default off keeps the lazy reference "
                          "path)")
    run.add_argument("--fragment-cache", action="store_true",
                     help="reuse materialized fragments of versioned "
                          "sources across sessions (E17; default off "
                          "keeps the lazy reference path)")
    run.add_argument("--retries", type=int, default=1, metavar="N",
                     help="total attempts per source operation "
                          "(default 1 = fail fast; >1 enables "
                          "transient-failure retries with backoff)")
    run.add_argument("--retry-deadline", type=float, default=None,
                     metavar="MS",
                     help="cumulative per-operation retry budget in "
                          "milliseconds (default: unbounded)")
    run.add_argument("--degrade", action="store_true",
                     help="on exhausted source failure, splice a "
                          "<mix:error> placeholder into the answer "
                          "instead of aborting the query")
    run.add_argument("--prefetch", type=int, default=0, metavar="K",
                     help="buffer lookahead: fill up to K upcoming "
                          "holes per navigation (with "
                          "--batch-navigations: server-side "
                          "speculation depth)")
    run.add_argument("--prefetch-workers", type=int, default=0,
                     metavar="N",
                     help="fill prefetched holes on N background "
                          "threads (default 0 = synchronous, "
                          "deterministic)")
    run.add_argument("--batch-navigations", action="store_true",
                     help="pipeline LXP: ship batched fill commands "
                          "in one round trip and accept speculative "
                          "multi-fragment replies")
    run.add_argument("--fanout-workers", type=int, default=0,
                     metavar="N",
                     help="probe independent operator inputs (union, "
                          "difference, join, concatenate) on up to N "
                          "threads (default 0 = sequential)")
    run.add_argument("--trace-out", default=None, metavar="FILE",
                     help="record the causal span stream and write it "
                          "to FILE (enables tracing and per-operator "
                          "spans)")
    run.add_argument("--trace-format", choices=("jsonl", "chrome"),
                     default="jsonl",
                     help="trace dump format: jsonl (one event per "
                          "line) or chrome (trace_event JSON, "
                          "Perfetto-loadable; default jsonl)")
    run.add_argument("--metrics-out", default=None, metavar="FILE",
                     help="enable the metrics registry and write it "
                          "to FILE in Prometheus text exposition "
                          "format")

    profile = sub.add_parser(
        "profile",
        help="empirical browsability profile: run the query under "
             "full observation and report the observed client->source "
             "navigation amplification per operator")
    add_query_arguments(profile, with_sources=True)
    profile.add_argument("--chunk-size", type=int, default=10,
                         help="wrapper fill granularity (default 10)")
    profile.add_argument("--no-optimize", action="store_true",
                         help="skip the rewriting phase")
    profile.add_argument("--sigma", action="store_true",
                         help="push sibling selection to the sources")

    plan = sub.add_parser("plan", help="show the algebraic plan")
    add_query_arguments(plan, with_sources=False)

    classify = sub.add_parser(
        "classify", help="static browsability analysis")
    add_query_arguments(classify, with_sources=False)
    classify.add_argument("--sigma", action="store_true",
                          help="assume select(sigma) is available")

    lint = sub.add_parser(
        "lint",
        help="static plan diagnostics: browsability, schema/path, "
             "cost and rewrite findings with CI-friendly exit codes "
             "(0 clean, 1 warnings, 2 errors)")
    what = lint.add_mutually_exclusive_group(required=True)
    what.add_argument("-q", "--query", help="XMAS query text")
    what.add_argument("-f", "--query-file",
                      help="file containing the XMAS query")
    what.add_argument("--examples", metavar="DIR",
                      help="lint every XMAS query constant found in "
                           "the python files under DIR (queries are "
                           "extracted statically, never executed)")
    lint.add_argument("-s", "--source", action="append", default=[],
                      metavar="NAME=FILE",
                      help="use FILE as a sample document of source "
                           "NAME: enables the schema-aware path "
                           "checks (repeatable)")
    lint.add_argument("--sigma", action="store_true",
                      help="assume select(sigma) is available")
    lint.add_argument("--hybrid", action="store_true",
                      help="assume hybrid (lazy/eager) evaluation")
    lint.add_argument("--no-optimize", action="store_true",
                      help="lint the un-optimized initial plan")
    lint.add_argument("--cache-budget", type=int, default=None,
                      metavar="N",
                      help="assume a bounded cache budget (silences "
                           "the unbounded-cache findings)")
    lint.add_argument("--json", default=None, metavar="FILE",
                      help="additionally write the findings as JSON "
                           "to FILE ('-' for stdout)")
    lint.add_argument("--fail-on",
                      choices=("info", "warning", "error"),
                      default="warning",
                      help="lowest severity that makes the exit code "
                           "non-zero (default: warning)")
    lint.add_argument("--suppress", default="", metavar="CODES",
                      help="comma-separated finding codes to "
                           "suppress (e.g. B010,C010)")

    serve = sub.add_parser(
        "serve", help="run the mediator as a long-lived session "
                      "daemon (LXP over TCP)")
    serve.add_argument("-s", "--source", action="append", default=[],
                       metavar="NAME=FILE",
                       help="register an XML file as source NAME "
                            "(repeatable)")
    serve.add_argument("--workload", default=None, metavar="SPEC",
                       help="register a built-in workload instead of "
                            "files: homes:N (the Figure 3 sources at "
                            "N homes)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="0 picks a free port (printed on stdout)")
    serve.add_argument("--max-sessions", type=int, default=64)
    serve.add_argument("--idle-timeout", type=float, default=30000.0,
                       metavar="MS")
    serve.add_argument("--send-timeout", type=float, default=5000.0,
                       metavar="MS")
    serve.add_argument("--request-deadline", type=float, default=None,
                       metavar="MS")
    serve.add_argument("--session-max-fills", type=int, default=None,
                       metavar="N")
    serve.add_argument("--session-max-bytes", type=int, default=None,
                       metavar="N")
    serve.add_argument("--drain-timeout", type=float, default=5000.0,
                       metavar="MS")
    serve.add_argument("--chunk-size", type=int, default=2)
    serve.add_argument("--fragment-cache", action="store_true",
                       help="share materialized fragments of "
                            "versioned sources across the daemon's "
                            "sessions (E17)")
    serve.add_argument("--metrics-out", default=None, metavar="FILE",
                       help="write Prometheus text metrics after "
                            "drain")
    serve.add_argument("--trace-out", default=None, metavar="FILE",
                       help="write the causal span stream (jsonl) "
                            "after drain")
    serve.add_argument("--trace-sample-rate", type=float, default=1.0,
                       metavar="R",
                       help="fraction of traces recorded (hash-based, "
                            "deterministic per trace id)")
    serve.add_argument("--slow-request", type=float, default=None,
                       metavar="MS",
                       help="log requests at or over MS to the "
                            "flight recorder")
    serve.add_argument("--flight-recorder", type=int, default=256,
                       metavar="N",
                       help="flight-recorder ring capacity (last N "
                            "operational events)")
    serve.add_argument("--incident-dir", default=None, metavar="DIR",
                       help="dump flight-recorder contents to DIR "
                            "on session kill and drain")

    status = sub.add_parser(
        "status", help="query a running serve daemon's live "
                       "operational state (mix:status)")
    status.add_argument("address", metavar="HOST:PORT",
                        help="the daemon's listen address")
    status.add_argument("--json", default=None, metavar="FILE",
                        help="write the raw status reply as JSON "
                             "('-' for stdout)")
    status.add_argument("--prometheus", action="store_true",
                        help="print the daemon's Prometheus text "
                             "exposition instead of the table")
    status.add_argument("--timeout", type=float, default=5000.0,
                        metavar="MS")

    trace = sub.add_parser(
        "trace", help="work with exported trace JSONL files")
    trace_sub = trace.add_subparsers(dest="trace_command",
                                     required=True)
    merge = trace_sub.add_parser(
        "merge", help="join a client and a server trace export into "
                      "one causal forest")
    merge.add_argument("client_trace", metavar="CLIENT.jsonl")
    merge.add_argument("server_trace", metavar="SERVER.jsonl")
    merge.add_argument("-o", "--out", default=None, metavar="FILE",
                       help="write the merged stream as JSONL "
                            "('-' for stdout)")

    loadgen = sub.add_parser(
        "loadgen", help="drive concurrent sessions into a running "
                        "serve daemon and report latency")
    add_query_arguments(loadgen, with_sources=False)
    loadgen.add_argument("--host", default="127.0.0.1")
    loadgen.add_argument("--port", type=int, required=True)
    loadgen.add_argument("--sessions", type=int, default=100)
    loadgen.add_argument("--concurrency", type=int, default=16)
    loadgen.add_argument("--rounds", type=int, default=4,
                         help="navigation rounds per session")
    loadgen.add_argument("--timeout", type=float, default=10000.0,
                         metavar="MS")
    loadgen.add_argument("--json", default=None, metavar="FILE",
                         help="write the report as JSON to FILE "
                              "('-' for stdout)")
    return parser


def _query_text(args) -> str:
    if args.query is not None:
        return args.query
    with open(args.query_file) as handle:
        return handle.read()


def _parse_sources(specs: List[str]) -> Dict[str, str]:
    sources = {}
    for spec in specs:
        name, eq, path = spec.partition("=")
        if not eq or not name or not path:
            raise SystemExit(
                "bad --source %r (expected NAME=FILE)" % spec)
        sources[name] = path
    return sources


def _cmd_query(args) -> int:
    tracing = args.trace_out is not None
    config = EngineConfig(
        optimize_plans=not args.no_optimize,
        cache_enabled=not args.no_cache,
        cache_budget=args.cache_budget,
        use_sigma=args.sigma,
        hybrid=args.hybrid,
        pushdown=args.pushdown,
        fragment_cache=args.fragment_cache,
        chunk_size=args.chunk_size,
        retry_max_attempts=args.retries,
        retry_deadline_ms=args.retry_deadline,
        on_source_failure="degrade" if args.degrade else "fail",
        prefetch=args.prefetch,
        prefetch_workers=args.prefetch_workers,
        batch_navigations=args.batch_navigations,
        fanout_workers=args.fanout_workers,
        metrics_enabled=args.metrics_out is not None,
        observe_operators=tracing,
    )
    tracer = Tracer(record=True) if tracing else None
    mediator = MIXMediator(config, tracer=tracer)
    for name, path in _parse_sources(args.source).items():
        with open(path) as handle:
            xml_text = handle.read()
        mediator.register_wrapper(
            name, XMLFileWrapper(name, xml_text,
                                 chunk_size=args.chunk_size))
    text = _query_text(args)
    result = None
    if args.eager:
        answer = mediator.query_eager(text)
    else:
        result = mediator.prepare(text)
        answer = result.materialize()
    print(to_xml(answer, pretty=args.pretty))
    if tracing:
        exporter = (export_chrome_trace
                    if args.trace_format == "chrome" else export_jsonl)
        written = exporter(mediator.tracer.events, args.trace_out)
        print("-- trace: %d events -> %s (%s) --"
              % (written, args.trace_out, args.trace_format),
              file=sys.stderr)
    if args.metrics_out is not None:
        context = result.context if result is not None \
            else mediator.runtime
        with open(args.metrics_out, "w") as handle:
            handle.write(context.metrics_prometheus())
        print("-- metrics -> %s --" % args.metrics_out,
              file=sys.stderr)
    if args.stats:
        print("-- source navigations --", file=sys.stderr)
        for name, meter in sorted(mediator.meters.items()):
            print("  %-16s %s" % (name, meter.counters),
                  file=sys.stderr)
        if result is not None:
            stats = result.stats()
            caches = stats["caches"]
            print("-- caches (budget=%s, %s) --"
                  % (caches["budget"],
                     "on" if caches["enabled"] else "off"),
                  file=sys.stderr)
            for name, counts in sorted(caches["caches"].items()):
                print("  %-22s hits=%-6d misses=%-6d evictions=%d"
                      % (name, counts["hits"], counts["misses"],
                         counts["evictions"]), file=sys.stderr)
            pushed = stats.get("pushdown")
            if pushed:
                print("-- pushdown --", file=sys.stderr)
                for decision in pushed["decisions"]:
                    print("  %-6s %s: %s"
                          % ("pushed" if decision["pushed"]
                             else "kept", decision["url"],
                             decision["detail"]), file=sys.stderr)
            fragcache = stats.get("fragcache")
            if fragcache:
                print("-- fragment cache --", file=sys.stderr)
                if "hits" in fragcache:
                    print("  hits=%d misses=%d invalidations=%d"
                          % (fragcache["hits"], fragcache["misses"],
                             fragcache["invalidations"]),
                          file=sys.stderr)
                for decision in fragcache.get("decisions", ()):
                    print("  %-6s %s: %s"
                          % ("cached" if decision["cached"]
                             else "kept", decision["url"],
                             decision["detail"]), file=sys.stderr)
            resilience = stats.get("resilience")
            if resilience:
                print("-- resilience --", file=sys.stderr)
                for name, counts in sorted(
                        resilience["per_source"].items()):
                    print("  %-16s retries=%-4d giveups=%-4d "
                          "degraded=%-4d breaker_opens=%d"
                          % (name, counts["retries"],
                             counts["giveups"], counts["degraded"],
                             counts["breaker_opens"]),
                          file=sys.stderr)
    return 0


def _cmd_profile(args) -> int:
    config = EngineConfig(
        optimize_plans=not args.no_optimize,
        use_sigma=args.sigma,
        chunk_size=args.chunk_size,
    )
    mediator = MIXMediator(config)
    for name, path in _parse_sources(args.source).items():
        with open(path) as handle:
            xml_text = handle.read()
        mediator.register_wrapper(
            name, XMLFileWrapper(name, xml_text,
                                 chunk_size=args.chunk_size))
    result = mediator.prepare(_query_text(args))
    print(result.explain(analyze=True))
    return 0


def _cmd_plan(args) -> int:
    plan = translate(parse_xmas(_query_text(args)))
    print("initial plan:")
    print(plan.pretty())
    optimized, trace = optimize(plan)
    if trace.applied:
        print()
        print("rewritten plan (%s):" % ", ".join(trace.applied))
        print(optimized.pretty())
    else:
        print()
        print("no rewrite rules applied")
    print()
    print("browsability: %s" % classify_plan(optimized))
    return 0


def _cmd_classify(args) -> int:
    plan = translate(parse_xmas(_query_text(args)))
    print(explain_plan(plan, sigma_available=args.sigma))
    return 0


def _cmd_lint(args) -> int:
    from pathlib import Path

    from .analysis import analyze_query, scan_examples
    from .analysis.findings import Severity
    from .wrappers.xmlfile import document_node
    from .xtree.parse import parse_xml

    config = EngineConfig(
        optimize_plans=not args.no_optimize,
        use_sigma=args.sigma,
        hybrid=args.hybrid,
        cache_budget=args.cache_budget,
    )
    fail_on = Severity.parse(args.fail_on)
    suppress = tuple(code.strip()
                     for code in args.suppress.split(",")
                     if code.strip())

    if args.examples is not None:
        reports = scan_examples(Path(args.examples), config=config)
        if not reports:
            print("no XMAS query constants found under %s"
                  % args.examples, file=sys.stderr)
            return 2
    else:
        schemas = {}
        for name, path in _parse_sources(args.source).items():
            with open(path) as handle:
                schemas[name] = document_node(
                    name, parse_xml(handle.read()))
        subject = args.query_file or "<query>"
        try:
            _plan, report = analyze_query(
                _query_text(args), config=config, schemas=schemas,
                suppress=suppress, subject=subject)
        except ReproError as exc:
            from .analysis import AnalysisReport, Finding
            report = AnalysisReport(
                [Finding(code="X001", message=str(exc))],
                verdict="unknown", subject=subject)
        reports = [report]

    exit_code = 0
    for report in reports:
        print(report.summary())
        print()
        exit_code = max(exit_code, report.exit_code(fail_on=fail_on))
    if args.json is not None:
        import json as json_module
        payload = ([r.to_dict() for r in reports]
                   if args.examples is not None
                   else reports[0].to_dict())
        text = json_module.dumps(payload, indent=2, sort_keys=True)
        if args.json == "-":
            print(text)
        else:
            with open(args.json, "w") as handle:
                handle.write(text + "\n")
            print("-- findings -> %s --" % args.json,
                  file=sys.stderr)
    print("lint: %d subject(s), exit %d" % (len(reports), exit_code),
          file=sys.stderr)
    return exit_code


def _serve_mediator(args) -> MIXMediator:
    """A mediator over the requested sources for the daemon."""
    tracing = args.trace_out is not None
    config = EngineConfig(
        serve_host=args.host,
        serve_port=args.port,
        serve_max_sessions=args.max_sessions,
        serve_idle_timeout_ms=args.idle_timeout,
        serve_send_timeout_ms=args.send_timeout,
        serve_request_deadline_ms=args.request_deadline,
        serve_session_max_fills=args.session_max_fills,
        serve_session_max_bytes=args.session_max_bytes,
        serve_drain_timeout_ms=args.drain_timeout,
        fragment_cache=args.fragment_cache,
        chunk_size=args.chunk_size,
        metrics_enabled=args.metrics_out is not None,
        observe_operators=tracing,
        trace_sample_rate=args.trace_sample_rate,
        slow_request_ms=args.slow_request,
        serve_flight_recorder_events=args.flight_recorder,
        serve_incident_dir=args.incident_dir,
    )
    tracer = Tracer(record=True) if tracing else None
    mediator = MIXMediator(config, tracer=tracer)
    for name, path in _parse_sources(args.source).items():
        with open(path) as handle:
            xml_text = handle.read()
        mediator.register_wrapper(
            name, XMLFileWrapper(name, xml_text,
                                 chunk_size=args.chunk_size))
    if args.workload is not None:
        kind, colon, scale_text = args.workload.partition(":")
        if kind != "homes":
            raise SystemExit("unknown --workload %r (try homes:N)"
                             % args.workload)
        scale = int(scale_text) if colon and scale_text else 50
        from .bench.workloads import homes_and_schools
        from .navigation.materialized import MaterializedDocument
        for name, tree in homes_and_schools(scale).items():
            mediator.register_source(name, MaterializedDocument(tree))
    if not args.source and args.workload is None:
        raise SystemExit("serve needs at least one -s NAME=FILE "
                         "or --workload")
    return mediator


def _cmd_serve(args) -> int:
    import signal
    import threading

    from .server.daemon import MediatorServer

    mediator = _serve_mediator(args)
    server = MediatorServer(mediator)
    host, port = server.start()
    # The contract line tooling scripts key off (stdout, flushed
    # before anything else): "serving HOST PORT".
    print("serving %s %d" % (host, port), flush=True)
    stop = threading.Event()

    def request_drain(signum, frame) -> None:
        stop.set()

    signal.signal(signal.SIGTERM, request_drain)
    signal.signal(signal.SIGINT, request_drain)
    while not stop.wait(0.2):
        pass
    clean = server.drain()
    snapshot = server.stats.snapshot()
    print("drained clean=%s sessions=%d rejected=%d"
          % (clean, snapshot["sessions_opened"],
             snapshot["rejected_busy"] + snapshot["rejected_draining"]),
          flush=True)
    if args.trace_out is not None:
        written = export_jsonl(mediator.tracer.events, args.trace_out)
        print("-- trace: %d events -> %s --"
              % (written, args.trace_out), file=sys.stderr)
    if args.metrics_out is not None:
        with open(args.metrics_out, "w") as handle:
            handle.write(mediator.runtime.metrics_prometheus())
        print("-- metrics -> %s --" % args.metrics_out,
              file=sys.stderr)
    return 0


def _format_status_table(status: Dict[str, object]) -> str:
    """The human-facing ``repro status`` rendering: a header line,
    the lifetime counters, and one row per live session."""
    lines: List[str] = []
    address = status.get("address")
    where = ("%s:%s" % tuple(address)
             if isinstance(address, list) and len(address) == 2
             else "?")
    state = "DRAINING" if status.get("draining") else "serving"
    lines.append("mix daemon at %s: %s, %s active session(s)"
                 % (where, state, status.get("active_sessions", 0)))
    server = status.get("server")
    if isinstance(server, dict):
        lines.append("  lifetime: " + "  ".join(
            "%s=%s" % (key, server[key]) for key in sorted(server)))
    fragcache = status.get("fragcache")
    if isinstance(fragcache, dict):
        lines.append("  fragcache: " + "  ".join(
            "%s=%s" % (key, fragcache[key])
            for key in sorted(fragcache)))
    recorder = status.get("flight_recorder")
    if isinstance(recorder, dict):
        lines.append("  flight recorder: %s/%s events, %s recorded, "
                     "%s incident(s)"
                     % (recorder.get("size"), recorder.get("capacity"),
                        recorder.get("recorded"),
                        recorder.get("incidents")))
    sessions = status.get("sessions")
    if isinstance(sessions, list) and sessions:
        header = ("  %-14s %10s %8s %6s %12s %14s %10s"
                  % ("session", "age_ms", "reqs", "fills",
                     "bytes", "budget_fills", "in_flight"))
        lines.append(header)
        for row in sessions:
            if not isinstance(row, dict):
                continue
            budget = row.get("budget_remaining") or {}
            fills_left = (budget.get("fills")
                          if isinstance(budget, dict) else None)
            age = row.get("age_ms")
            lines.append(
                "  %-14s %10s %8s %6s %12s %14s %10s"
                % (row.get("session"),
                   "%.0f" % age if isinstance(age, (int, float))
                   else "-",
                   row.get("requests"), row.get("fills"),
                   row.get("bytes_shipped"),
                   fills_left if fills_left is not None else "-",
                   row.get("in_flight") or "-"))
    else:
        lines.append("  (no live sessions)")
    return "\n".join(lines)


def _cmd_status(args) -> int:
    import json as json_module

    from .errors import SourceError
    from .server.client import fetch_status

    host, colon, port_text = args.address.rpartition(":")
    if not colon or not host or not port_text.isdigit():
        raise SystemExit("bad address %r (expected HOST:PORT)"
                         % args.address)
    want_prometheus = args.prometheus
    try:
        status = fetch_status(host, int(port_text),
                              timeout_ms=args.timeout,
                              prometheus=want_prometheus)
    except (SourceError, OSError) as err:
        print("status: %s unreachable: %s" % (args.address, err),
              file=sys.stderr)
        return 2
    if args.json is not None:
        text = json_module.dumps(status, indent=2, sort_keys=True)
        if args.json == "-":
            print(text)
        else:
            with open(args.json, "w") as handle:
                handle.write(text + "\n")
            print("-- status -> %s --" % args.json, file=sys.stderr)
    if want_prometheus:
        print(status.get("prometheus", ""), end="")
    elif args.json is None:
        print(_format_status_table(status))
    return 1 if status.get("draining") else 0


def _cmd_trace(args) -> int:
    import json as json_module

    from .runtime.observability import (build_span_tree,
                                        contract_violations,
                                        load_jsonl, merge_traces)

    if args.trace_command != "merge":
        raise SystemExit("unknown trace command %r"
                         % args.trace_command)
    client_records = load_jsonl(args.client_trace)
    server_records = load_jsonl(args.server_trace)
    merged = merge_traces(client_records, server_records)
    forest = build_span_tree(merged)
    violations = contract_violations(merged)
    print("trace merge: %d client + %d server = %d events, "
          "%d root span(s)"
          % (len(client_records), len(server_records), len(merged),
             len(forest.roots)))
    problems = len(forest.orphans) + len(violations)
    for label, items in (("orphans",
                          ["%s (span %s)" % (node.name, node.span_id)
                           for node in forest.orphans]),
                         ("contract violations", violations)):
        if items:
            print("  %s (%d):" % (label, len(items)))
            for item in items[:10]:
                print("    %s" % (item,))
    if args.out is not None:
        lines = [json_module.dumps(record.to_dict(), sort_keys=True)
                 for record in merged]
        if args.out == "-":
            for line in lines:
                print(line)
        else:
            with open(args.out, "w") as handle:
                handle.write("\n".join(lines) + "\n")
            print("-- merged trace -> %s --" % args.out,
                  file=sys.stderr)
    return 1 if problems else 0


def _cmd_loadgen(args) -> int:
    import json as json_module

    from .bench.loadgen import run_load

    report = run_load(args.host, args.port, _query_text(args),
                      sessions=args.sessions,
                      concurrency=args.concurrency,
                      rounds=args.rounds,
                      timeout_ms=args.timeout)
    payload = report.as_dict()
    print("loadgen: %d/%d sessions ok (%d busy, %d failed), "
          "%.1f sessions/s, nav p50=%.2fms p99=%.2fms"
          % (report.completed, len(report.outcomes),
             report.rejected_busy, report.failed,
             report.sessions_per_sec,
             report.latency_ms(0.50), report.latency_ms(0.99)))
    correlation = report.server_correlation
    if not correlation.get("available"):
        print("loadgen: server correlation unavailable "
              "(status probe failed)", file=sys.stderr)
    elif correlation.get("reconciled"):
        print("loadgen: server counters reconciled "
              "(sessions/requests/fills match)")
    else:
        for mismatch in correlation.get("mismatches", []):
            print("loadgen: counter mismatch -- %s" % mismatch,
                  file=sys.stderr)
    text = json_module.dumps(payload, indent=2, sort_keys=True)
    if args.json == "-":
        print(text)
    elif args.json is not None:
        with open(args.json, "w") as handle:
            handle.write(text + "\n")
        print("-- report -> %s --" % args.json, file=sys.stderr)
    return 0 if report.failed == 0 else 1


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "query":
        return _cmd_query(args)
    if args.command == "profile":
        return _cmd_profile(args)
    if args.command == "plan":
        return _cmd_plan(args)
    if args.command == "classify":
        return _cmd_classify(args)
    if args.command == "lint":
        return _cmd_lint(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "status":
        return _cmd_status(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "loadgen":
        return _cmd_loadgen(args)
    raise SystemExit("unknown command %r" % args.command)


if __name__ == "__main__":
    raise SystemExit(main())
