"""Per-session server state: hole table, budgets, deadlines.

One TCP connection is one session.  A session owns:

* the prepared query's :class:`~repro.mediator.mix.QueryResult`
  (which carries the per-session
  :class:`~repro.runtime.context.ExecutionContext` -- caches, tracer,
  metrics -- exactly as an in-process client would get);
* a :class:`~repro.client.remote.NavigableLXPServer` exporting the
  virtual answer as fragments;
* a :class:`HoleTable` mapping those fragments' in-process hole
  identifiers (which embed live document pointers) to session-scoped
  wire integers and back;
* consumption counters against the session's navigation/byte budgets.

The deadline machinery is a document proxy
(:class:`DeadlineDocument`): the handler arms it at request start and
every navigation the request triggers checks the injected clock, so a
runaway navigation is cut mid-request -- deterministically under a
:class:`~repro.testing.faults.FakeClock`.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Optional

from ..buffer.holes import fragment_wire_size
from ..client.remote import NavigableLXPServer
from ..errors import TransientSourceError
from ..navigation.interface import NavigableDocument
from ..runtime.resilience import SYSTEM_CLOCK, Clock
from .wire import MalformedFrameError
from ..runtime.locks import make_lock

__all__ = ["HoleTable", "SessionBudgetError", "RequestDeadlineError",
           "DeadlineDocument", "Session"]


class SessionBudgetError(TransientSourceError):
    """A session exhausted its navigation or byte budget.  Transient
    from the client fleet's point of view: a fresh session starts
    with a fresh budget."""


class RequestDeadlineError(TransientSourceError):
    """A request's server-side navigation work overran the
    per-request deadline."""


class HoleTable:
    """Bidirectional hole-id <-> wire-integer map for one session.

    The in-process hole identifiers of
    :class:`~repro.client.remote.NavigableLXPServer` embed live
    document pointers -- unserializable and unforgeable-by-accident,
    but useless on a wire.  The table interns each hole the session
    ships and resolves the integers clients send back.  Interning is
    idempotent (one hole, one wire id) so a batched reply that answers
    a hole introduced earlier in the same reply stays consistent.

    Guarded by its own lock: the handler thread interns while drain
    or stats paths may be reading the size.
    """

    def __init__(self) -> None:
        self._to_wire: Dict[object, int] = {}
        self._to_hole: Dict[int, object] = {}
        self._serial = 0
        self._lock = make_lock("server.holes")

    def intern(self, hole_id: object) -> int:
        """The wire integer for ``hole_id`` (minted on first use)."""
        with self._lock:
            wire_id = self._to_wire.get(hole_id)
            if wire_id is None:
                self._serial += 1
                wire_id = self._serial
                self._to_wire[hole_id] = wire_id
                self._to_hole[wire_id] = hole_id
            return wire_id

    def resolve(self, wire_id: object) -> object:
        """The in-process hole id behind a client-sent integer.

        Unknown or ill-typed ids are a protocol violation (the client
        can only learn ids from fragments this session shipped).
        """
        if not isinstance(wire_id, int) or isinstance(wire_id, bool):
            raise MalformedFrameError(
                "hole id must be an integer, got %r" % (wire_id,))
        with self._lock:
            try:
                return self._to_hole[wire_id]
            except KeyError:
                raise MalformedFrameError(
                    "unknown hole id %d for this session"
                    % wire_id) from None

    def __len__(self) -> int:
        with self._lock:
            return len(self._to_hole)


class DeadlineDocument(NavigableDocument):
    """A navigation proxy that enforces a per-request deadline.

    ``arm(deadline_ms)`` is called by the handler when a request
    starts and ``disarm()`` when it ends; every navigation in between
    compares the clock against the armed deadline.  The proxy is only
    ever driven by its session's handler thread, but arm/disarm and
    the checks keep the state in one slot so a misuse is at worst a
    late cut, never a crash.
    """

    def __init__(self, document: NavigableDocument,
                 clock: Optional[Clock] = None) -> None:
        self.document = document
        self.clock: Clock = clock if clock is not None else SYSTEM_CLOCK
        self._deadline_at: Optional[float] = None
        self._deadline_ms: Optional[float] = None

    def arm(self, deadline_ms: Optional[float]) -> None:
        """Start the request clock (None = no deadline)."""
        self._deadline_ms = deadline_ms
        if deadline_ms is None:
            self._deadline_at = None
        else:
            self._deadline_at = self.clock.now_ms() + deadline_ms

    def disarm(self) -> None:
        self._deadline_at = None
        self._deadline_ms = None

    def _check(self) -> None:
        deadline_at = self._deadline_at
        if deadline_at is not None \
                and self.clock.now_ms() > deadline_at:
            raise RequestDeadlineError(
                "request overran its %.0fms navigation deadline"
                % (self._deadline_ms or 0.0,))

    def root(self) -> object:
        self._check()
        return self.document.root()

    def down(self, pointer: object) -> Optional[object]:
        self._check()
        return self.document.down(pointer)

    def right(self, pointer: object) -> Optional[object]:
        self._check()
        return self.document.right(pointer)

    def fetch(self, pointer: object) -> str:
        self._check()
        return self.document.fetch(pointer)

    def __getattr__(self, attr: str) -> Any:
        return getattr(self.document, attr)


class Session:
    """One client's dialogue with the daemon, server side.

    Created by the handler after a successful ``open``; owns the
    exported view, the hole table, and the budget counters.  The
    handler thread is the only mutator; the budget check happens
    after each reply is measured, so a reply that crosses the budget
    is still delivered and the *next* request is refused.
    """

    def __init__(self, session_id: str, result: Any,
                 exporter: NavigableLXPServer,
                 deadline_document: DeadlineDocument,
                 max_fills: Optional[int] = None,
                 max_bytes: Optional[int] = None,
                 opened_at_ms: Optional[float] = None) -> None:
        self.session_id = session_id
        self.result = result
        self.exporter = exporter
        self.deadline_document = deadline_document
        self.holes = HoleTable()
        self.max_fills = max_fills
        self.max_bytes = max_bytes
        #: navigation budget consumed (answered fill commands)
        self.fills = 0
        #: byte budget consumed (fragment wire volume shipped)
        self.bytes_shipped = 0
        #: requests answered (any op)
        self.requests = 0
        #: server-clock reading at ``open`` (for status age reporting)
        self.opened_at_ms = opened_at_ms
        #: the op currently being dispatched (handler-thread written;
        #: status readers see at worst a stale op name)
        self.in_flight: Optional[str] = None
        #: the wire trace context last adopted for this session
        self.trace_context: Optional[Dict[str, Any]] = None

    def charge(self, fills: int, fragments: Iterator[Any]) -> None:
        """Account one reply against the session budgets."""
        self.fills += fills
        self.bytes_shipped += sum(fragment_wire_size(f)
                                  for f in fragments)

    def check_budget(self) -> None:
        """Raise :class:`SessionBudgetError` once a budget is
        exhausted (checked before each navigation request)."""
        if self.max_fills is not None and self.fills >= self.max_fills:
            raise SessionBudgetError(
                "session %s exhausted its %d-fill navigation budget"
                % (self.session_id, self.max_fills))
        if self.max_bytes is not None \
                and self.bytes_shipped >= self.max_bytes:
            raise SessionBudgetError(
                "session %s exhausted its %d-byte ship budget"
                % (self.session_id, self.max_bytes))

    def budget_remaining(self) -> Dict[str, Optional[int]]:
        """How much of each budget is left (None = unbudgeted)."""
        fills_left = (None if self.max_fills is None
                      else max(0, self.max_fills - self.fills))
        bytes_left = (None if self.max_bytes is None
                      else max(0, self.max_bytes - self.bytes_shipped))
        return {"fills": fills_left, "bytes": bytes_left}

    def status_row(self, now_ms: Optional[float] = None
                   ) -> Dict[str, Any]:
        """One row of the daemon's per-session status table."""
        age_ms: Optional[float] = None
        if now_ms is not None and self.opened_at_ms is not None:
            age_ms = max(0.0, now_ms - self.opened_at_ms)
        return {
            "session": self.session_id,
            "age_ms": age_ms,
            "requests": self.requests,
            "fills": self.fills,
            "bytes_shipped": self.bytes_shipped,
            "budget_remaining": self.budget_remaining(),
            "in_flight": self.in_flight,
            "trace_id": (self.trace_context or {}).get("id"),
        }

    def stats(self) -> Dict[str, Any]:
        """The session's consumption and its context's live stats
        (snapshot-based, safe while the session is still running)."""
        exporter_stats = self.exporter.stats.snapshot()
        return {
            "session": self.session_id,
            "requests": self.requests,
            "fills": self.fills,
            "bytes_shipped": self.bytes_shipped,
            "holes_interned": len(self.holes),
            "exporter": exporter_stats,
        }
