"""The socket client: a session onto a remote mediator daemon.

:func:`connect` opens a TCP connection to a
:class:`~repro.server.daemon.MediatorServer`, sends the ``open``
frame carrying an XMAS query, and hands back a
:class:`RemoteSession` whose :attr:`~RemoteSession.root` is the
ordinary :class:`~repro.client.element.XMLElement` navigation
surface -- the paper's Figure 7 stack with a real wire in the
middle::

    XMLElement -> buffer -> [resilience] -> SocketChannel ==tcp==
        MediatorServer -> NavigableLXPServer -> VirtualDocument

:class:`SocketChannel` is an :class:`~repro.buffer.lxp.LXPServer`
whose fills are request/reply frame round trips, so every existing
client-side layer -- plain, prefetching, thread-backed, and batching
buffers, retries, circuit breakers, degrade mode -- composes over the
socket unchanged.  Channel accounting charges *real* wire bytes (no
virtual cost model: the network is charging for itself now).

Typed rejections from the server surface as exceptions:
``mix:busy`` -> :class:`ServerBusyError` and ``mix:draining`` ->
:class:`ServerDrainingError` (both transient -- another connection or
another moment may succeed; the retry layer may spin on them), every
other error frame -> :class:`ServerReplyError` (permanent: replaying
the same request at the same session cannot help).
"""

from __future__ import annotations

import socket
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..buffer.holes import FragHole, Fragment
from ..client.element import XMLElement
from ..client.remote import ChannelStats
from ..errors import PermanentSourceError, TransientSourceError
from ..buffer.lxp import LXPServer
from ..runtime.config import EngineConfig
from ..runtime.context import ExecutionContext, Tracer
from ..runtime.resilience import Clock, resilient_server
from ..runtime.locks import make_lock
from .wire import (
    MAX_FRAME_BYTES,
    TRACE_KEY,
    WireError,
    decode_fragments,
    encode_trace_context,
    recv_frame_sized,
    send_frame,
)

__all__ = ["ServerBusyError", "ServerDrainingError", "ServerReplyError",
           "SocketChannel", "RemoteSession", "connect",
           "fetch_status"]


class ServerBusyError(TransientSourceError):
    """The daemon refused admission (``mix:busy``): it is at its
    session capacity.  Transient -- capacity frees up as sessions
    close."""


class ServerDrainingError(TransientSourceError):
    """The daemon is draining (``mix:draining``).  Transient from the
    fleet's point of view: a replacement server may be accepting."""


class ServerReplyError(PermanentSourceError):
    """The daemon answered with a typed error frame (``mix:protocol``,
    ``mix:deadline``, ``mix:budget``, ``mix:idle``, ``mix:query``,
    ``mix:error``).  Permanent for *this* session: the server killed
    it, so replaying the request cannot succeed."""

    def __init__(self, code: str, detail: str) -> None:
        super().__init__("%s: %s" % (code, detail))
        self.code = code
        self.detail = detail


def _raise_error_reply(reply: Dict[str, Any]) -> None:
    """Map an ``{"ok": false}`` frame to its typed exception."""
    code = reply.get("error", "mix:error")
    detail = str(reply.get("detail", ""))
    if code == "mix:busy":
        raise ServerBusyError(detail or "server busy")
    if code == "mix:draining":
        raise ServerDrainingError(detail or "server draining")
    raise ServerReplyError(str(code), detail)


class SocketChannel(LXPServer):
    """An LXP server whose fills are socket round trips.

    One request/reply per :meth:`fill`; one per :meth:`fill_batch`
    regardless of batch width (that is the point of batching).  A
    single lock serializes round trips: with thread-backed prefetching
    several client-side workers share this one connection, and frames
    must not interleave.

    ``stats`` is a plain :class:`~repro.client.remote.ChannelStats`
    charged with real bytes on the wire (header included), so every
    existing report/metric over channel traffic works unchanged.

    When the session carries a trace (``trace_id`` set), every
    request frame gains the wire trace envelope: the trace id, the
    client span open at call time (the server adopts it as the
    parent of its ``server.request`` span), and the sampling
    verdict.  With the default ``trace_id=None`` -- any client whose
    tracer is idle -- frames are byte-identical to before.
    """

    def __init__(self, sock: socket.socket, root_wire_id: int,
                 timeout_ms: float,
                 max_frame_bytes: int = MAX_FRAME_BYTES,
                 name: str = "",
                 tracer: Optional[Tracer] = None,
                 trace_id: Optional[str] = None,
                 sampled: bool = True) -> None:
        self.sock = sock
        self.root_wire_id = root_wire_id
        self.timeout_ms = timeout_ms
        self.max_frame_bytes = max_frame_bytes
        self.name = name
        self.tracer = tracer
        self.trace_id = trace_id
        self.sampled = sampled
        self.stats = ChannelStats()
        self._lock = make_lock("client.channel")
        self.closed = False

    # -- the round trip ----------------------------------------------------
    def call(self, request: Dict[str, Any],
             commands: int = 1) -> Dict[str, Any]:
        """One request/reply exchange, serialized and accounted."""
        if self.trace_id is not None:
            parent = (self.tracer.current_span()
                      if self.tracer is not None else None)
            request = dict(request)
            request[TRACE_KEY] = encode_trace_context(
                self.trace_id, parent, self.sampled)
        with self._lock:
            if self.closed:
                raise ServerReplyError("mix:closed",
                                       "session already closed")
            self.sock.settimeout(self.timeout_ms / 1000.0)
            try:
                # the channel mutex serializes whole round trips;
                # every wire op is bounded by the settimeout above
                # (see BLOCKING_HOLD_ALLOWED)
                # lint: allow=L011
                sent = send_frame(self.sock, request,
                                  self.max_frame_bytes)
                # lint: allow=L011 -- same deadline-bounded round trip
                reply, received = recv_frame_sized(self.sock,
                                                   self.max_frame_bytes)
            except (socket.timeout, ConnectionError, OSError,
                    WireError) as err:
                # The stream is desynced or gone: abandon the channel
                # so a retry cannot resend onto a broken framing.
                self.closed = True
                try:
                    self.sock.close()
                except OSError:
                    pass
                if isinstance(err, socket.timeout):
                    raise TransientSourceError(
                        "no reply within %.0fms" % self.timeout_ms
                        ) from None
                raise TransientSourceError(
                    "connection lost mid-exchange: %s" % err
                    ) from err
            with self.stats.lock:
                self.stats.messages += 1
                self.stats.commands += commands
                self.stats.bytes_transferred += sent + received
        if self.tracer is not None and self.tracer.active:
            self.tracer.emit("channel", "round_trip",
                             bytes=sent + received, commands=commands)
        if reply is None:
            with self._lock:
                self.closed = True
                try:
                    self.sock.close()
                except OSError:
                    pass
            raise TransientSourceError(
                "server closed the connection mid-session")
        if not reply.get("ok"):
            _raise_error_reply(reply)
        return reply

    # -- LXPServer surface -------------------------------------------------
    def get_root(self) -> FragHole:
        return FragHole(self.root_wire_id)

    def fill(self, hole_id: object) -> List[Fragment]:
        reply = self.call({"op": "fill", "hole": hole_id})
        fragments = reply.get("fragments")
        if fragments is None:
            raise ServerReplyError("mix:protocol",
                                   "fill reply carries no fragments")
        return decode_fragments(fragments)

    def fill_batch(self, hole_ids: Sequence[object], speculate: int = 0
                   ) -> List[Tuple[object, List[Fragment]]]:
        reply = self.call({"op": "fill_batch",
                           "holes": list(hole_ids),
                           "speculate": speculate},
                          commands=len(hole_ids))
        pairs = reply.get("replies")
        if not isinstance(pairs, list):
            raise ServerReplyError("mix:protocol",
                                   "fill_batch reply carries no "
                                   "replies array")
        decoded: List[Tuple[object, List[Fragment]]] = []
        for pair in pairs:
            if not isinstance(pair, list) or len(pair) != 2:
                raise ServerReplyError(
                    "mix:protocol",
                    "fill_batch reply pair must be "
                    "[hole, fragments], got %r" % (pair,))
            decoded.append((pair[0], decode_fragments(pair[1])))
        return decoded

    # -- session control ---------------------------------------------------
    def ping(self) -> bool:
        return bool(self.call({"op": "ping"}).get("pong"))

    def server_stats(self) -> Dict[str, Any]:
        reply = self.call({"op": "stats"})
        return {"session": reply.get("stats"),
                "server": reply.get("server")}

    def close(self) -> None:
        """Polite close: tell the server, then drop the socket.
        Idempotent and tolerant of a server that is already gone."""
        with self._lock:
            if self.closed:
                return
            self.closed = True
            try:
                self.sock.settimeout(self.timeout_ms / 1000.0)
                # close handshake under the channel mutex, bounded
                # by the settimeout above
                # lint: allow=L011
                send_frame(self.sock, {"op": "close"},
                           self.max_frame_bytes)
                # lint: allow=L011 -- same deadline-bounded handshake
                recv_frame_sized(self.sock, self.max_frame_bytes)
            except (socket.timeout, OSError, WireError):
                pass
            try:
                self.sock.close()
            except OSError:
                pass


class RemoteSession:
    """One open session against a remote daemon.

    ``root`` is the client-side :class:`XMLElement`; navigate it like
    any in-process result.  ``channel.stats`` carries the real wire
    traffic, ``context.stats_report()`` the whole client-side picture
    (buffer residency, retries, breaker state).  Context-manager
    friendly: ``with connect(...) as session: ...`` closes politely.
    """

    def __init__(self, session_id: str, root: XMLElement,
                 channel: SocketChannel,
                 context: ExecutionContext) -> None:
        self.session_id = session_id
        self.root = root
        self.channel = channel
        self.context = context

    @property
    def stats(self) -> ChannelStats:
        return self.channel.stats

    def ping(self) -> bool:
        return self.channel.ping()

    def server_stats(self) -> Dict[str, Any]:
        """The server's view of this session (and the daemon's own
        counters), fetched over the wire."""
        return self.channel.server_stats()

    def close(self) -> None:
        self.channel.close()

    def __enter__(self) -> "RemoteSession":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def connect(host: str, port: int, query: str,
            config: Optional[EngineConfig] = None,
            context: Optional[ExecutionContext] = None,
            timeout_ms: float = 10000.0,
            connect_timeout_ms: float = 5000.0,
            chunk_size: Optional[int] = None,
            depth: Optional[int] = None,
            clock: Optional[Clock] = None) -> RemoteSession:
    """Open a session: connect, send ``open``, build the client stack.

    ``config`` (or ``context.config``) is the *client-side* engine
    config -- its ``prefetch`` / ``prefetch_workers`` /
    ``batch_navigations`` knobs pick the buffer exactly as
    :func:`~repro.client.remote.connect_remote` does in-process, and
    its resilience knobs wrap the channel in retries/breakers.
    ``chunk_size`` / ``depth`` override the *server's* shipping
    granularity for this session.

    Raises :class:`ServerBusyError` / :class:`ServerDrainingError`
    when admission is refused, :class:`ServerReplyError` when the
    query itself is rejected.
    """
    from ..wrappers.base import buffered

    if context is None:
        context = ExecutionContext(
            config if config is not None else EngineConfig())
    engine_config = context.config
    sock = socket.create_connection(
        (host, port), timeout=connect_timeout_ms / 1000.0)
    try:
        sock.settimeout(timeout_ms / 1000.0)
        open_frame: Dict[str, Any] = {"op": "open", "query": query}
        if chunk_size is not None:
            open_frame["chunk_size"] = chunk_size
        if depth is not None:
            open_frame["depth"] = depth
        send_frame(sock, open_frame,
                   engine_config.serve_max_frame_bytes)
        reply, _ = recv_frame_sized(sock,
                                    engine_config.serve_max_frame_bytes)
    except BaseException:
        sock.close()
        raise
    if reply is None:
        sock.close()
        raise TransientSourceError(
            "server closed the connection before answering 'open'")
    if not reply.get("ok"):
        sock.close()
        _raise_error_reply(reply)
    root_wire = reply.get("root")
    session_id = str(reply.get("session"))
    if not isinstance(root_wire, int) or isinstance(root_wire, bool):
        sock.close()
        raise ServerReplyError(
            "mix:protocol",
            "open reply carries no root hole id: %r" % (reply,))
    # Trace context only exists when someone asked for tracing: an
    # idle tracer mints no id and ships no envelope, so the default
    # wire dialogue is byte-identical to a traceless build.
    tracer = context.tracer
    trace_id: Optional[str] = None
    sampled = True
    if tracer.configured:
        trace_id = tracer.ensure_trace_id()
        sampled = tracer.sample(engine_config.trace_sample_rate)
        if tracer.active:
            tracer.emit("trace", "sample", trace_id=trace_id,
                        sampled=sampled,
                        rate=engine_config.trace_sample_rate)
    channel = SocketChannel(sock, root_wire, timeout_ms=timeout_ms,
                            max_frame_bytes=(
                                engine_config.serve_max_frame_bytes),
                            tracer=tracer, trace_id=trace_id,
                            sampled=sampled)
    name = context.register_channel_auto(channel.stats)
    channel.name = name
    transport = resilient_server(channel, engine_config, name=name,
                                 clock=clock, tracer=context.tracer,
                                 context=context)
    buffer = buffered(transport, prefetch=engine_config.prefetch,
                      workers=engine_config.prefetch_workers,
                      batch=engine_config.batch_navigations,
                      tracer=context.tracer, name=name)
    context.register_buffer_auto(buffer.stats)
    root = XMLElement(buffer, buffer.root())
    return RemoteSession(session_id, root, channel, context)


def fetch_status(host: str, port: int,
                 timeout_ms: float = 5000.0,
                 prometheus: bool = False,
                 max_frame_bytes: int = MAX_FRAME_BYTES
                 ) -> Dict[str, Any]:
    """One-shot ``mix:status`` probe: connect, ask, disconnect.

    The admin verb needs no session: ``status`` is legal as a
    connection's first (and only) frame, and the daemon closes the
    connection after answering.  Returns the reply's ``status``
    payload; ``prometheus=True`` asks the daemon to inline its
    Prometheus text exposition under the ``"prometheus"`` key.

    Raises ``OSError``/``ConnectionError`` when the daemon is
    unreachable and the usual typed errors on an error reply.
    """
    sock = socket.create_connection(
        (host, port), timeout=timeout_ms / 1000.0)
    try:
        sock.settimeout(timeout_ms / 1000.0)
        request: Dict[str, Any] = {"op": "status"}
        if prometheus:
            request["prometheus"] = True
        send_frame(sock, request, max_frame_bytes)
        reply, _ = recv_frame_sized(sock, max_frame_bytes)
    finally:
        try:
            sock.close()
        except OSError:
            pass
    if reply is None:
        raise TransientSourceError(
            "server closed the connection before answering 'status'")
    if not reply.get("ok"):
        _raise_error_reply(reply)
    status = reply.get("status")
    if not isinstance(status, dict):
        raise ServerReplyError(
            "mix:protocol",
            "status reply carries no status object: %r" % (reply,))
    return status
