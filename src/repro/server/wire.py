"""The LXP wire codec: length-prefixed JSON frames over a socket.

One frame is a 4-byte big-endian unsigned length followed by that many
bytes of UTF-8 JSON encoding a single object.  Both directions use the
same framing; the protocol on top (``docs/PROTOCOLS.md``, "LXP wire
framing & session lifecycle") is strictly request/reply.

Fragments cross the wire in a compact array encoding::

    FragElem(label, children)  ->  ["e", label, [child, ...]]
    FragHole(wire_id)          ->  ["h", wire_id]

where ``wire_id`` is a session-scoped integer minted by the server's
hole table (:class:`~repro.server.session.HoleTable`) -- the in-
process hole identifiers embed live document pointers and never leave
the server.

Error taxonomy: :class:`WireError` is *permanent* (resending the same
bytes cannot help); :class:`TruncatedFrameError` marks a mid-frame
connection loss, :class:`FrameTooLargeError` an oversized length
prefix, and plain :class:`MalformedFrameError` everything else (bad
JSON, non-object payloads, bad fragment shapes).  A clean EOF *at a
frame boundary* is not an error: :func:`recv_frame` returns ``None``.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..buffer.holes import FragElem, FragHole, Fragment
from ..errors import PermanentSourceError

__all__ = [
    "WireError", "MalformedFrameError", "TruncatedFrameError",
    "FrameTooLargeError",
    "MAX_FRAME_BYTES", "send_frame", "recv_frame", "recv_frame_sized",
    "encode_fragment", "decode_fragment",
    "encode_fragments", "decode_fragments",
    "TRACE_KEY", "encode_trace_context", "decode_trace_context",
]

#: default per-frame size ceiling (overridable per server/client via
#: ``EngineConfig.serve_max_frame_bytes``)
MAX_FRAME_BYTES = 1 << 20

_HEADER = struct.Struct(">I")


class WireError(PermanentSourceError):
    """A wire-protocol violation.  Permanent: the same bytes will
    fail the same way, so the resilience layer never retries it."""


class MalformedFrameError(WireError):
    """The frame arrived whole but its payload is not a protocol
    object (bad JSON, a non-dict, an illegal fragment shape)."""


class FrameTooLargeError(MalformedFrameError):
    """The length prefix exceeds the frame ceiling -- either a hostile
    client or garbage bytes parsed as a huge length."""


class TruncatedFrameError(WireError):
    """The peer disconnected mid-frame (EOF inside the header or the
    payload)."""


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    """Read exactly ``count`` bytes; raise on EOF partway through.

    An empty first read is reported as zero bytes so the caller can
    distinguish a clean close (EOF at a frame boundary) from a
    truncation.
    """
    chunks: List[bytes] = []
    remaining = count
    while remaining > 0:
        chunk = sock.recv(remaining)
        if not chunk:
            if remaining == count:
                return b""
            raise TruncatedFrameError(
                "connection closed mid-frame (%d of %d bytes)"
                % (count - remaining, count))
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def send_frame(sock: socket.socket, payload: Dict[str, Any],
               max_frame_bytes: int = MAX_FRAME_BYTES) -> int:
    """Serialize ``payload`` and send it as one frame.

    Returns the total bytes put on the wire (header included), so
    channel accounting can charge real sizes.  Refuses to *produce*
    an oversized frame -- the sender's bug, caught before the peer
    would have to kill the connection.
    """
    body = json.dumps(payload, separators=(",", ":"),
                      ensure_ascii=True).encode("ascii")
    if len(body) > max_frame_bytes:
        raise FrameTooLargeError(
            "refusing to send a %d-byte frame (limit %d)"
            % (len(body), max_frame_bytes))
    sock.sendall(_HEADER.pack(len(body)) + body)
    return _HEADER.size + len(body)


def recv_frame(sock: socket.socket,
               max_frame_bytes: int = MAX_FRAME_BYTES
               ) -> Optional[Dict[str, Any]]:
    """Read one frame; ``None`` on a clean EOF at a frame boundary.

    Socket timeouts propagate as ``socket.timeout`` (the caller's
    idle/slow-loris policy decides what that means); everything else
    that can go wrong raises a :class:`WireError` subclass.
    """
    payload, _ = recv_frame_sized(sock, max_frame_bytes)
    return payload


def recv_frame_sized(sock: socket.socket,
                     max_frame_bytes: int = MAX_FRAME_BYTES
                     ) -> "Tuple[Optional[Dict[str, Any]], int]":
    """Like :func:`recv_frame`, also reporting the bytes read off the
    wire (header included) so channel accounting can charge real
    transfer sizes."""
    header = _recv_exact(sock, _HEADER.size)
    if not header:
        return None, 0
    (length,) = _HEADER.unpack(header)
    if length > max_frame_bytes:
        raise FrameTooLargeError(
            "frame of %d bytes exceeds the %d-byte limit"
            % (length, max_frame_bytes))
    body = _recv_exact(sock, length) if length else b""
    if length and not body:
        raise TruncatedFrameError(
            "connection closed mid-frame (0 of %d payload bytes)"
            % length)
    try:
        payload = json.loads(body.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as err:
        raise MalformedFrameError(
            "frame payload is not valid JSON: %s" % err) from None
    if not isinstance(payload, dict):
        raise MalformedFrameError(
            "frame payload must be a JSON object, got %s"
            % type(payload).__name__)
    return payload, _HEADER.size + length


# ----------------------------------------------------------------------
# Trace context envelope
# ----------------------------------------------------------------------

#: the optional request-envelope field carrying trace context
TRACE_KEY = "trace"


def encode_trace_context(trace_id: str,
                         parent_span_id: Optional[int],
                         sampled: bool) -> Dict[str, Any]:
    """The request-envelope trace context shape.

    ``id`` names the whole cross-process trace, ``parent`` is the
    client span issuing this request (the server adopts it as the
    causal parent of its ``server.request`` span), and ``sampled``
    is the deterministic sampling verdict -- a server never records
    spans for a trace the client sampled out, so one decision
    governs both processes.
    """
    return {"id": trace_id, "parent": parent_span_id,
            "sampled": bool(sampled)}


def decode_trace_context(frame: Dict[str, Any]
                         ) -> Optional[Dict[str, Any]]:
    """Pop and validate a request frame's trace context, in place.

    Returns the normalized ``{"id", "parent", "sampled"}`` dict, or
    None when the frame carries no (or a malformed) context.
    Deliberately *tolerant*: observability must never break
    navigation, so a bad envelope is dropped rather than killing the
    session -- the request itself is still well-formed without it.
    """
    raw = frame.pop(TRACE_KEY, None)
    if not isinstance(raw, dict):
        return None
    trace_id = raw.get("id")
    parent = raw.get("parent")
    sampled = raw.get("sampled", True)
    if not isinstance(trace_id, str) or not trace_id:
        return None
    if parent is not None and (not isinstance(parent, int)
                               or isinstance(parent, bool)):
        return None
    if not isinstance(sampled, bool):
        return None
    return {"id": trace_id, "parent": parent, "sampled": sampled}


# ----------------------------------------------------------------------
# Fragment codec
# ----------------------------------------------------------------------

def encode_fragment(fragment: Fragment,
                    intern: Callable[[object], int]) -> List[Any]:
    """One fragment as the wire array shape; holes are interned to
    session-scoped integers through ``intern``."""
    if isinstance(fragment, FragHole):
        return ["h", intern(fragment.hole_id)]
    return ["e", fragment.label,
            [encode_fragment(child, intern)
             for child in fragment.children]]


def encode_fragments(fragments: List[Fragment],
                     intern: Callable[[object], int]) -> List[Any]:
    """A fill reply's fragment list in wire shape."""
    return [encode_fragment(fragment, intern) for fragment in fragments]


def decode_fragment(obj: Any) -> Fragment:
    """The inverse codec, with strict shape validation: anything that
    is not exactly the documented array shape is malformed."""
    if (not isinstance(obj, list)) or not obj:
        raise MalformedFrameError(
            "fragment must be a non-empty array, got %r" % (obj,))
    kind = obj[0]
    if kind == "h":
        if len(obj) != 2 or not isinstance(obj[1], int) \
                or isinstance(obj[1], bool):
            raise MalformedFrameError(
                "hole fragment must be ['h', int], got %r" % (obj,))
        return FragHole(obj[1])
    if kind == "e":
        if len(obj) != 3 or not isinstance(obj[1], str) \
                or not isinstance(obj[2], list):
            raise MalformedFrameError(
                "element fragment must be ['e', label, [children]], "
                "got %r" % (obj,))
        return FragElem(obj[1],
                        tuple(decode_fragment(child)
                              for child in obj[2]))
    raise MalformedFrameError(
        "unknown fragment kind %r (expected 'e' or 'h')" % (kind,))


def decode_fragments(obj: Any) -> List[Fragment]:
    """Decode a fill reply's fragment list (strictly validated)."""
    if not isinstance(obj, list):
        raise MalformedFrameError(
            "fragment list must be an array, got %r" % (obj,))
    return [decode_fragment(item) for item in obj]
