"""The socket-facing mediator session server.

Everything before this package runs in one address space; here the
paper's client <-> mediator dialogue becomes a real network protocol:
a long-lived daemon (:class:`~repro.server.daemon.MediatorServer`)
accepts TCP connections, speaks the existing LXP fragment protocol
(including the pipelined ``fill_batch`` form) through a
length-prefixed JSON wire codec (:mod:`repro.server.wire`), and runs
one *session* per connection -- its own prepared query, its own
:class:`~repro.runtime.context.ExecutionContext`, its own hole table.

The hardening is the point, not an afterthought: admission control
with typed ``mix:busy`` rejections, per-request deadlines, per-session
navigation/byte budgets, idle and stalled-reader timeouts, tolerance
for malformed frames and mid-frame disconnects (the offending session
dies, the server never does), and graceful drain on SIGTERM.

Client side, :func:`~repro.server.client.connect` opens a socket
session and hands back the ordinary :class:`~repro.client.element.
XMLElement` API -- the stack of paper Figure 7, now with a real wire
in the middle::

    XMLElement -> BufferComponent -> SocketChannel ==tcp== MediatorServer
        -> NavigableLXPServer -> VirtualDocument -> lazy operators -> sources
"""

from .client import (
    RemoteSession,
    ServerBusyError,
    ServerDrainingError,
    ServerReplyError,
    SocketChannel,
    connect,
    fetch_status,
)
from .daemon import MediatorServer, ServerStats
from .wire import (
    FrameTooLargeError,
    MalformedFrameError,
    TruncatedFrameError,
    WireError,
)

__all__ = [
    "MediatorServer", "ServerStats",
    "SocketChannel", "RemoteSession", "connect", "fetch_status",
    "ServerBusyError", "ServerDrainingError", "ServerReplyError",
    "WireError", "MalformedFrameError", "TruncatedFrameError",
    "FrameTooLargeError",
]
