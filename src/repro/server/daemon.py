"""The mediator daemon: LXP sessions over real sockets, hardened.

:class:`MediatorServer` turns a configured
:class:`~repro.mediator.mix.MIXMediator` into a long-lived TCP
service.  One connection is one *session*: the first frame must be an
``open`` carrying an XMAS query; the server prepares it (its own
:class:`~repro.runtime.context.ExecutionContext`, caches, tracing)
and exports the virtual answer through the wire codec; subsequent
``fill`` / ``fill_batch`` frames navigate it exactly as the
in-process LXP dialogue would, holes travelling as session-scoped
integers.

Threading model: one accept-loop thread plus one handler thread per
connection (the PR 3 thread-safety pass across the tracer, caches,
breakers, and stats objects is what makes the shared mediator safe
to navigate from many handler threads at once).

Hardening (all knobs on :class:`~repro.runtime.config.EngineConfig`,
``serve_*`` fields):

* **admission control** -- at ``serve_max_sessions`` open sessions a
  new connection is answered with a typed ``mix:busy`` frame and
  closed; the kernel accept queue behind the gate is bounded by
  ``serve_accept_backlog``.
* **idle timeout** -- a client that stops talking (including a
  slow-loris dribbling half a frame) is killed after
  ``serve_idle_timeout_ms`` with a best-effort ``mix:idle`` reply.
* **backpressure** -- a client that stops *reading* stalls the
  server's send; after ``serve_send_timeout_ms`` the session is
  killed, freeing the handler instead of buffering unboundedly.
* **deadlines** -- ``serve_request_deadline_ms`` bounds the
  navigation work of a single request via a clock check on every
  document navigation (``mix:deadline``).
* **budgets** -- ``serve_session_max_fills`` /
  ``serve_session_max_bytes`` bound one session's total navigation
  and shipped-fragment volume (``mix:budget``).
* **fault tolerance** -- malformed frames, oversized frames,
  mid-frame disconnects, and handler-internal errors kill the
  offending *session* only; sibling sessions and the accept loop
  never observe them.
* **graceful drain** -- :meth:`MediatorServer.drain` (wired to
  SIGTERM by the ``serve`` CLI) stops accepting, lets in-flight
  requests finish, answers the next request of every surviving
  session with ``mix:draining``, wakes idle sessions, and
  force-closes stragglers after ``serve_drain_timeout_ms``.
"""

from __future__ import annotations

import contextlib
import io
import socket
import threading
import time
from typing import (Any, ContextManager, Dict, List, Optional,
                    Tuple)

from ..errors import ReproError
from ..mediator.mix import MIXMediator
from ..runtime.config import EngineConfig
from ..runtime.observability import (
    FlightRecorder,
    MetricsRegistry,
    export_prometheus,
)
from ..runtime.resilience import SYSTEM_CLOCK, Clock
from .session import (
    DeadlineDocument,
    RequestDeadlineError,
    Session,
    SessionBudgetError,
)
from .wire import (
    WireError,
    decode_trace_context,
    encode_fragments,
    recv_frame,
    send_frame,
)
from ..client.remote import NavigableLXPServer
from ..runtime.locks import make_lock

__all__ = ["ServerStats", "MediatorServer"]

#: accept-loop poll granularity: how often the loop wakes to notice
#: a drain request (the listener socket's timeout, in seconds)
_ACCEPT_POLL_S = 0.05

#: latency buckets of the always-on per-request histogram (ms)
_REQUEST_MS_BUCKETS = (1.0, 5.0, 25.0, 100.0, 500.0, 2500.0, 10000.0)


class ServerStats:
    """Lifetime counters of one daemon, lock-guarded.

    Mutated by the accept loop and every handler thread; read through
    :meth:`snapshot` by reporters (the ``stats`` wire op, the load
    generator, tests) while traffic is live.
    """

    def __init__(self) -> None:
        self.accepted = 0
        self.rejected_busy = 0
        self.rejected_draining = 0
        self.sessions_opened = 0
        self.sessions_closed = 0
        #: requests answered successfully (any session-protocol op;
        #: admin ``status`` probes are counted separately)
        self.requests = 0
        #: fill commands answered (``fill`` = 1, ``fill_batch`` = its
        #: hole count) -- what client-side fill accounting reconciles
        #: against
        self.fills = 0
        self.protocol_kills = 0
        self.idle_kills = 0
        self.stalled_kills = 0
        self.deadline_kills = 0
        self.budget_kills = 0
        self.disconnect_kills = 0
        self.internal_kills = 0
        self.query_rejects = 0
        self.drained = 0
        self.lock = make_lock("server.stats")

    def bump(self, field_name: str, amount: int = 1) -> None:
        with self.lock:
            setattr(self, field_name,
                    getattr(self, field_name) + amount)

    def snapshot(self) -> Dict[str, int]:
        """A consistent copy of every counter."""
        with self.lock:
            return {
                name: value
                for name, value in sorted(vars(self).items())
                if isinstance(value, int)
            }


class _Handler:
    """Bookkeeping record of one live connection."""

    def __init__(self, conn: socket.socket, thread: threading.Thread,
                 address: Tuple[str, int]) -> None:
        self.conn = conn
        self.thread = thread
        self.address = address
        #: serializes writes to ``conn``: the handler replies on it,
        #: and drain may inject a ``mix:draining`` notice
        self.write_lock = make_lock("server.session.write")
        self.session: Optional[Session] = None


class MediatorServer:
    """A hardened TCP daemon serving mediator sessions over LXP.

    Usage::

        server = MediatorServer(mediator)       # config from mediator
        host, port = server.start()
        ...
        server.drain()                          # graceful shutdown

    or as a context manager (``__exit__`` drains).  ``clock`` injects
    the time source for request deadlines (tests use a
    :class:`~repro.testing.faults.FakeClock`); socket-level timeouts
    (idle, send) are real kernel timeouts and always use wall time.
    """

    def __init__(self, mediator: MIXMediator,
                 config: Optional[EngineConfig] = None,
                 clock: Optional[Clock] = None) -> None:
        self.mediator = mediator
        self.config = config if config is not None else mediator.config
        self.clock: Clock = clock if clock is not None else SYSTEM_CLOCK
        self.stats = ServerStats()
        self.tracer = mediator.tracer
        self.metrics = mediator.runtime.metrics
        #: always-on operational telemetry, independent of the
        #: mediator's gated ``metrics_enabled`` registry: the daemon
        #: must be scrapeable (``mix:status``) even on a default
        #: config.  Touched only at server-level events (per request,
        #: not per navigation), so the cost is a few lock-guarded
        #: increments per round trip.
        self.telemetry = MetricsRegistry(enabled=True)
        #: the flight recorder: always on, dumped on kills and drain
        self.recorder = FlightRecorder(
            capacity=self.config.serve_flight_recorder_events,
            incident_dir=self.config.serve_incident_dir,
            clock=self.clock)
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._handlers: List[_Handler] = []
        self._active = 0
        self._session_serial = 0
        self._draining = False
        self._started = False
        self._lock = make_lock("server.daemon")
        self.address: Optional[Tuple[str, int]] = None

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> Tuple[str, int]:
        """Bind, listen, and start accepting; returns (host, port)."""
        with self._lock:
            if self._started:
                raise RuntimeError("server already started")
            self._started = True
        config = self.config
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((config.serve_host, config.serve_port))
        listener.listen(config.serve_accept_backlog)
        # The timeout doubles as the drain poll: the accept loop wakes
        # at this cadence to notice a drain request.
        listener.settimeout(_ACCEPT_POLL_S)
        self._listener = listener
        self.address = listener.getsockname()[:2]
        self.tracer.emit("server", "listen", host=self.address[0],
                         port=self.address[1],
                         max_sessions=config.serve_max_sessions)
        self.recorder.record("server", "listen", host=self.address[0],
                             port=self.address[1])
        thread = threading.Thread(target=self._accept_loop,
                                  name="mix-accept", daemon=True)
        self._accept_thread = thread
        thread.start()
        return self.address

    def __enter__(self) -> "MediatorServer":
        self.start()
        return self

    def __exit__(self, *exc: object) -> None:
        self.drain()

    @property
    def active_sessions(self) -> int:
        """Currently admitted (not yet closed) sessions."""
        with self._lock:
            return self._active

    @property
    def draining(self) -> bool:
        with self._lock:
            return self._draining

    # -- accept loop -------------------------------------------------------
    def _accept_loop(self) -> None:
        listener = self._listener
        assert listener is not None
        while True:
            try:
                conn, address = listener.accept()
            except socket.timeout:
                if self.draining:
                    return
                continue
            except OSError:
                # Listener closed (drain) -- exit quietly.
                return
            with self._lock:
                if self._draining:
                    admitted = None
                elif self._active < self.config.serve_max_sessions:
                    self._active += 1
                    admitted = True
                else:
                    admitted = False
            self.stats.bump("accepted")
            self.tracer.emit("server", "accept", peer=address[0])
            if self.config.serve_send_buffer_bytes is not None:
                try:
                    conn.setsockopt(
                        socket.SOL_SOCKET, socket.SO_SNDBUF,
                        self.config.serve_send_buffer_bytes)
                except OSError:
                    pass
            handler = _Handler(conn, threading.Thread(), address[:2])
            thread = threading.Thread(
                target=self._handle, args=(handler, admitted),
                name="mix-session", daemon=True)
            handler.thread = thread
            if admitted:
                with self._lock:
                    self._handlers.append(handler)
            thread.start()

    # -- the session protocol ----------------------------------------------
    def _reply(self, handler: _Handler,
               payload: Dict[str, Any]) -> None:
        """Send one frame under the connection's write lock and the
        send timeout (a stalled reader raises ``socket.timeout``)."""
        config = self.config
        with handler.write_lock:
            handler.conn.settimeout(
                config.serve_send_timeout_ms / 1000.0)
            # the write lock serializes replies to one connection;
            # the send is bounded by the settimeout above (see
            # BLOCKING_HOLD_ALLOWED)
            # lint: allow=L011
            send_frame(handler.conn, payload,
                       config.serve_max_frame_bytes)

    def _error_reply(self, handler: _Handler, code: str,
                     detail: str) -> None:
        """Best-effort typed error frame: the peer may already be
        gone, in which case the error is only in the stats/trace."""
        try:
            self._reply(handler, {"ok": False, "error": code,
                                  "detail": detail})
        except (socket.timeout, OSError, WireError):
            pass

    def _kill(self, handler: _Handler, reason: str,
              counter: str, detail: str = "") -> None:
        """Terminate one session (never the server), leaving a full
        incident dump of the flight-recorder ring behind."""
        self.stats.bump(counter)
        session_id = (handler.session.session_id
                      if handler.session is not None else None)
        self.tracer.emit("server", "kill", session=session_id,
                         reason=reason, detail=detail)
        self.recorder.record("server", "kill", session=session_id,
                             reason=reason, detail=detail)
        self.telemetry.counter(
            "server_kills_total",
            help_text="Sessions killed by the daemon, by reason."
        ).inc(reason=reason)
        if self.metrics.enabled:
            self.metrics.counter("server_kills_total").inc(
                reason=reason)
        self.recorder.incident(reason, session=session_id,
                               detail=detail)

    def _next_session_id(self) -> str:
        with self._lock:
            self._session_serial += 1
            return "s#%d" % self._session_serial

    def _open_session(self, handler: _Handler,
                      frame: Dict[str, Any]) -> Dict[str, Any]:
        """Prepare the query and wire up the session state."""
        query = frame.get("query")
        if not isinstance(query, str) or not query.strip():
            raise WireError("open frame must carry a non-empty "
                            "'query' string")
        config = self.config
        chunk_size = frame.get("chunk_size", config.chunk_size)
        depth = frame.get("depth", config.depth)
        result = self.mediator.prepare(query)
        deadline_document = DeadlineDocument(result.document,
                                             clock=self.clock)
        exporter = NavigableLXPServer(deadline_document,
                                      chunk_size=chunk_size,
                                      depth=depth)
        exporter.stats.metrics = self.metrics
        session = Session(
            self._next_session_id(), result, exporter,
            deadline_document,
            max_fills=config.serve_session_max_fills,
            max_bytes=config.serve_session_max_bytes,
            opened_at_ms=self.clock.now_ms())
        exporter.stats.source = session.session_id
        handler.session = session
        root_wire = session.holes.intern(exporter.get_root().hole_id)
        self.stats.bump("sessions_opened")
        self.tracer.emit("server", "open", session=session.session_id,
                         peer=handler.address[0])
        self.recorder.record("server", "open",
                             session=session.session_id,
                             peer=handler.address[0])
        self.telemetry.counter(
            "server_sessions_total",
            help_text="Sessions opened over the daemon's lifetime."
        ).inc()
        if self.metrics.enabled:
            self.metrics.counter("server_sessions_total").inc()
            self.metrics.gauge("server_active_sessions").set(
                self.active_sessions)
        return {"ok": True, "session": session.session_id,
                "root": root_wire}

    def _dispatch(self, handler: _Handler,
                  frame: Dict[str, Any]) -> Tuple[Dict[str, Any], bool]:
        """Answer one request frame.

        Returns ``(reply, keep_going)``; raises the typed errors the
        caller maps to ``mix:*`` replies.
        """
        op = frame.get("op")
        session = handler.session
        if op == "status":
            # The admin verb: legal as a connection's *first* frame
            # (no session required -- `repro status` probes this way,
            # and the connection closes after the answer) or
            # mid-session (the dialogue continues).
            self.telemetry.counter(
                "server_status_requests_total",
                help_text="Admin status probes answered."
            ).inc()
            reply = {"ok": True, "status": self.status(
                include_prometheus=bool(frame.get("prometheus")))}
            return reply, session is not None
        if session is None:
            if op != "open":
                raise WireError(
                    "first frame must be 'open', got op=%r" % (op,))
            return self._open_session(handler, frame), True
        if op == "open":
            raise WireError("session already open")
        if op == "ping":
            return {"ok": True, "pong": True}, True
        if op == "close":
            return {"ok": True, "closed": True}, False
        if op == "stats":
            return {"ok": True, "stats": session.stats(),
                    "server": self.stats.snapshot()}, True
        if op == "fill":
            session.check_budget()
            hole_id = session.holes.resolve(frame.get("hole"))
            fragments = self._navigate(
                session, lambda: session.exporter.fill(hole_id))
            session.charge(1, iter(fragments))
            return {"ok": True,
                    "fragments": encode_fragments(
                        fragments, session.holes.intern)}, True
        if op == "fill_batch":
            session.check_budget()
            holes = frame.get("holes")
            if not isinstance(holes, list) or not holes:
                raise WireError("fill_batch frame must carry a "
                                "non-empty 'holes' array")
            speculate = frame.get("speculate", 0)
            if not isinstance(speculate, int) or speculate < 0:
                raise WireError("speculate must be a non-negative "
                                "integer")
            hole_ids = [session.holes.resolve(h) for h in holes]
            replies = self._navigate(
                session,
                lambda: session.exporter.fill_batch(hole_ids,
                                                    speculate))
            encoded = []
            for hole_id, fragments in replies:
                session.charge(1, iter(fragments))
                encoded.append(
                    [session.holes.intern(hole_id),
                     encode_fragments(fragments,
                                      session.holes.intern)])
            return {"ok": True, "replies": encoded}, True
        raise WireError("unknown op %r" % (op,))

    def _navigate(self, session: Session, operation: Any) -> Any:
        """Run one navigation under the per-request deadline."""
        session.deadline_document.arm(
            self.config.serve_request_deadline_ms)
        try:
            return operation()
        finally:
            session.deadline_document.disarm()

    def _handle(self, handler: _Handler,
                admitted: Optional[bool]) -> None:
        """The per-connection thread body."""
        config = self.config
        try:
            if admitted is None:
                self.stats.bump("rejected_draining")
                self.tracer.emit("server", "reject", reason="draining")
                self._error_reply(handler, "mix:draining",
                                  "server is draining")
                return
            if not admitted:
                self.stats.bump("rejected_busy")
                self.tracer.emit("server", "reject", reason="busy")
                if self.metrics.enabled:
                    self.metrics.counter(
                        "server_rejected_total").inc(reason="busy")
                self._error_reply(
                    handler, "mix:busy",
                    "server at its %d-session capacity"
                    % config.serve_max_sessions)
                return
            with self.tracer.span("server", "session",
                                  peer=handler.address[0]):
                self._session_loop(handler)
        finally:
            try:
                handler.conn.close()
            except OSError:
                pass
            if admitted:
                with self._lock:
                    self._active -= 1
                    if handler in self._handlers:
                        self._handlers.remove(handler)
                self.stats.bump("sessions_closed")
                session_id = (handler.session.session_id
                              if handler.session is not None else None)
                self.tracer.emit("server", "close", session=session_id)
                if self.metrics.enabled:
                    self.metrics.gauge("server_active_sessions").set(
                        self.active_sessions)

    def _session_loop(self, handler: _Handler) -> None:
        config = self.config
        while True:
            if self.draining:
                self.stats.bump("drained")
                self._error_reply(handler, "mix:draining",
                                  "server is draining")
                return
            handler.conn.settimeout(
                config.serve_idle_timeout_ms / 1000.0)
            try:
                frame = recv_frame(handler.conn,
                                   config.serve_max_frame_bytes)
            except socket.timeout:
                if self.draining:
                    self.stats.bump("drained")
                    return
                self._kill(handler, "idle", "idle_kills")
                self._error_reply(handler, "mix:idle",
                                  "no complete frame within %.0fms"
                                  % config.serve_idle_timeout_ms)
                return
            except WireError as err:
                if self.draining:
                    self.stats.bump("drained")
                    return
                self._kill(handler, "protocol", "protocol_kills",
                           detail=type(err).__name__)
                self._error_reply(handler, "mix:protocol", str(err))
                return
            except (ConnectionError, OSError):
                if self.draining:
                    self.stats.bump("drained")
                    return
                self._kill(handler, "disconnect", "disconnect_kills")
                return
            if frame is None:
                # Clean close at a frame boundary: a polite client.
                if self.draining:
                    self.stats.bump("drained")
                return
            trace_context = decode_trace_context(frame)
            op = str(frame.get("op"))
            session = handler.session
            if session is not None:
                session.requests += 1
                session.in_flight = op
                if trace_context is not None:
                    # The adopt event (like the server.request spans)
                    # honors the client's sampling verdict: a
                    # sampled-out trace leaves no record server-side.
                    if session.trace_context is None \
                            and trace_context["sampled"] \
                            and self.tracer.active:
                        self.tracer.emit(
                            "trace", "adopt",
                            session=session.session_id,
                            trace_id=trace_context["id"],
                            sampled=trace_context["sampled"])
                    session.trace_context = trace_context
            started_ms = self.clock.now_ms()
            try:
                with self._request_span(trace_context, op):
                    reply, keep_going = self._dispatch(handler, frame)
            except RequestDeadlineError as err:
                self._kill(handler, "deadline", "deadline_kills")
                self._error_reply(handler, "mix:deadline", str(err))
                return
            except SessionBudgetError as err:
                self._kill(handler, "budget", "budget_kills")
                self._error_reply(handler, "mix:budget", str(err))
                return
            except WireError as err:
                self._kill(handler, "protocol", "protocol_kills",
                           detail=type(err).__name__)
                self._error_reply(handler, "mix:protocol", str(err))
                return
            except ReproError as err:
                # A bad query or a source-side failure: this session's
                # problem, reported and closed; the server lives on.
                self.stats.bump("query_rejects")
                self._error_reply(handler, "mix:query",
                                  "%s: %s" % (type(err).__name__, err))
                return
            except Exception as err:  # never take the server down
                self._kill(handler, "internal", "internal_kills",
                           detail=type(err).__name__)
                self._error_reply(handler, "mix:error",
                                  "%s: %s" % (type(err).__name__, err))
                return
            elapsed_ms = self.clock.now_ms() - started_ms
            if handler.session is not None:
                handler.session.in_flight = None
            fills = 0
            if op == "fill":
                fills = 1
            elif op == "fill_batch":
                holes = frame.get("holes")
                fills = len(holes) if isinstance(holes, list) else 0
            self._observe_request(handler, op, elapsed_ms, fills)
            try:
                self._reply(handler, reply)
            except socket.timeout:
                self._kill(handler, "stalled", "stalled_kills")
                return
            except WireError as err:
                # The server produced an unsendable (oversized) reply:
                # its own bug, charged to this session, not the peer's.
                self._kill(handler, "internal", "internal_kills",
                           detail=type(err).__name__)
                self._error_reply(handler, "mix:error", str(err))
                return
            except (ConnectionError, OSError):
                self._kill(handler, "disconnect", "disconnect_kills")
                return
            # Delivered: these are the counters client-side accounting
            # reconciles against, so they only move once the reply is
            # actually on the wire.  Admin status probes stay out of
            # the session-protocol counters (they have their own
            # telemetry counter) so a monitoring scrape never skews a
            # load run's client/server reconciliation.
            if op != "status":
                self.stats.bump("requests")
                if fills:
                    self.stats.bump("fills", fills)
            if not keep_going:
                return

    # -- observability -----------------------------------------------------
    def _request_span(self, trace_context: Optional[Dict[str, Any]],
                      op: str) -> ContextManager[Any]:
        """The ``server.request`` span for one dispatch.

        When the request carries a wire trace context, its client
        span id and trace id ride in the span data (``client_parent``
        / ``trace_id``) -- what :func:`~repro.runtime.observability.
        merge_traces` uses to stitch the server's spans under the
        client navigation that caused them.  A context whose
        ``sampled`` bit is off suppresses the span entirely: the
        client's deterministic sampling verdict governs both
        processes.
        """
        if trace_context is not None and not trace_context["sampled"]:
            return contextlib.nullcontext()
        data: Dict[str, Any] = {"op": op}
        if trace_context is not None:
            data["trace_id"] = trace_context["id"]
            if trace_context["parent"] is not None:
                data["client_parent"] = trace_context["parent"]
        return self.tracer.span("server", "request", **data)

    def _observe_request(self, handler: _Handler, op: str,
                         elapsed_ms: float, fills: int) -> None:
        """Per-request operational accounting: flight-recorder entry,
        always-on telemetry, and the slow-request log."""
        session = handler.session
        session_id = (session.session_id
                      if session is not None else None)
        self.recorder.record("server", "request", session=session_id,
                             op=op, elapsed_ms=round(elapsed_ms, 3),
                             fills=fills)
        self.telemetry.counter(
            "server_requests_total",
            help_text="Requests answered, by op."
        ).inc(op=op)
        if fills:
            self.telemetry.counter(
                "server_fills_total",
                help_text="Fill commands answered (batch holes "
                          "counted individually)."
            ).inc(fills)
        self.telemetry.histogram(
            "server_request_ms", buckets=_REQUEST_MS_BUCKETS,
            help_text="Request dispatch latency in milliseconds, "
                      "by op."
        ).observe(elapsed_ms, op=op)
        threshold = self.config.slow_request_ms
        if threshold is not None and elapsed_ms >= threshold:
            self.recorder.record(
                "server", "slow_request", session=session_id, op=op,
                elapsed_ms=round(elapsed_ms, 3),
                threshold_ms=threshold)
            self.telemetry.counter(
                "server_slow_requests_total",
                help_text="Requests at or over the slow-request "
                          "threshold, by op."
            ).inc(op=op)
            if self.tracer.active:
                self.tracer.emit(
                    "server", "slow_request", session=session_id,
                    op=op, elapsed_ms=round(elapsed_ms, 3),
                    threshold_ms=threshold)

    def _fragcache_stats(self) -> Optional[Dict[str, Any]]:
        """The shared fragment store's counters, or None when the
        feature is off (the module stays unimported, per its
        contract)."""
        if not self.config.fragment_cache:
            return None
        from ..runtime.fragcache import shared_store
        store = shared_store()
        stats: Dict[str, Any] = dict(store.stats.snapshot())
        stats["entries"] = store.entry_count()
        stats["shards"] = store.shards
        return stats

    def status(self, include_prometheus: bool = False
               ) -> Dict[str, Any]:
        """The daemon's live operational picture (the ``mix:status``
        reply body; schema documented in PROTOCOLS.md)."""
        with self._lock:
            handlers = list(self._handlers)
            draining = self._draining
        now_ms = self.clock.now_ms()
        sessions = []
        for handler in handlers:
            session = handler.session
            if session is None:
                continue
            row = session.status_row(now_ms)
            row["peer"] = handler.address[0]
            sessions.append(row)
        sessions.sort(key=lambda row: str(row["session"]))
        payload: Dict[str, Any] = {
            "draining": draining,
            "address": (list(self.address)
                        if self.address is not None else None),
            "active_sessions": self.active_sessions,
            "server": self.stats.snapshot(),
            "sessions": sessions,
            "fragcache": self._fragcache_stats(),
            "flight_recorder": self.recorder.stats(),
            "incidents": list(self.recorder.incidents),
        }
        if include_prometheus:
            payload["prometheus"] = self.prometheus_text()
        self.tracer.emit("server", "status", sessions=len(sessions),
                         draining=draining)
        return payload

    def prometheus_text(self) -> str:
        """The always-on telemetry as Prometheus text exposition.

        The lifetime :class:`ServerStats` counters are folded in as a
        labelled gauge at scrape time, so a scrape always reflects
        the current counter state without per-event double writes.
        """
        gauge = self.telemetry.gauge(
            "server_lifetime_count",
            help_text="Lifetime daemon counters, by counter name.")
        for name, value in self.stats.snapshot().items():
            gauge.set(value, counter=name)
        self.telemetry.gauge(
            "server_sessions_active",
            help_text="Currently admitted sessions."
        ).set(self.active_sessions)
        return export_prometheus(self.telemetry, io.StringIO())

    # -- drain -------------------------------------------------------------
    def drain(self, timeout_ms: Optional[float] = None) -> bool:
        """Graceful shutdown: stop accepting, finish in-flight work,
        cancel idle sessions, force-close stragglers.

        Returns True when every session ended within the grace period
        (``serve_drain_timeout_ms`` by default), False when
        stragglers had to be force-closed.  Idempotent; safe to call
        from a signal handler's deferred path.
        """
        with self._lock:
            if self._draining:
                already = True
            else:
                self._draining = True
                already = False
            listener = self._listener
            handlers = list(self._handlers)
        if not already:
            self.tracer.emit("server", "drain", phase="begin",
                             in_flight=len(handlers))
            if listener is not None:
                try:
                    listener.close()
                except OSError:
                    pass
        grace_ms = (timeout_ms if timeout_ms is not None
                    else self.config.serve_drain_timeout_ms)
        deadline = time.monotonic() + grace_ms / 1000.0
        accept_thread = self._accept_thread
        if accept_thread is not None:
            accept_thread.join(max(0.0, deadline - time.monotonic())
                               + _ACCEPT_POLL_S * 2)
        # Wake sessions parked in recv: a non-blocking write-lock
        # probe sends the draining notice only to *idle* sessions
        # (busy ones will see the flag after their in-flight reply),
        # then the read side is shut down to interrupt the recv.
        for handler in handlers:
            if handler.write_lock.acquire(blocking=False):
                try:
                    handler.conn.settimeout(
                        self.config.serve_send_timeout_ms / 1000.0)
                    # drain notice under a non-blocking write-lock
                    # probe, send bounded by the settimeout above
                    # lint: allow=L011
                    send_frame(handler.conn,
                               {"ok": False, "error": "mix:draining",
                                "detail": "server is draining"},
                               self.config.serve_max_frame_bytes)
                except (socket.timeout, OSError, WireError):
                    pass
                finally:
                    handler.write_lock.release()
            try:
                handler.conn.shutdown(socket.SHUT_RD)
            except OSError:
                pass
        clean = True
        for handler in handlers:
            handler.thread.join(max(0.0,
                                    deadline - time.monotonic()))
            if handler.thread.is_alive():
                clean = False
                try:
                    handler.conn.close()
                except OSError:
                    pass
        for handler in handlers:
            if handler.thread.is_alive():
                handler.thread.join(1.0)
        # Flush: fold the final counter state into the metric gauges
        # so an exporter run after drain sees the complete picture.
        if self.metrics.enabled:
            snapshot = self.stats.snapshot()
            self.metrics.gauge("server_active_sessions").set(
                self.active_sessions)
            self.metrics.gauge("server_drained_sessions").set(
                snapshot["drained"])
            self.metrics.gauge("server_rejected_sessions").set(
                snapshot["rejected_busy"]
                + snapshot["rejected_draining"])
        self.tracer.emit("server", "drain", phase="end",
                         clean=clean,
                         drained=self.stats.snapshot()["drained"])
        if not already:
            self.recorder.record("server", "drain", clean=clean,
                                 drained=self.stats.snapshot()["drained"])
            self.recorder.incident("drain", detail="clean=%s" % clean)
        return clean
