"""The lazy ``getDescendants`` operator.

For each input binding ``b`` and each descendant ``d`` of
``b.parent_var`` whose label path matches the regular path expression
(in document order), the operator outputs ``b + out_var[d]`` -- but
navigation-driven: descendants are located one at a time, as the client
asks for the next binding.

Node-id design (the Skolem-id principle of Figure 5): a binding id
carries the input binding id plus the *DFS stack* -- the path of value
ids from the parent value down to the current match, each with its NFA
state frontier before and after consuming that node's label.  With the
stack in the id, resuming the preorder search after any previously
issued binding needs no mediator-side association table.

Dead NFA frontiers prune whole subtrees without navigating into them;
``is_recursive`` paths are the case where the paper's frontier cache
pays off (toggleable via ``cache_enabled`` for the ablation bench).
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

from ..runtime.cache import MISS
from ..runtime.context import ExecutionContext
from ..xtree.path import PathExpr, PathNFA, parse_path
from .base import LazyOperator

__all__ = ["LazyGetDescendants"]

#: A DFS frame: (value id, states before consuming its label, states
#: after).  A stack is a tuple of frames; the top frame is the match.
Frame = Tuple[object, frozenset, frozenset]
Stack = Tuple[Frame, ...]


class LazyGetDescendants(LazyOperator):
    """See module docstring.

    ``config.use_sigma`` enables the paper's Example 1 upgrade: when the
    NFA frontier can only be advanced by a concrete set of labels (no
    wildcard transitions), sibling scans are replaced by a single
    ``select(sigma)`` command pushed down to the source.  Views that
    filter first-level children by label then become *bounded
    browsable*.
    """

    def __init__(self, child: LazyOperator, parent_var: str,
                 path: Union[str, PathExpr, PathNFA], out_var: str,
                 context: Optional[ExecutionContext] = None):
        super().__init__(context)
        self.child = child
        self.parent_var = parent_var
        if isinstance(path, PathNFA):
            self.nfa = path
        else:
            self.nfa = PathNFA(parse_path(path)
                               if isinstance(path, str) else path)
        self.out_var = out_var
        self.variables = child.variables + [out_var]
        # Operator caches (the paper's "keeps around the input nodes
        # that may have descendants that satisfy the path condition");
        # both are pure memos over structured ids, hence evictable.
        self._first_cache = self.ctx.caches.cache("getDescendants.first")
        self._next_cache = self.ctx.caches.cache("getDescendants.next")

    @property
    def use_sigma(self) -> bool:
        """Whether sibling scans may become select(sigma) pushdowns."""
        return self.ctx.config.use_sigma

    # -- bindings ----------------------------------------------------------
    def first_binding(self):
        ib = self.child.first_binding()
        return self._advance_from_input(ib)

    def next_binding(self, binding):
        _, ib, stack = binding
        cached = self._next_cache.get((ib, stack), MISS)
        if cached is not MISS:
            return cached
        result_stack = self._next_match(stack)
        result = None
        if result_stack is not None:
            result = ("b", ib, result_stack)
        else:
            result = self._advance_from_input(self.child.next_binding(ib))
        self._next_cache.put((ib, stack), result)
        return result

    def _advance_from_input(self, ib):
        """First output binding at or after input binding ``ib``."""
        while ib is not None:
            stack = self._first_cache.get(ib, MISS)
            if stack is MISS:
                parent_vid = self.child.attribute(ib, self.parent_var)
                stack = self._first_in_subtree(
                    (), parent_vid, self.nfa.start_states)
                self._first_cache.put(ib, stack)
            if stack is not None:
                return ("b", ib, stack)
            ib = self.child.next_binding(ib)
        return None

    # -- DFS over the input value tree ---------------------------------------
    def _first_in_subtree(self, stack: Stack, parent_vid,
                          states) -> Optional[Stack]:
        """First match strictly below ``parent_vid`` in preorder."""
        child = self.child.v_down(parent_vid)
        return self._scan_level(stack, child, states)

    def _scan_level(self, stack: Stack, vid, states) -> Optional[Stack]:
        """First match at or below the sibling list starting at ``vid``."""
        sigma_labels = None
        if self.use_sigma:
            sigma_labels = self.nfa.progress_labels(states)
            if sigma_labels is not None and not sigma_labels:
                return None  # no label can advance this frontier
        while vid is not None:
            label = self.child.v_fetch(vid)
            after = self.nfa.step(states, label)
            if self.nfa.is_alive(after):
                frame = (vid, states, after)
                if self.nfa.is_accepting(after):
                    return stack + (frame,)
                deeper = self._first_in_subtree(
                    stack + (frame,), vid, after)
                if deeper is not None:
                    return deeper
            vid = self._advance_sibling(vid, sigma_labels)
        return None

    def _advance_sibling(self, vid, sigma_labels):
        """Next sibling worth looking at: one select(sigma) command
        when the viable labels are concrete, else a plain right."""
        if sigma_labels is None:
            return self.child.v_right(vid)
        if len(sigma_labels) == 1:
            return self.child.v_select(vid, next(iter(sigma_labels)))
        wanted = sigma_labels
        return self.child.v_select(vid,
                                   lambda label: label in wanted)

    def _next_match(self, stack: Stack) -> Optional[Stack]:
        """Preorder successor of the match at the top of ``stack``."""
        top_vid, _before, after = stack[-1]
        deeper = self._first_in_subtree(stack, top_vid, after)
        if deeper is not None:
            return deeper
        while stack:
            vid, before, _after = stack[-1]
            stack = stack[:-1]
            sibling = self.child.v_right(vid)
            found = self._scan_level(stack, sibling, before)
            if found is not None:
                return found
        return None

    # -- attributes -------------------------------------------------------
    def attribute(self, binding, var):
        self._check_var(var)
        _, ib, stack = binding
        if var == self.out_var:
            return ("mroot", stack[-1][0])
        return ("sub", self.child.attribute(ib, var))

    # -- values -----------------------------------------------------------
    def v_down(self, value):
        tag, vid = value
        child = self.child.v_down(vid)
        return ("sub", child) if child is not None else None

    def v_right(self, value):
        tag, vid = value
        if tag == "mroot":
            # A match is a whole value: detached from its siblings.
            return None
        sibling = self.child.v_right(vid)
        return ("sub", sibling) if sibling is not None else None

    def v_fetch(self, value):
        return self.child.v_fetch(value[1])

    def v_select(self, value, predicate):
        if value[0] == "mroot":
            return None  # a match root has no siblings
        found = self.child.v_select(value[1], predicate)
        return ("sub", found) if found is not None else None
