"""The lazy side of the ``Materialize`` operator: an intermediate
eager step inside an otherwise lazy plan (paper Section 6).

On the first binding-level access the operator drains its input
completely -- bindings and value trees -- into memory; everything
afterwards (including value navigation) is served locally, costing
zero source navigations.  This is the right trade exactly when the
subplan below is unbrowsable: the full input scan was unavoidable, so
buffering its result makes the *rest* of the session free.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..runtime.cache import MISS
from ..runtime.context import ExecutionContext
from ..xtree.tree import Tree
from .base import LazyOperator, materialize_value

__all__ = ["LazyMaterialize"]


class LazyMaterialize(LazyOperator):
    """Buffer the child's bindings on first touch; buffer each value
    tree on first access.

    The binding *list* is drained eagerly (the subplan below is
    unbrowsable, so that scan was unavoidable); each variable's value
    tree is materialized only when some navigation first needs it --
    untouched variables (e.g. the source-root binding the construction
    never looks at) cost nothing.

    Value ids are ``("m", binding_index, var_index, path)`` --
    child-index paths into the buffered value trees, the same scheme
    as MaterializedDocument.
    """

    def __init__(self, child: LazyOperator,
                 context: Optional[ExecutionContext] = None):
        super().__init__(context)
        self.child = child
        self.variables = list(child.variables)
        self._bindings: Optional[List[object]] = None
        #: the buffered value trees; an explicit eager step is
        #: evaluation state, not an optional cache, so the store is
        #: registered as kind="state" (always on, never evicted)
        self._values = self.ctx.caches.cache("materialize.values",
                                             kind="state")

    def _force(self) -> List[object]:
        """Drain the child's binding ids (the unavoidable full scan)."""
        if self._bindings is not None:
            return self._bindings
        bindings: List[object] = []
        binding = self.child.first_binding()
        while binding is not None:
            bindings.append(binding)
            binding = self.child.next_binding(binding)
        self._bindings = bindings
        return bindings

    def _tree(self, binding_index: int, var_index: int) -> Tree:
        """The buffered value tree (materialized on first access)."""
        key = (binding_index, var_index)
        tree = self._values.get(key, MISS)
        if tree is MISS:
            child_binding = self._force()[binding_index]
            tree = materialize_value(
                self.child,
                self.child.attribute(child_binding,
                                     self.variables[var_index]))
            self._values.put(key, tree)
        return tree

    def _node(self, binding_index: int, var_index: int,
              path: Tuple[int, ...]) -> Tree:
        node = self._tree(binding_index, var_index)
        for index in path:
            node = node.child(index)
        return node

    # -- bindings ----------------------------------------------------------
    def first_binding(self):
        return ("b", 0) if self._force() else None

    def next_binding(self, binding):
        index = binding[1] + 1
        return ("b", index) if index < len(self._force()) else None

    def attribute(self, binding, var):
        self._check_var(var)
        return ("m", binding[1], self.variables.index(var), ())

    # -- values --------------------------------------------------------------
    def v_down(self, value):
        _, b, v, path = value
        if self._node(b, v, path).is_leaf:
            return None
        return ("m", b, v, path + (0,))

    def v_right(self, value):
        _, b, v, path = value
        if not path:
            return None  # value roots have no siblings
        parent = self._node(b, v, path[:-1])
        index = path[-1] + 1
        if index >= len(parent.children):
            return None
        return ("m", b, v, path[:-1] + (index,))

    def v_fetch(self, value):
        _, b, v, path = value
        return self._node(b, v, path).label
