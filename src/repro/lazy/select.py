"""The lazy ``select`` operator and the pass-through Project/Constant.

``select`` scans the input binding list for bindings that satisfy the
predicate -- Example 1's *(unbounded) browsable* pattern: the cost of
the next binding depends on where the next satisfying binding sits in
the input.
"""

from __future__ import annotations

from typing import Optional

from ..algebra.predicates import Predicate
from ..runtime.cache import MISS
from ..runtime.context import ExecutionContext
from ..xtree.tree import Tree
from .base import LazyError, LazyOperator, value_text_of

__all__ = ["LazySelect", "LazyProject", "LazyConstant", "LazyRename"]


class LazySelect(LazyOperator):
    """``sigma_p``: bindings of the input satisfying ``p``.

    Binding ids wrap the input's ids 1:1 (``("b", ib)``); values pass
    through.  Predicate evaluation materializes only the text of the
    mentioned variables' values; per-binding verdicts are memoized when
    caching is on.
    """

    def __init__(self, child: LazyOperator, predicate: Predicate,
                 context: Optional[ExecutionContext] = None):
        super().__init__(context)
        self.child = child
        self.predicate = predicate
        self.variables = list(child.variables)
        self._verdicts = self.ctx.caches.cache("select.verdicts")

    def _holds(self, ib) -> bool:
        verdict = self._verdicts.get(ib, MISS)
        if verdict is not MISS:
            return verdict
        verdict = self.predicate.evaluate(
            lambda var: value_text_of(
                self.child, self.child.attribute(ib, var))
        )
        self._verdicts.put(ib, verdict)
        return verdict

    def _scan(self, ib):
        while ib is not None:
            if self._holds(ib):
                return ("b", ib)
            ib = self.child.next_binding(ib)
        return None

    def first_binding(self):
        return self._scan(self.child.first_binding())

    def next_binding(self, binding):
        return self._scan(self.child.next_binding(binding[1]))

    def attribute(self, binding, var):
        self._check_var(var)
        return self.child.attribute(binding[1], var)

    def v_down(self, value):
        return self.child.v_down(value)

    def v_right(self, value):
        return self.child.v_right(value)

    def v_fetch(self, value):
        return self.child.v_fetch(value)

    def v_select(self, value, predicate):
        return self.child.v_select(value, predicate)


class LazyProject(LazyOperator):
    """``pi_{vars}``: restrict the visible attributes; bindings and
    values pass straight through."""

    def __init__(self, child: LazyOperator, variables,
                 context: Optional[ExecutionContext] = None):
        super().__init__(context)
        self.child = child
        self.variables = list(variables)
        missing = [v for v in self.variables if v not in child.variables]
        if missing:
            raise LazyError("project over unbound variables %s" % missing)

    def first_binding(self):
        return self.child.first_binding()

    def next_binding(self, binding):
        return self.child.next_binding(binding)

    def attribute(self, binding, var):
        self._check_var(var)
        return self.child.attribute(binding, var)

    def v_down(self, value):
        return self.child.v_down(value)

    def v_right(self, value):
        return self.child.v_right(value)

    def v_fetch(self, value):
        return self.child.v_fetch(value)

    def v_select(self, value, predicate):
        return self.child.v_select(value, predicate)


class LazyRename(LazyOperator):
    """``rho``: rename variables; bindings and values pass through."""

    def __init__(self, child: LazyOperator, mapping: dict,
                 context: Optional[ExecutionContext] = None):
        super().__init__(context)
        self.child = child
        self.mapping = dict(mapping)
        self._reverse = {new: old for old, new in self.mapping.items()}
        self.variables = [self.mapping.get(v, v) for v in child.variables]
        if len(set(self.variables)) != len(self.variables):
            raise LazyError("rename creates duplicate variables: %s"
                            % self.variables)

    def first_binding(self):
        return self.child.first_binding()

    def next_binding(self, binding):
        return self.child.next_binding(binding)

    def attribute(self, binding, var):
        self._check_var(var)
        return self.child.attribute(binding, self._reverse.get(var, var))

    def v_down(self, value):
        return self.child.v_down(value)

    def v_right(self, value):
        return self.child.v_right(value)

    def v_fetch(self, value):
        return self.child.v_fetch(value)

    def v_select(self, value, predicate):
        return self.child.v_select(value, predicate)


class LazyConstant(LazyOperator):
    """Extend each input binding with a fixed in-memory tree.

    The constant's value ids are child-index paths into the tree (the
    same scheme as MaterializedDocument), tagged ``("const", path)``;
    everything else passes through.
    """

    def __init__(self, child: LazyOperator, value: Tree, out_var: str,
                 context: Optional[ExecutionContext] = None):
        super().__init__(context)
        self.child = child
        self.value = value
        self.out_var = out_var
        self.variables = child.variables + [out_var]

    def _node(self, path):
        node = self.value
        for index in path:
            node = node.child(index)
        return node

    def first_binding(self):
        return self.child.first_binding()

    def next_binding(self, binding):
        return self.child.next_binding(binding)

    def attribute(self, binding, var):
        self._check_var(var)
        if var == self.out_var:
            return ("const", ())
        return ("sub", self.child.attribute(binding, var))

    def v_down(self, value):
        if value[0] == "const":
            path = value[1]
            if self._node(path).is_leaf:
                return None
            return ("const", path + (0,))
        child = self.child.v_down(value[1])
        return ("sub", child) if child is not None else None

    def v_right(self, value):
        if value[0] == "const":
            path = value[1]
            if not path:
                return None  # the constant root is a value root
            parent = self._node(path[:-1])
            index = path[-1] + 1
            if index >= len(parent.children):
                return None
            return ("const", path[:-1] + (index,))
        sibling = self.child.v_right(value[1])
        return ("sub", sibling) if sibling is not None else None

    def v_fetch(self, value):
        if value[0] == "const":
            return self._node(value[1]).label
        return self.child.v_fetch(value[1])

    def v_select(self, value, predicate):
        if value[0] == "const":
            return super().v_select(value, predicate)
        found = self.child.v_select(value[1], predicate)
        return ("sub", found) if found is not None else None
