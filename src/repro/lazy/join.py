"""The lazy nested-loop ``join`` (and product).

Output order is left-major: for each left binding, all matching right
bindings in order.  Each advance re-scans the inner (right) input; the
*inner cache* -- "the nested-loops join operator stores the parts of
the inner argument of the loop ... the 'binding' nodes along with the
attributes that participate in the join condition" (paper Section 3,
footnote 9) -- memoizes the right binding ids and their join-attribute
texts, so re-scans stop costing source navigations once warmed.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..algebra.predicates import Predicate
from ..runtime.cache import MISS
from ..runtime.context import ExecutionContext
from .base import LazyError, LazyOperator, value_text_of

__all__ = ["LazyJoin"]


class LazyJoin(LazyOperator):
    """Lazy nested-loop join; see the module docstring for the inner
    cache design."""

    def __init__(self, left: LazyOperator, right: LazyOperator,
                 predicate: Predicate,
                 context: Optional[ExecutionContext] = None):
        super().__init__(context)
        self.left = left
        self.right = right
        self.predicate = predicate
        overlap = set(left.variables) & set(right.variables)
        if overlap:
            raise LazyError("join inputs share variables %s"
                            % sorted(overlap))
        self.variables = left.variables + right.variables
        self._left_vars = set(left.variables)
        self._pred_vars = predicate.variables()
        #: inner cache (paper footnote 9): position -> right binding id,
        #: and (position, var) -> join-attribute text.  Both are memos
        #: over stable scan positions -- evicted entries are re-derived
        #: by resuming the inner scan from the nearest cached
        #: predecessor (or, with caching off, honestly from the start).
        self._inner_bindings = self.ctx.caches.cache("join.inner")
        self._inner_texts = self.ctx.caches.cache("join.inner_texts")
        #: scan length once discovered (scalar bookkeeping, only
        #: trusted while caching is on -- the cache-off ablation mode
        #: re-pays the full discovery walk, as before)
        self._inner_len: Optional[int] = None

    # -- inner-side access (cached) ----------------------------------------
    def _inner_binding(self, index: int):
        """The right binding id at inner position ``index`` (None past
        the end).

        With caching on, binding ids are memoized by position; a
        missing position (never visited, or evicted under a cache
        budget) is re-derived by walking forward from the nearest
        cached predecessor.  With caching off every access honestly
        re-walks the inner side from its first binding, re-paying the
        underlying source navigations -- the cost the paper's inner
        cache exists to avoid.
        """
        if self.cache_enabled and self._inner_len is not None \
                and index >= self._inner_len:
            return None
        rb = self._inner_bindings.get(index, MISS)
        if rb is not MISS:
            return rb
        # Resume from the nearest cached predecessor position.
        position = index - 1
        rb = MISS
        while position >= 0:
            rb = self._inner_bindings.peek(position, MISS)
            if rb is not MISS:
                break
            position -= 1
        if rb is MISS:
            position = 0
            rb = self.right.first_binding()
            if rb is None:
                if self.cache_enabled:
                    self._inner_len = 0
                return None
            self._inner_bindings.put(position, rb)
        while position < index:
            rb = self.right.next_binding(rb)
            position += 1
            if rb is None:
                if self.cache_enabled:
                    self._inner_len = position
                return None
            self._inner_bindings.put(position, rb)
        return rb

    def _right_text(self, index: int, var: str) -> str:
        text = self._inner_texts.get((index, var), MISS)
        if text is not MISS:
            return text
        rb = self._inner_binding(index)
        text = value_text_of(self.right,
                             self.right.attribute(rb, var))
        self._inner_texts.put((index, var), text)
        return text

    # -- the nested loop -----------------------------------------------------
    def _matches(self, lb, right_index: int) -> bool:
        left_texts: Dict[str, str] = {}

        def lookup(var: str) -> str:
            if var in self._left_vars:
                if var not in left_texts:
                    left_texts[var] = value_text_of(
                        self.left, self.left.attribute(lb, var))
                return left_texts[var]
            return self._right_text(right_index, var)

        return self.predicate.evaluate(lookup)

    def _scan(self, lb, right_index: int):
        """First output at/after (lb, right_index), left-major."""
        while lb is not None:
            while True:
                if self._inner_binding(right_index) is None:
                    break
                if self._matches(lb, right_index):
                    return ("b", lb, right_index)
                right_index += 1
            lb = self.left.next_binding(lb)
            right_index = 0
        return None

    def first_binding(self):
        fanout = self.ctx.fanout
        if fanout.active:
            # Outer and inner are independent sources: probe the outer
            # side's first binding while a worker warms the inner
            # cache's first position, so the first probe of the nested
            # loop finds both sides resident.  The inner cache is a
            # lock-guarded ManagedCache, so the warm-up composes with
            # the demand path.
            lb, _ = fanout.run(self.left.first_binding,
                               lambda: self._inner_binding(0))
            return self._scan(lb, 0)
        return self._scan(self.left.first_binding(), 0)

    def next_binding(self, binding):
        _, lb, right_index = binding
        return self._scan(lb, right_index + 1)

    # -- attributes & values ---------------------------------------------------
    def attribute(self, binding, var):
        self._check_var(var)
        _, lb, right_index = binding
        if var in self._left_vars:
            return ("L", self.left.attribute(lb, var))
        rb = self._inner_binding(right_index)
        return ("R", self.right.attribute(rb, var))

    def _side(self, value):
        return self.left if value[0] == "L" else self.right

    def v_down(self, value):
        child = self._side(value).v_down(value[1])
        return (value[0], child) if child is not None else None

    def v_right(self, value):
        sibling = self._side(value).v_right(value[1])
        return (value[0], sibling) if sibling is not None else None

    def v_fetch(self, value):
        return self._side(value).v_fetch(value[1])

    def v_select(self, value, predicate):
        found = self._side(value).v_select(value[1], predicate)
        return (value[0], found) if found is not None else None
