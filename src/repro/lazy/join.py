"""The lazy nested-loop ``join`` (and product).

Output order is left-major: for each left binding, all matching right
bindings in order.  Each advance re-scans the inner (right) input; the
*inner cache* -- "the nested-loops join operator stores the parts of
the inner argument of the loop ... the 'binding' nodes along with the
attributes that participate in the join condition" (paper Section 3,
footnote 9) -- memoizes the right binding ids and their join-attribute
texts, so re-scans stop costing source navigations once warmed.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..algebra.predicates import Predicate
from .base import LazyError, LazyOperator, value_text_of

__all__ = ["LazyJoin"]


class LazyJoin(LazyOperator):
    """Lazy nested-loop join; see the module docstring for the inner
    cache design."""

    def __init__(self, left: LazyOperator, right: LazyOperator,
                 predicate: Predicate, cache_enabled: bool = True):
        super().__init__(cache_enabled)
        self.left = left
        self.right = right
        self.predicate = predicate
        overlap = set(left.variables) & set(right.variables)
        if overlap:
            raise LazyError("join inputs share variables %s"
                            % sorted(overlap))
        self.variables = left.variables + right.variables
        self._left_vars = set(left.variables)
        self._pred_vars = predicate.variables()
        #: inner cache: position -> (right binding id, join-attr texts)
        self._inner: List[Tuple[object, Dict[str, str]]] = []
        self._inner_complete = False

    # -- inner-side access (cached) ----------------------------------------
    def _inner_entry(self, index: int):
        """The inner entry at ``index`` (None past the end).

        With caching on, right binding ids and (lazily) their
        join-attribute texts are memoized; with caching off every
        access honestly re-walks the inner side from its first binding,
        re-paying the underlying source navigations -- the cost the
        paper's inner cache exists to avoid.
        """
        if not self.cache_enabled:
            rb = self.right.first_binding()
            position = 0
            while rb is not None and position < index:
                rb = self.right.next_binding(rb)
                position += 1
            return (rb, {}) if rb is not None else None
        while len(self._inner) <= index and not self._inner_complete:
            if self._inner:
                rb = self.right.next_binding(self._inner[-1][0])
            else:
                rb = self.right.first_binding()
            if rb is None:
                self._inner_complete = True
                break
            self._inner.append((rb, {}))
        if index < len(self._inner):
            return self._inner[index]
        return None

    def _right_text(self, index: int, var: str) -> str:
        if not self.cache_enabled:
            rb, _ = self._inner_entry(index)
            return value_text_of(self.right,
                                 self.right.attribute(rb, var))
        rb, texts = self._inner[index]
        if var in texts:
            return texts[var]
        text = value_text_of(self.right,
                             self.right.attribute(rb, var))
        texts[var] = text
        return text

    # -- the nested loop -----------------------------------------------------
    def _matches(self, lb, right_index: int) -> bool:
        left_texts: Dict[str, str] = {}

        def lookup(var: str) -> str:
            if var in self._left_vars:
                if var not in left_texts:
                    left_texts[var] = value_text_of(
                        self.left, self.left.attribute(lb, var))
                return left_texts[var]
            return self._right_text(right_index, var)

        return self.predicate.evaluate(lookup)

    def _scan(self, lb, right_index: int):
        """First output at/after (lb, right_index), left-major."""
        while lb is not None:
            while True:
                entry = self._inner_entry(right_index)
                if entry is None:
                    break
                if self._matches(lb, right_index):
                    return ("b", lb, right_index)
                right_index += 1
            lb = self.left.next_binding(lb)
            right_index = 0
        return None

    def first_binding(self):
        return self._scan(self.left.first_binding(), 0)

    def next_binding(self, binding):
        _, lb, right_index = binding
        return self._scan(lb, right_index + 1)

    # -- attributes & values ---------------------------------------------------
    def attribute(self, binding, var):
        self._check_var(var)
        _, lb, right_index = binding
        if var in self._left_vars:
            return ("L", self.left.attribute(lb, var))
        rb = self._inner_entry(right_index)[0]
        return ("R", self.right.attribute(rb, var))

    def _side(self, value):
        return self.left if value[0] == "L" else self.right

    def v_down(self, value):
        child = self._side(value).v_down(value[1])
        return (value[0], child) if child is not None else None

    def v_right(self, value):
        sibling = self._side(value).v_right(value[1])
        return (value[0], sibling) if sibling is not None else None

    def v_fetch(self, value):
        return self._side(value).v_fetch(value[1])

    def v_select(self, value, predicate):
        found = self._side(value).v_select(value[1], predicate)
        return (value[0], found) if found is not None else None
