"""The lazy ``orderBy`` operator -- the canonically *unbrowsable* one.

"the mediator cannot respond to the user until it has seen the
complete list of age elements" (paper Example 1).  Accordingly, the
first binding-level navigation forces a full scan of the input: every
input binding is visited and its sort-key text materialized.  After
that one eager step, navigation proceeds lazily over the sorted order.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..algebra.eager import sort_key_for_value
from ..runtime.cache import MISS
from ..runtime.context import ExecutionContext
from .base import LazyError, LazyOperator, value_text_of

__all__ = ["LazyOrderBy"]


class LazyOrderBy(LazyOperator):
    """Lazy orderBy: the canonically unbrowsable operator; see the
    module docstring."""

    def __init__(self, child: LazyOperator, variables: Sequence[str],
                 descending: bool = False,
                 context: Optional[ExecutionContext] = None):
        super().__init__(context)
        self.child = child
        self.sort_vars = list(variables)
        self.descending = descending
        self.variables = list(child.variables)
        for var in self.sort_vars:
            if var not in child.variables:
                raise LazyError("orderBy over unbound $%s" % var)
        #: one-entry memo holding the sorted binding order; the sort
        #: is deterministic, so re-deriving it after eviction yields
        #: the same positions and node-ids stay valid
        self._order_cache = self.ctx.caches.cache("orderBy.order")

    def _force(self) -> List[object]:
        """Scan the whole input and sort -- the unavoidable eager step."""
        order = self._order_cache.get("order", MISS)
        if order is not MISS:
            return order
        entries: List[Tuple[tuple, int, object]] = []
        ib = self.child.first_binding()
        position = 0
        while ib is not None:
            key = tuple(
                sort_key_for_value(value_text_of(
                    self.child, self.child.attribute(ib, var)))
                for var in self.sort_vars
            )
            entries.append((key, position, ib))
            ib = self.child.next_binding(ib)
            position += 1
        entries.sort(key=lambda e: e[0], reverse=self.descending)
        order = [ib for _key, _pos, ib in entries]
        self._order_cache.put("order", order)
        return order

    # -- bindings -----------------------------------------------------------
    def first_binding(self):
        order = self._force()
        return ("b", 0) if order else None

    def next_binding(self, binding):
        order = self._force()
        index = binding[1] + 1
        return ("b", index) if index < len(order) else None

    # -- attributes & values ------------------------------------------------
    def attribute(self, binding, var):
        self._check_var(var)
        ib = self._force()[binding[1]]
        return self.child.attribute(ib, var)

    def v_down(self, value):
        return self.child.v_down(value)

    def v_right(self, value):
        return self.child.v_right(value)

    def v_fetch(self, value):
        return self.child.v_fetch(value)

    def v_select(self, value, predicate):
        return self.child.v_select(value, predicate)
