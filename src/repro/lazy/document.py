"""The virtual answer document: ``tupleDestroy`` as a NavigableDocument.

The plan root's single binding carries the constructed answer element;
``VirtualDocument`` exposes that element's value tree through the plain
DOM-VXD interface -- this is the handle the mediator returns to the
client "without even accessing the sources": obtaining ``root()`` is
free, and the first source navigation happens only when the client
fetches or descends.
"""

from __future__ import annotations

from typing import Optional

from ..navigation.interface import NavigableDocument
from .base import LazyError, LazyOperator

__all__ = ["VirtualDocument"]


class VirtualDocument(NavigableDocument):
    """DOM-VXD facade over the value of ``var`` in the plan's single
    output binding."""

    def __init__(self, op: LazyOperator, var: Optional[str] = None):
        if var is None:
            if len(op.variables) != 1:
                raise LazyError(
                    "tupleDestroy needs an explicit variable when the "
                    "plan schema is %s" % op.variables
                )
            var = op.variables[0]
        if var not in op.variables:
            raise LazyError("no variable $%s in plan schema %s"
                            % (var, op.variables))
        self.op = op
        self.var = var
        self._root_vid = None
        self._resolved = False

    def _resolve_root(self):
        """Locate the answer value (first touch of the plan)."""
        if not self._resolved:
            binding = self.op.first_binding()
            if binding is None:
                raise LazyError(
                    "tupleDestroy over an empty binding list: the plan "
                    "must produce exactly one binding"
                )
            self._root_vid = self.op.attribute(binding, self.var)
            self._resolved = True
        return self._root_vid

    # -- NavigableDocument -----------------------------------------------
    def root(self):
        # A pure handle: no plan/source access until navigation starts.
        return ("root",)

    def _vid(self, pointer):
        if pointer == ("root",):
            return self._resolve_root()
        return pointer[1]

    # Client navigations are the roots of the causal span tree: each
    # one opens a ``client`` span (when the tracer is live) under
    # which every operator call, buffer fill, round trip, and source
    # command it provokes is recorded.
    def down(self, pointer):
        tracer = self.op.ctx.tracer
        if not tracer.active:
            child = self.op.v_down(self._vid(pointer))
            return ("v", child) if child is not None else None
        with tracer.span("client", "down"):
            child = self.op.v_down(self._vid(pointer))
            return ("v", child) if child is not None else None

    def right(self, pointer):
        tracer = self.op.ctx.tracer
        if not tracer.active:
            sibling = self.op.v_right(self._vid(pointer))
            return ("v", sibling) if sibling is not None else None
        with tracer.span("client", "right"):
            sibling = self.op.v_right(self._vid(pointer))
            return ("v", sibling) if sibling is not None else None

    def fetch(self, pointer):
        tracer = self.op.ctx.tracer
        if not tracer.active:
            return self.op.v_fetch(self._vid(pointer))
        with tracer.span("client", "fetch"):
            return self.op.v_fetch(self._vid(pointer))

    def select(self, pointer, predicate):
        tracer = self.op.ctx.tracer
        if not tracer.active:
            return super().select(pointer, predicate)
        with tracer.span("client", "select"):
            return super().select(pointer, predicate)
