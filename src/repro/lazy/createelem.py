"""The lazy ``createElement`` operator (paper Figure 9).

Per input binding, a new element whose label is a constant (or the
text of a label variable's value) and whose children are the subtrees
of the content value.  The Figure 9 mappings are realized literally:

* ``f`` on the created value node returns the constant label without
  touching the input ("the operator just returns the label
  'med_homes'");
* ``d`` on the created node navigates down into the content value's
  children -- ``<id, d(p_b.HLSs)>``;
* bindings map 1:1 (``d``/``r`` at the binding level pass through).
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

from ..runtime.context import ExecutionContext
from .base import LazyError, LazyOperator, value_text_of

__all__ = ["LazyCreateElement"]


class LazyCreateElement(LazyOperator):
    """Lazy createElement per Figure 9; see the module docstring for
    the command mappings."""

    def __init__(self, child: LazyOperator,
                 label: Union[str, Tuple[str, str]],
                 content_var: str, out_var: str,
                 context: Optional[ExecutionContext] = None):
        super().__init__(context)
        self.child = child
        if isinstance(label, tuple):
            kind, name = label
            if kind != "var":
                raise LazyError("bad label spec %r" % (label,))
            self.label_var: Optional[str] = name
            self.label_const: Optional[str] = None
        else:
            self.label_var = None
            self.label_const = label
        self.content_var = content_var
        self.out_var = out_var
        self.variables = child.variables + [out_var]
        for var in [content_var] + ([self.label_var]
                                    if self.label_var else []):
            if var not in child.variables:
                raise LazyError("createElement over unbound $%s" % var)

    # -- bindings -----------------------------------------------------------
    def first_binding(self):
        return self.child.first_binding()

    def next_binding(self, binding):
        return self.child.next_binding(binding)

    # -- attributes -----------------------------------------------------------
    def attribute(self, binding, var):
        self._check_var(var)
        if var == self.out_var:
            return ("elem", binding)
        return ("sub", self.child.attribute(binding, var))

    # -- values ---------------------------------------------------------------
    def v_down(self, value):
        if value[0] == "elem":
            content = self.child.attribute(value[1], self.content_var)
            child = self.child.v_down(content)
            return ("sub", child) if child is not None else None
        child = self.child.v_down(value[1])
        return ("sub", child) if child is not None else None

    def v_right(self, value):
        if value[0] == "elem":
            return None  # the created element is a value root
        sibling = self.child.v_right(value[1])
        return ("sub", sibling) if sibling is not None else None

    def v_fetch(self, value):
        if value[0] == "elem":
            if self.label_const is not None:
                return self.label_const
            label_vid = self.child.attribute(value[1], self.label_var)
            return value_text_of(self.child, label_vid)
        return self.child.v_fetch(value[1])

    def v_select(self, value, predicate):
        if value[0] == "elem":
            return None  # the created element is a value root
        found = self.child.v_select(value[1], predicate)
        return ("sub", found) if found is not None else None
