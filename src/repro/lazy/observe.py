"""Per-operator observation: the span-emitting operator proxy.

The paper's navigational-complexity argument is *per operator*
(Definition 2 composes over the operator tree), but the trace a bare
run produces only shows the endpoints: client navigations above,
source commands below.  :class:`SpannedOperator` fills in the middle.
Wrapped around every lazy mediator at plan-build time (gated on
``EngineConfig.observe_operators``), it brackets each protocol call --
``first_binding`` / ``next_binding`` / ``attribute`` / ``v_down`` /
``v_right`` / ``v_fetch`` / ``v_select`` -- in an ``operator`` span.
Because operators call their *inputs* through the same protocol, the
spans nest: one client navigation becomes a tree whose internal nodes
are operator calls and whose leaves are buffer fills and source
commands -- exactly what the browsability profiler
(:mod:`repro.navigation.profiler`) measures amplification from.

The proxy is transparent: it subclasses :class:`LazyOperator`, shares
the wrapped operator's :class:`~repro.runtime.context.
ExecutionContext`, and delegates everything else via ``__getattr__``
(callers verified to touch inputs only through the protocol).  With an
idle tracer each call costs one attribute check and a delegation.
"""

from __future__ import annotations

from .base import LazyOperator

__all__ = ["SpannedOperator"]


class SpannedOperator(LazyOperator):
    """Span-emitting transparent proxy around one lazy mediator.

    ``name`` identifies the operator in the trace (minted by the
    context as ``Kind#N``, deterministic in build order); it travels
    in the span's ``op`` data field.
    """

    def __init__(self, op: LazyOperator, name: str):
        # No super().__init__: the proxy shares the wrapped operator's
        # context rather than minting a default one.
        self.op = op
        self.name = name
        self.ctx = op.ctx

    @property
    def variables(self):
        return self.op.variables

    def _call(self, method: str, thunk):
        ctx = self.ctx
        metrics = ctx.metrics
        if metrics.enabled:
            metrics.counter("operator_navigations_total").inc(
                op=self.name, method=method)
        tracer = ctx.tracer
        if not tracer.active:
            return thunk()
        # lint: allow=E002 -- callers pass contract names verbatim
        with tracer.span("operator", method, op=self.name):
            return thunk()

    # -- binding-level navigation ----------------------------------------
    def first_binding(self):
        return self._call("first_binding", self.op.first_binding)

    def next_binding(self, binding):
        return self._call("next_binding",
                          lambda: self.op.next_binding(binding))

    def attribute(self, binding, var):
        return self._call("attribute",
                          lambda: self.op.attribute(binding, var))

    # -- value-level navigation --------------------------------------------
    def v_down(self, value):
        return self._call("v_down", lambda: self.op.v_down(value))

    def v_right(self, value):
        return self._call("v_right", lambda: self.op.v_right(value))

    def v_fetch(self, value):
        return self._call("v_fetch", lambda: self.op.v_fetch(value))

    def v_select(self, value, predicate):
        # Explicit delegation: the base-class default would scan with
        # v_right/v_fetch and defeat a wrapped operator's pushdown.
        return self._call("v_select",
                          lambda: self.op.v_select(value, predicate))

    # -- transparency ------------------------------------------------------
    def __getattr__(self, attr):
        if attr == "op":  # guards recursion during unpickling
            raise AttributeError(attr)
        return getattr(self.op, attr)

    def __repr__(self) -> str:
        return "SpannedOperator(%s, %r)" % (self.name, self.op)
