"""Build a tree of lazy mediators from an algebra plan.

"By translating each m_qi into a plan E_qi, which itself is a tree
consisting of 'little' lazy mediators (one for each algebra operation),
we obtain a smoothly integrated, uniform evaluation scheme."
-- paper, Section 3.

``build_lazy_plan`` maps every algebra node to its lazy counterpart;
sources are resolved to NavigableDocuments (wrapped sources, buffer
components, or even *other lazy plans* -- which is exactly how mediator
stacking in Figure 1 works).

Every operator in the resulting tree shares one
:class:`~repro.runtime.context.ExecutionContext`: the frozen
:class:`~repro.runtime.config.EngineConfig` (cache policy, sigma
pushdown, ...), the query's budgeted cache registry, and the tracing
hooks all travel through it instead of through per-constructor
booleans.
"""

from __future__ import annotations

import typing
from typing import Callable, Mapping, Optional

from ..algebra import operators as ops
from ..navigation.interface import NavigableDocument
from ..pushdown.document import PushedSourceDocument
from ..pushdown.plan import PushedSource
from ..runtime.context import ExecutionContext
from .base import LazyError, LazyOperator
from .concat import LazyConcatenate
from .createelem import LazyCreateElement
from .document import VirtualDocument
from .getdesc import LazyGetDescendants
from .groupby import LazyGroupBy
from .join import LazyJoin
from .materialize_op import LazyMaterialize
from .orderby import LazyOrderBy
from .select import LazyConstant, LazyProject, LazyRename, LazySelect
from .setops import LazyDifference, LazyDistinct, LazyUnion
from .source import LazySource

__all__ = ["build_lazy_plan", "build_virtual_document",
           "STATEFUL_OPERATORS"]

#: Resolves a source URL to a navigable document.
DocumentResolver = typing.Union[
    Mapping[str, NavigableDocument],
    Callable[[str], NavigableDocument],
]

#: Plan-node types whose lazy implementation accumulates *state*
#: proportional to its consumed input (beyond evictable memo caches):
#: the caches the static cost pass reasons about.  Values name the
#: state the operator keeps; ``join`` additionally owns the
#: budget-evictable inner memo ("join.inner").
STATEFUL_OPERATORS: Mapping[type, str] = {
    ops.Join: "inner binding cache (join.inner)",
    ops.GroupBy: "group key table (groupBy.keys)",
    ops.Distinct: "seen-value set",
    ops.OrderBy: "full input buffer",
    ops.Difference: "right-input value set",
    ops.Materialize: "materialized subtree result",
}


def _resolve(documents: DocumentResolver, url: str) -> NavigableDocument:
    if callable(documents):
        return documents(url)
    try:
        return documents[url]
    except KeyError:
        raise LazyError("no navigable source for url %r" % url) from None


def build_lazy_plan(plan: ops.Operator, documents: DocumentResolver,
                    context: Optional[ExecutionContext] = None
                    ) -> LazyOperator:
    """Translate an algebra plan (without its TupleDestroy root) into a
    tree of lazy mediators.

    ``context`` carries the engine configuration (cache policy,
    ``use_sigma`` pushdown, ...) and the query's cache registry; when
    omitted, a fresh default context is created and shared by the
    whole operator tree.

    With ``config.observe_operators`` every built operator is wrapped
    in a :class:`~repro.lazy.observe.SpannedOperator`, so each
    protocol call crossing an operator boundary becomes an
    ``operator`` span in the trace (names minted deterministically in
    build order).
    """
    if isinstance(plan, ops.TupleDestroy):
        raise LazyError(
            "build_virtual_document() handles TupleDestroy roots")
    if context is None:
        context = ExecutionContext.create()
    built = _build_lazy_node(plan, documents, context)
    if context.config.observe_operators:
        from .observe import SpannedOperator
        built = SpannedOperator(
            built, context.mint_operator_name(type(plan).__name__))
    return built


def _build_lazy_node(plan: ops.Operator, documents: DocumentResolver,
                     context: ExecutionContext) -> LazyOperator:
    def rec(node: ops.Operator) -> LazyOperator:
        return build_lazy_plan(node, documents, context)

    if isinstance(plan, PushedSource):
        # A pushed chain: stand a PushedSourceDocument (one native
        # request, executed on first navigation) where the wrapped
        # source would be, and replay the *original* chain over it --
        # the residual evaluation that makes conservative backends
        # sound and answers byte-identical to the lazy run.
        pushed = PushedSourceDocument(plan, context)
        return build_lazy_plan(plan.compiled.subplan,
                               {plan.compiled.url: pushed}, context)
    if isinstance(plan, ops.Source):
        return LazySource(_resolve(documents, plan.url), plan.out_var,
                          context)
    if isinstance(plan, ops.Constant):
        return LazyConstant(rec(plan.child), plan.value, plan.out_var,
                            context)
    if isinstance(plan, ops.GetDescendants):
        return LazyGetDescendants(rec(plan.child), plan.parent_var,
                                  plan.path, plan.out_var, context)
    if isinstance(plan, ops.Select):
        return LazySelect(rec(plan.child), plan.predicate, context)
    if isinstance(plan, ops.Project):
        return LazyProject(rec(plan.child), plan.variables, context)
    if isinstance(plan, ops.Rename):
        return LazyRename(rec(plan.child), plan.mapping, context)
    if isinstance(plan, ops.Distinct):
        return LazyDistinct(rec(plan.child), context)
    if isinstance(plan, ops.Join):
        return LazyJoin(rec(plan.left), rec(plan.right), plan.predicate,
                        context)
    if isinstance(plan, ops.Union):
        return LazyUnion(rec(plan.left), rec(plan.right), context)
    if isinstance(plan, ops.Difference):
        return LazyDifference(rec(plan.left), rec(plan.right), context)
    if isinstance(plan, ops.Materialize):
        return LazyMaterialize(rec(plan.child), context)
    if isinstance(plan, ops.GroupBy):
        return LazyGroupBy(rec(plan.child), plan.group_vars,
                           plan.aggregations, context)
    if isinstance(plan, ops.OrderBy):
        return LazyOrderBy(rec(plan.child), plan.variables,
                           plan.descending, context)
    if isinstance(plan, ops.Concatenate):
        return LazyConcatenate(rec(plan.child), plan.in_vars,
                               plan.out_var, context)
    if isinstance(plan, ops.CreateElement):
        label = (("var", plan.label_var) if plan.label_var
                 else plan.label_const)
        return LazyCreateElement(rec(plan.child), label,
                                 plan.content_var, plan.out_var,
                                 context)
    raise LazyError("no lazy implementation for %r" % plan)


def build_virtual_document(plan: ops.Operator,
                           documents: DocumentResolver,
                           context: Optional[ExecutionContext] = None
                           ) -> VirtualDocument:
    """Translate a full plan (TupleDestroy root) into the virtual
    answer document handed to the client."""
    if not isinstance(plan, ops.TupleDestroy):
        raise LazyError(
            "a full plan must be rooted in tupleDestroy, got %s"
            % plan.signature()
        )
    plan.validate()
    if context is None:
        context = ExecutionContext.create()
    lazy = build_lazy_plan(plan.child, documents, context)
    return VirtualDocument(lazy, plan.var)
