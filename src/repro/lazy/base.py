"""The lazy-mediator protocol: operators as navigation transducers.

Each XMAS algebra operator is implemented as a *lazy mediator* (paper
Section 3 and Appendix A): it accepts navigation commands on its
*output* binding-list tree ``bs[b[...], ...]`` and, per command, issues
the minimal navigation against its input operator(s), combining the
answers.

Following Appendix A, the inter-operator interface is DOM-VXD *plus
direct attribute access*: "Since the client of the lazy mediator ... is
another lazy mediator, it is wasteful to navigate over the attribute
lists of the input mediator.  Instead we allow the operators to
directly request values of attributes."  Hence the protocol:

binding level (the ``bs``/``b`` nodes)
    ``first_binding()``, ``next_binding(b)``, ``attribute(b, var)``

value level (the subtrees bound to variables)
    ``v_down(v)``, ``v_right(v)``, ``v_fetch(v)``

Node-ids are structured tuples that *encode their associations*
Skolem-style (paper Figure 5 discussion): the mediator never keeps an
association table, so ids stay valid without client cooperation.
Operators do keep selected caches (recursive-path frontiers, join inner
attributes, groupBy's ``G_prev``), toggleable for the ablation
experiment.

A value id handed out by ``attribute`` is the *root* of that binding's
value: ``v_right`` on it is None even when the underlying node has
siblings in the source -- the binding perspective detaches it.
"""

from __future__ import annotations

from typing import Hashable, List, Optional

from ..navigation.interface import NavigableDocument
from ..runtime.context import ExecutionContext
from ..xtree.tree import Tree

__all__ = ["LazyOperator", "BindingsDocument", "LazyError",
           "value_text_of", "canonical_key_of", "materialize_value"]

#: Opaque ids; concretely nested hashable tuples.
BindingId = Hashable
ValueId = Hashable


from ..errors import ReproError


class LazyError(ReproError):
    """Raised on protocol violations (bad ids, unknown variables)."""


class LazyOperator:
    """Base class of all lazy mediators.

    Subclasses mint their own binding/value ids and must treat ids of
    their inputs as opaque.  Every operator carries the query's
    :class:`~repro.runtime.context.ExecutionContext`; its config
    governs the operator's optional memoization (the paper's operator
    caches), and its cache manager owns every cache the operator
    registers.
    """

    #: output variable schema, in order
    variables: List[str] = []

    def __init__(self, context: Optional[ExecutionContext] = None):
        self.ctx = (context if context is not None
                    else ExecutionContext.create())

    @property
    def cache_enabled(self) -> bool:
        """Whether the paper's operator caches are on (from config)."""
        return self.ctx.config.cache_enabled

    # -- binding-level navigation ----------------------------------------
    def first_binding(self) -> Optional[BindingId]:
        """The first output binding (d on the ``bs`` node)."""
        raise NotImplementedError

    def next_binding(self, binding: BindingId) -> Optional[BindingId]:
        """The next output binding (r on a ``b`` node)."""
        raise NotImplementedError

    def attribute(self, binding: BindingId, var: str) -> ValueId:
        """Direct access ``b.X``: the root value id of ``var``."""
        raise NotImplementedError

    # -- value-level navigation --------------------------------------------
    def v_down(self, value: ValueId) -> Optional[ValueId]:
        raise NotImplementedError

    def v_right(self, value: ValueId) -> Optional[ValueId]:
        raise NotImplementedError

    def v_fetch(self, value: ValueId) -> str:
        raise NotImplementedError

    def v_select(self, value: ValueId, predicate) -> Optional[ValueId]:
        """``select(sigma)`` at the value level: the first sibling to
        the right of ``value`` whose label satisfies ``predicate``.

        The default implementation scans with ``v_right``/``v_fetch``
        (same cost as the client doing it); operators that can push
        the selection to a capable source override it --
        :class:`~repro.lazy.source.LazySource` forwards it as a single
        source command, which is what makes label-filtering views
        bounded browsable (paper Example 1).
        """
        from ..navigation.commands import label_is
        sibling = self.v_right(value)
        while sibling is not None:
            if label_is(predicate, self.v_fetch(sibling)):
                return sibling
            sibling = self.v_right(sibling)
        return None

    # -- helpers -----------------------------------------------------------
    def _check_var(self, var: str) -> None:
        if var not in self.variables:
            raise LazyError(
                "operator %s has no variable $%s"
                % (type(self).__name__, var)
            )


# ----------------------------------------------------------------------
# Value utilities (used by predicates, grouping, ordering)
# ----------------------------------------------------------------------

def value_text_of(op: LazyOperator, value: ValueId) -> str:
    """The comparison text of a value: the label of a leaf, else the
    concatenated text of its leaf descendants.

    Costs navigations proportional to the value's size -- which is the
    honest price of predicates over structured values; the common case
    (variables bound to text leaves via ``zip._``) costs one fetch.
    """
    first_child = op.v_down(value)
    if first_child is None:
        return op.v_fetch(value)
    parts: List[str] = []

    def walk(node: ValueId) -> None:
        child = op.v_down(node)
        if child is None:
            parts.append(op.v_fetch(node))
            return
        while child is not None:
            walk(child)
            child = op.v_right(child)

    child = first_child
    while child is not None:
        walk(child)
        child = op.v_right(child)
    return "".join(parts)


def canonical_key_of(op: LazyOperator, value: ValueId) -> Hashable:
    """Materialize a value into a canonical structural key (the
    counterpart of :func:`repro.algebra.bindings.value_key`).

    Grouping and duplicate elimination compare whole values, so this
    walks the entire value subtree -- the source of groupBy's
    navigational cost.
    """
    label = op.v_fetch(value)
    child = op.v_down(value)
    if child is None:
        return label
    keys = []
    while child is not None:
        keys.append(canonical_key_of(op, child))
        child = op.v_right(child)
    return (label, tuple(keys))


def materialize_value(op: LazyOperator, value: ValueId) -> Tree:
    """Navigate a value subtree into an in-memory Tree (testing aid)."""
    label = op.v_fetch(value)
    children = []
    child = op.v_down(value)
    while child is not None:
        children.append(materialize_value(op, child))
        child = op.v_right(child)
    return Tree(label, children)


# ----------------------------------------------------------------------
# The bs-tree adapter
# ----------------------------------------------------------------------

class BindingsDocument(NavigableDocument):
    """Expose a lazy operator's full output tree ``bs[b[X[x],...],...]``
    through plain DOM-VXD.

    This is what a client sees when it queries for bindings rather than
    a constructed document, and it is the test oracle's window: for any
    plan, ``materialize(BindingsDocument(lazy_op))`` must equal
    ``evaluate_bindings(plan, sources).to_tree()``.

    Pointers::

        ("bs",)                       the root
        ("b", bid)                    a binding node
        ("var", bid, index)           a variable node  X[...]
        ("val", vid)                  a value node (delegated)
    """

    def __init__(self, op: LazyOperator):
        self.op = op

    def root(self):
        return ("bs",)

    def down(self, pointer):
        tag = pointer[0]
        if tag == "bs":
            bid = self.op.first_binding()
            return ("b", bid) if bid is not None else None
        if tag == "b":
            if not self.op.variables:
                return None
            return ("var", pointer[1], 0)
        if tag == "var":
            _, bid, index = pointer
            vid = self.op.attribute(bid, self.op.variables[index])
            return ("val", vid)
        if tag == "val":
            child = self.op.v_down(pointer[1])
            return ("val", child) if child is not None else None
        raise LazyError("bad pointer %r" % (pointer,))

    def right(self, pointer):
        tag = pointer[0]
        if tag == "bs":
            return None
        if tag == "b":
            nxt = self.op.next_binding(pointer[1])
            return ("b", nxt) if nxt is not None else None
        if tag == "var":
            _, bid, index = pointer
            if index + 1 < len(self.op.variables):
                return ("var", bid, index + 1)
            return None
        if tag == "val":
            sibling = self.op.v_right(pointer[1])
            return ("val", sibling) if sibling is not None else None
        raise LazyError("bad pointer %r" % (pointer,))

    def fetch(self, pointer):
        tag = pointer[0]
        if tag == "bs":
            return "bs"
        if tag == "b":
            return "b"
        if tag == "var":
            return self.op.variables[pointer[2]]
        if tag == "val":
            return self.op.v_fetch(pointer[1])
        raise LazyError("bad pointer %r" % (pointer,))
