"""The lazy ``source`` operator: wrap a navigable source document as
the singleton binding list ``bs[b[v[root]]]``."""

from __future__ import annotations

from typing import Optional

from ..navigation.interface import NavigableDocument
from ..runtime.context import ExecutionContext
from .base import LazyOperator

__all__ = ["LazySource"]


class LazySource(LazyOperator):
    """``source_{url -> v}`` over a NavigableDocument.

    Value ids are ``("v", pointer, is_root)``: the flag pins down that
    a binding's value root has no right sibling even if the underlying
    pointer does (it never does for a document root, but the invariant
    is kept uniform with the other operators).
    """

    def __init__(self, document: NavigableDocument, out_var: str,
                 context: Optional[ExecutionContext] = None):
        super().__init__(context)
        self.document = document
        self.out_var = out_var
        self.variables = [out_var]

    # -- bindings ----------------------------------------------------------
    def first_binding(self):
        return ("b",)

    def next_binding(self, binding):
        return None

    def attribute(self, binding, var):
        self._check_var(var)
        return ("v", self.document.root(), True)

    # -- values --------------------------------------------------------------
    def v_down(self, value):
        _, pointer, _is_root = value
        child = self.document.down(pointer)
        return ("v", child, False) if child is not None else None

    def v_right(self, value):
        _, pointer, is_root = value
        if is_root:
            return None
        sibling = self.document.right(pointer)
        return ("v", sibling, False) if sibling is not None else None

    def v_fetch(self, value):
        return self.document.fetch(value[1])

    def v_select(self, value, predicate):
        _, pointer, is_root = value
        if is_root:
            return None
        found = self.document.select(pointer, predicate)
        return ("v", found, False) if found is not None else None
