"""The lazy ``concatenate`` operator.

Per input binding, the output value is a synthetic ``list[...]`` node
whose items are, per argument variable in order: the items of a
``list``-labeled value, or the value itself otherwise -- the n-ary
closure of the paper's four-case analysis.

Bindings pass through 1:1.  Navigating across an argument boundary
(the last item of ``$H`` to the first school in ``$LSs``) is where the
lazy implementation earns its keep: it only touches the next argument
when the client walks past the previous one.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..algebra.bindings import LIST_LABEL
from ..runtime.context import ExecutionContext
from .base import LazyError, LazyOperator

__all__ = ["LazyConcatenate"]


class LazyConcatenate(LazyOperator):
    """Lazy n-ary concatenate; see the module docstring for the item
    enumeration rules."""

    def __init__(self, child: LazyOperator, in_vars: Sequence[str],
                 out_var: str,
                 context: Optional[ExecutionContext] = None):
        super().__init__(context)
        if not in_vars:
            raise LazyError("concatenate needs at least one variable")
        self.child = child
        self.in_vars = list(in_vars)
        self.out_var = out_var
        self.variables = child.variables + [out_var]
        for var in self.in_vars:
            if var not in child.variables:
                raise LazyError("concatenate over unbound $%s" % var)

    # -- bindings -----------------------------------------------------------
    def first_binding(self):
        return self.child.first_binding()

    def next_binding(self, binding):
        return self.child.next_binding(binding)

    # -- attributes -----------------------------------------------------------
    def attribute(self, binding, var):
        self._check_var(var)
        if var == self.out_var:
            return ("list", binding)
        return ("sub", self.child.attribute(binding, var))

    # -- item enumeration --------------------------------------------------------
    def _warm_arguments(self, ib) -> None:
        """With fan-out active, probe every argument variable's value
        label concurrently before the sequential enumeration starts.

        The arguments bind to independent sources; the probes warm
        each source's buffer (and the label memo below) so the
        boundary crossings of the subsequent walk are buffer hits.
        The layers underneath (buffers, meters, caches, resilient
        seams) are lock-guarded, so concurrent probes compose.
        """
        fanout = self.ctx.fanout
        if not fanout.active or len(self.in_vars) <= 1:
            return

        def probe(var):
            def thunk():
                self.child.v_fetch(self.child.attribute(ib, var))
            return thunk

        fanout.run(*[probe(var) for var in self.in_vars])

    def _first_item_of_var(self, ib, var_index: int):
        """The first item contributed by argument ``var_index`` (or the
        first from a later argument when it is an empty list)."""
        while var_index < len(self.in_vars):
            vid = self.child.attribute(ib, self.in_vars[var_index])
            if self.child.v_fetch(vid) == LIST_LABEL:
                inner = self.child.v_down(vid)
                if inner is not None:
                    return ("item", ib, var_index, inner, True)
            else:
                return ("item", ib, var_index, vid, False)
            var_index += 1
        return None

    # -- values ---------------------------------------------------------------
    def v_down(self, value):
        tag = value[0]
        if tag == "list":
            self._warm_arguments(value[1])
            return self._first_item_of_var(value[1], 0)
        if tag == "item":
            _, _ib, _vi, inner, _from_list = value
            child = self.child.v_down(inner)
            return ("sub", child) if child is not None else None
        child = self.child.v_down(value[1])
        return ("sub", child) if child is not None else None

    def v_right(self, value):
        tag = value[0]
        if tag == "list":
            return None  # the concatenation value is a value root
        if tag == "item":
            _, ib, var_index, inner, from_list = value
            if from_list:
                sibling = self.child.v_right(inner)
                if sibling is not None:
                    return ("item", ib, var_index, sibling, True)
            return self._first_item_of_var(ib, var_index + 1)
        sibling = self.child.v_right(value[1])
        return ("sub", sibling) if sibling is not None else None

    def v_fetch(self, value):
        tag = value[0]
        if tag == "list":
            return LIST_LABEL
        if tag == "item":
            return self.child.v_fetch(value[3])
        return self.child.v_fetch(value[1])

    def v_select(self, value, predicate):
        if value[0] in ("list", "item"):
            return super().v_select(value, predicate)
        found = self.child.v_select(value[1], predicate)
        return ("sub", found) if found is not None else None
