"""Lazy set/list operators: union, difference, distinct.

* ``union`` is fully lazy: left bindings first, then right.
* ``difference`` must know the complete right side before emitting
  anything (value-level anti-join) -- unbrowsable on its right input.
* ``distinct`` is browsable: it streams the left input, skipping
  bindings whose canonical value key was already seen (the seen-set is
  the operator's cache, grown as the client navigates).
"""

from __future__ import annotations

from typing import List, Optional, Set

from ..runtime.cache import MISS
from ..runtime.context import ExecutionContext
from .base import LazyError, LazyOperator, canonical_key_of

__all__ = ["LazyUnion", "LazyDifference", "LazyDistinct"]


class LazyUnion(LazyOperator):
    """Left bindings followed by right bindings (same schema)."""

    def __init__(self, left: LazyOperator, right: LazyOperator,
                 context: Optional[ExecutionContext] = None):
        super().__init__(context)
        if left.variables != right.variables:
            raise LazyError(
                "union schemas differ: %s vs %s"
                % (left.variables, right.variables)
            )
        self.left = left
        self.right = right
        self.variables = list(left.variables)

    def first_binding(self):
        fanout = self.ctx.fanout
        if fanout.active:
            # The two sides are independent sources: probe both
            # concurrently.  The right probe is speculative -- wasted
            # only when the left side is non-empty, and even then it
            # has warmed the right buffer for the eventual crossover.
            lb, rb = fanout.run(self.left.first_binding,
                                self.right.first_binding)
            if lb is not None:
                return ("L", lb)
            return ("R", rb) if rb is not None else None
        lb = self.left.first_binding()
        if lb is not None:
            return ("L", lb)
        rb = self.right.first_binding()
        return ("R", rb) if rb is not None else None

    def next_binding(self, binding):
        side, ib = binding
        if side == "L":
            nxt = self.left.next_binding(ib)
            if nxt is not None:
                return ("L", nxt)
            rb = self.right.first_binding()
            return ("R", rb) if rb is not None else None
        nxt = self.right.next_binding(ib)
        return ("R", nxt) if nxt is not None else None

    def attribute(self, binding, var):
        self._check_var(var)
        side, ib = binding
        op = self.left if side == "L" else self.right
        return (side, op.attribute(ib, var))

    def _side(self, value):
        return self.left if value[0] == "L" else self.right

    def v_down(self, value):
        child = self._side(value).v_down(value[1])
        return (value[0], child) if child is not None else None

    def v_right(self, value):
        sibling = self._side(value).v_right(value[1])
        return (value[0], sibling) if sibling is not None else None

    def v_fetch(self, value):
        return self._side(value).v_fetch(value[1])

    def v_select(self, value, predicate):
        found = self._side(value).v_select(value[1], predicate)
        return (value[0], found) if found is not None else None


class _LeftStreamOperator(LazyOperator):
    """Shared shell for operators that stream their left/only input and
    merely decide which bindings survive."""

    def __init__(self, child: LazyOperator,
                 context: Optional[ExecutionContext] = None):
        super().__init__(context)
        self.child = child
        self.variables = list(child.variables)

    def _keep(self, ib) -> bool:
        raise NotImplementedError

    def _scan(self, ib):
        while ib is not None:
            if self._keep(ib):
                return ("b", ib)
            ib = self.child.next_binding(ib)
        return None

    def first_binding(self):
        return self._scan(self.child.first_binding())

    def next_binding(self, binding):
        return self._scan(self.child.next_binding(binding[1]))

    def attribute(self, binding, var):
        self._check_var(var)
        return self.child.attribute(binding[1], var)

    def v_down(self, value):
        return self.child.v_down(value)

    def v_right(self, value):
        return self.child.v_right(value)

    def v_fetch(self, value):
        return self.child.v_fetch(value)

    def v_select(self, value, predicate):
        return self.child.v_select(value, predicate)

    def _binding_key(self, op: LazyOperator, ib):
        return tuple(
            canonical_key_of(op, op.attribute(ib, var))
            for var in self.variables
        )


class LazyDifference(_LeftStreamOperator):
    """Left bindings whose values do not occur on the right."""

    def __init__(self, left: LazyOperator, right: LazyOperator,
                 context: Optional[ExecutionContext] = None):
        if left.variables != right.variables:
            raise LazyError(
                "difference schemas differ: %s vs %s"
                % (left.variables, right.variables)
            )
        super().__init__(left, context)
        self.right = right
        #: one-entry memo holding the full right-side key set
        self._right_keys = self.ctx.caches.cache("difference.right_keys")

    def _force_right(self) -> Set:
        keys = self._right_keys.get("keys", MISS)
        if keys is not MISS:
            return keys
        keys = set()
        rb = self.right.first_binding()
        while rb is not None:
            keys.add(self._binding_key(self.right, rb))
            rb = self.right.next_binding(rb)
        self._right_keys.put("keys", keys)
        return keys

    def _keep(self, ib) -> bool:
        return self._binding_key(self.child, ib) not in self._force_right()

    def first_binding(self):
        fanout = self.ctx.fanout
        if fanout.active:
            # Difference must force its whole right side before the
            # first emission; overlap that forced walk with the left
            # side's first-binding navigation -- the two inputs are
            # independent sources.
            first, _ = fanout.run(self.child.first_binding,
                                  self._force_right)
            return self._scan(first)
        return super().first_binding()


class LazyDistinct(_LeftStreamOperator):
    """First occurrence of each distinct value combination survives.

    The seen-set grows monotonically with client progress; node-ids
    embed only the input binding id, so the set can be reconstructed by
    re-scanning when caching is disabled.
    """

    def __init__(self, child: LazyOperator,
                 context: Optional[ExecutionContext] = None):
        super().__init__(child, context)
        # Order-dependent: evicting individual pairs could re-admit a
        # key, so this stays a toggleable in-operator list rather than
        # a budgeted memo cache.
        self._seen_upto: List = []  # (ib, key) pairs in input order

    def _keep(self, ib) -> bool:
        key = self._binding_key(self.child, ib)
        if self.cache_enabled:
            for _ib, seen_key in self._seen_upto:
                if _ib == ib:
                    return True  # already classified as a keeper
            for _ib, seen_key in self._seen_upto:
                if seen_key == key:
                    return False
            self._seen_upto.append((ib, key))
            return True
        # Cache off: re-derive "seen before ib" by scanning the input
        # from the start up to (excluding) ib.
        scan = self.child.first_binding()
        while scan is not None and scan != ib:
            if self._binding_key(self.child, scan) == key:
                return False
            scan = self.child.next_binding(scan)
        return True
