"""Lazy mediators (paper Section 3 + Appendix A): every XMAS algebra
operator implemented as a navigation transducer, plus the virtual
answer document and the algebra-to-lazy plan builder."""

from .base import (
    BindingsDocument,
    LazyError,
    LazyOperator,
    canonical_key_of,
    materialize_value,
    value_text_of,
)
from .build import build_lazy_plan, build_virtual_document
from .concat import LazyConcatenate
from .createelem import LazyCreateElement
from .document import VirtualDocument
from .getdesc import LazyGetDescendants
from .groupby import LazyGroupBy
from .join import LazyJoin
from .materialize_op import LazyMaterialize
from .observe import SpannedOperator
from .orderby import LazyOrderBy
from .select import LazyConstant, LazyProject, LazyRename, LazySelect
from .setops import LazyDifference, LazyDistinct, LazyUnion
from .source import LazySource

__all__ = [
    "LazyOperator", "LazyError", "BindingsDocument",
    "value_text_of", "canonical_key_of", "materialize_value",
    "LazySource", "LazyGetDescendants", "LazySelect", "LazyProject",
    "LazyConstant", "LazyRename", "LazyJoin", "LazyGroupBy", "LazyConcatenate",
    "LazyCreateElement", "LazyOrderBy", "LazyMaterialize",
    "LazyUnion", "LazyDifference",
    "LazyDistinct", "SpannedOperator",
    "VirtualDocument", "build_lazy_plan", "build_virtual_document",
]
