"""The lazy ``groupBy`` operator (paper Figure 10, Example 8).

One output binding per distinct group-by key, in first-occurrence
order.  Navigating to the *next* output binding scans the input for a
binding whose key is not in ``G_prev`` -- the set of previously
encountered group-by lists (the ``next_gb`` function of Figure 10).
Navigating to the next *member* of a grouped ``list[...]`` value scans
the input for the next binding with the *same* key (Figure 10's
``next(p_b, p_g)``).

The paper stores ``G_prev`` and the discovered members in a buffer and
references it from node-ids; we realize that as operator state: a
global input scan (positions are stable, so node-ids embed scan
positions), plus a key memo that ``cache_enabled`` toggles -- with the
cache off, every membership test honestly recomputes the key by
navigating the key value again.

The empty-key group ``groupBy{}`` always yields exactly one output
binding, even over empty input (this realizes XMAS's ``<answer>
... </answer> {}``).
"""

from __future__ import annotations

from typing import Hashable, List, Optional, Sequence, Tuple

from ..runtime.cache import MISS
from ..runtime.context import ExecutionContext
from .base import LazyError, LazyOperator, canonical_key_of

__all__ = ["LazyGroupBy"]


class LazyGroupBy(LazyOperator):
    """Lazy groupBy per Figure 10; see the module docstring for the
    G_prev/scan design."""

    def __init__(self, child: LazyOperator,
                 group_vars: Sequence[str],
                 aggregations: Sequence[Tuple[str, str]],
                 context: Optional[ExecutionContext] = None):
        super().__init__(context)
        self.child = child
        self.group_vars = list(group_vars)
        self.aggregations = [tuple(a) for a in aggregations]
        self.variables = self.group_vars + [o for _, o in self.aggregations]
        for var in self.group_vars + [v for v, _ in self.aggregations]:
            if var not in child.variables:
                raise LazyError("groupBy over unbound variable $%s" % var)

        #: input bindings scanned so far, in input order
        self._scanned: List[object] = []
        self._exhausted = False
        #: memoized keys by scan position -- a pure memo (re-derivable
        #: by re-navigating the key value), hence evictable
        self._keys = self.ctx.caches.cache("groupBy.keys")
        #: G_prev (Figure 10): key -> group index.  Group identity is
        #: evaluation state the node-ids depend on, so the registry is
        #: kind="state": always on, never evicted, but visible in the
        #: cache report (its hits are next_gb's membership re-tests).
        self._gprev = self.ctx.caches.cache("groupBy.G_prev",
                                            kind="state")
        self._group_keys: List[Hashable] = []
        self._group_first_pos: List[int] = []

    # -- input scanning ------------------------------------------------------
    def _compute_key(self, ib) -> Hashable:
        return tuple(
            canonical_key_of(self.child, self.child.attribute(ib, var))
            for var in self.group_vars
        )

    def _key_at(self, pos: int) -> Hashable:
        key = self._keys.get(pos, MISS)
        if key is not MISS:
            return key
        key = self._compute_key(self._scanned[pos])
        self._keys.put(pos, key)
        return key

    def _scan_one(self) -> bool:
        """Advance the global input scan by one binding; register any
        newly discovered group.  Returns False at exhaustion."""
        if self._exhausted:
            return False
        if self._scanned:
            ib = self.child.next_binding(self._scanned[-1])
        else:
            ib = self.child.first_binding()
        if ib is None:
            self._exhausted = True
            return False
        self._scanned.append(ib)
        pos = len(self._scanned) - 1
        key = self._compute_key(self._scanned[pos])
        self._keys.put(pos, key)
        if self._gprev.get(key, MISS) is MISS:
            self._gprev.put(key, len(self._group_keys))
            self._group_keys.append(key)
            self._group_first_pos.append(pos)
        return True

    def _ensure_group(self, index: int) -> bool:
        """Scan until group ``index`` is known (or input exhausted)."""
        while len(self._group_keys) <= index:
            if not self._scan_one():
                return False
        return True

    # -- bindings ------------------------------------------------------------
    def first_binding(self):
        if not self.group_vars:
            # groupBy{}: the single empty group exists even when the
            # input is empty -- and needs no input scan to assert, so
            # the constant structure above it (e.g. the answer
            # element's label) stays free of source access.
            return ("b", 0)
        if self._ensure_group(0):
            return ("b", 0)
        return None

    def next_binding(self, binding):
        if not self.group_vars:
            return None  # the empty key admits exactly one group
        index = binding[1] + 1
        if self._ensure_group(index):
            return ("b", index)
        return None

    # -- attributes ------------------------------------------------------------
    def attribute(self, binding, var):
        self._check_var(var)
        index = binding[1]
        if var in self.group_vars:
            witness = self._scanned[self._group_first_pos[index]]
            return ("sub", self.child.attribute(witness, var))
        for agg_index, (_in_var, out_var) in enumerate(self.aggregations):
            if var == out_var:
                return ("list", index, agg_index)
        raise LazyError("unreachable: variable $%s" % var)

    # -- member scanning -------------------------------------------------------
    def _next_member_pos(self, group_index: int,
                         from_pos: int) -> Optional[int]:
        """First scan position >= from_pos whose key equals the group's
        key (scanning further input on demand)."""
        if self.group_vars and group_index >= len(self._group_keys):
            return None
        key = (self._group_keys[group_index]
               if group_index < len(self._group_keys) else None)
        pos = from_pos
        while True:
            while pos >= len(self._scanned):
                if not self._scan_one():
                    return None
            if not self.group_vars or self._key_at(pos) == key:
                return pos
            pos += 1

    # -- values ------------------------------------------------------------------
    def v_down(self, value):
        tag = value[0]
        if tag == "list":
            _, group_index, agg_index = value
            pos = self._next_member_pos(group_index, 0)
            if pos is None:
                return None
            return ("iroot", group_index, agg_index, pos)
        if tag == "iroot":
            _, _g, agg_index, pos = value
            in_var = self.aggregations[agg_index][0]
            inner = self.child.attribute(self._scanned[pos], in_var)
            child = self.child.v_down(inner)
            return ("sub", child) if child is not None else None
        child = self.child.v_down(value[1])
        return ("sub", child) if child is not None else None

    def v_right(self, value):
        tag = value[0]
        if tag == "list":
            return None  # a grouped list is a value root
        if tag == "iroot":
            _, group_index, agg_index, pos = value
            nxt = self._next_member_pos(group_index, pos + 1)
            if nxt is None:
                return None
            return ("iroot", group_index, agg_index, nxt)
        sibling = self.child.v_right(value[1])
        return ("sub", sibling) if sibling is not None else None

    def v_fetch(self, value):
        tag = value[0]
        if tag == "list":
            return "list"
        if tag == "iroot":
            _, _g, agg_index, pos = value
            in_var = self.aggregations[agg_index][0]
            inner = self.child.attribute(self._scanned[pos], in_var)
            return self.child.v_fetch(inner)
        return self.child.v_fetch(value[1])

    def v_select(self, value, predicate):
        if value[0] in ("list", "iroot"):
            # Grouped lists/members have operator-defined siblings;
            # fall back to the scanning default.
            return super().v_select(value, predicate)
        found = self.child.v_select(value[1], predicate)
        return ("sub", found) if found is not None else None
