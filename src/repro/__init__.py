"""MIX: navigation-driven evaluation of virtual mediated XML views.

A from-scratch reproduction of Ludaescher, Papakonstantinou &
Velikhov, "Navigation-Driven Evaluation of Virtual Mediated Views"
(EDBT 2000): the MIX mediator, the XMAS query language and algebra,
lazy mediators, the browsability classification, and the buffered LXP
wrapper architecture -- plus the relational / object-database /
synthetic-web substrates the wrappers sit on.

Quickstart::

    from repro import MIXMediator, XMLFileWrapper

    med = MIXMediator()
    med.register_wrapper("homesSrc", XMLFileWrapper("homesSrc", xml))
    root = med.query(XMAS_QUERY)     # virtual: no source touched yet
    for med_home in root.children(): # navigation drives evaluation
        print(med_home.find("addr").text())
"""

from .errors import (
    PermanentSourceError,
    ReproError,
    SourceError,
    StaticAnalysisError,
    TransientSourceError,
    classify_failure,
)
from .core import (
    BindingsDocument,
    Browsability,
    CacheManager,
    CountingDocument,
    EngineConfig,
    ExecutionContext,
    MediatorError,
    MediatorWarning,
    MIXMediator,
    NavigableDocument,
    QueryResult,
    Tracer,
    VirtualDocument,
    XMLElement,
    build_lazy_plan,
    build_virtual_document,
    classify,
    classify_plan,
    materialize,
    open_virtual_document,
    optimize,
    parse_xmas,
    translate,
)
from .wrappers import (
    OODBLXPWrapper,
    RelationalLXPWrapper,
    WebLXPWrapper,
    XMLFileWrapper,
    buffered,
)

__version__ = "1.0.0"

__all__ = [
    "MIXMediator", "MediatorError", "MediatorWarning", "QueryResult",
    "EngineConfig", "ExecutionContext", "CacheManager", "Tracer",
    "XMLElement", "open_virtual_document",
    "BindingsDocument", "VirtualDocument",
    "build_lazy_plan", "build_virtual_document",
    "NavigableDocument", "materialize", "CountingDocument",
    "Browsability", "classify", "classify_plan", "optimize",
    "parse_xmas", "translate",
    "XMLFileWrapper", "RelationalLXPWrapper", "WebLXPWrapper",
    "OODBLXPWrapper", "buffered",
    "ReproError", "SourceError", "TransientSourceError",
    "PermanentSourceError", "StaticAnalysisError", "classify_failure",
    "__version__",
]
