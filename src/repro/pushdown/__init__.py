"""Source-native query pushdown (the "query capabilities" escape
hatch of the paper's Section 4: wrappers that can evaluate more than
navigation do so in one native request).

The pipeline: ``compile_chain`` (in :mod:`.compiled`) recognizes
maximal single-source subplans; ``compile_pushdown`` (in
:mod:`.compiler`) negotiates each with its wrapper and splices
accepted ones as :class:`PushedSource` leaves; at build time a
:class:`PushedSourceDocument` (in :mod:`.document`) executes the
request lazily and replays the original chain over the pre-filled
result, so answers are byte-identical to the lazy run while source
navigations collapse to one native round trip.
"""

# .compiled and .plan must import before .compiler: the wrapper
# modules (pulled in via compiler -> wrappers.base) import
# repro.pushdown.compiled while this package is still initializing.
from .compiled import (  # noqa: F401
    CompiledSubplan,
    OODBPathQuery,
    PageFetchRequest,
    PathStep,
    RelationalPushRequest,
    TableScan,
    XPathScanRequest,
    child_restriction,
    compile_chain,
    comparison_filter,
    conjuncts,
    first_labels,
    single_hop_label,
    single_hop_value_column,
    sql_exact_filter,
)
from .plan import PushedSource  # noqa: F401
from .compiler import PushdownDecision, compile_pushdown  # noqa: F401
from .document import PushedSourceDocument  # noqa: F401

__all__ = [
    "CompiledSubplan",
    "PathStep",
    "compile_chain",
    "conjuncts",
    "comparison_filter",
    "first_labels",
    "single_hop_label",
    "single_hop_value_column",
    "child_restriction",
    "sql_exact_filter",
    "RelationalPushRequest",
    "TableScan",
    "PageFetchRequest",
    "OODBPathQuery",
    "XPathScanRequest",
    "PushedSource",
    "PushdownDecision",
    "compile_pushdown",
    "PushedSourceDocument",
]
