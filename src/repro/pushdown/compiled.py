"""The compiled-subplan model: what a wrapper is asked to push.

A *pushable chain* is a maximal unary subplan grounded in exactly one
source: ``Source`` at the bottom, any stack of ``GetDescendants`` /
``Select`` / ``Project`` above it.  ``compile_chain`` recognizes such
chains and summarizes them as a :class:`CompiledSubplan` -- the
source-neutral currency of the capability negotiation
(``wrappers.base.negotiate_push``).  Each backend then decides how
much of the chain it can evaluate natively and answers with one of
the request types below; whatever it cannot fold stays behind as the
*residual*: the mediator replays ``CompiledSubplan.subplan`` over the
pushed result, so a backend that restricts conservatively (or not at
all) is always correct.

The helpers at the bottom (:func:`first_labels`,
:func:`single_hop_value_column`, :func:`child_restriction`,
:func:`comparison_filter`) encode the soundness rules the backends
share:

* a node's children may be restricted to a label set only when the
  node's own value is unobservable (its variable is projected away
  and no filter reads it) and every navigation step out of it starts
  with concrete, non-nullable first labels;
* a ``column OP literal`` filter may drop rows only when it came from
  a single-hop ``col._`` step -- one cell, at most one text leaf, so
  a failing row can never contribute a binding the mediator would
  have kept.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Tuple

from ..algebra.operators import (
    GetDescendants,
    Operator,
    Project,
    Select,
    Source,
)
from ..algebra.predicates import (
    And,
    Comparison,
    Const,
    Predicate,
    TruePredicate,
    Var,
)
from ..xtree.path import (
    Label,
    PathExpr,
    Seq,
    Wildcard,
    compile_path,
)

__all__ = [
    "PathStep",
    "CompiledSubplan",
    "compile_chain",
    "conjuncts",
    "comparison_filter",
    "first_labels",
    "single_hop_value_column",
    "single_hop_label",
    "child_restriction",
    "sql_exact_filter",
    "RelationalPushRequest",
    "TableScan",
    "PageFetchRequest",
    "OODBPathQuery",
    "XPathScanRequest",
]

#: XMAS comparison operators flipped around the equals sign, for
#: normalizing ``Const OP Var`` into ``Var OP' Const``.
_FLIPPED_OPS = {"=": "=", "!=": "!=",
                "<": ">", "<=": ">=", ">": "<", ">=": "<="}


@dataclass(frozen=True)
class PathStep:
    """One ``getDescendants`` hop of a pushable chain."""

    parent_var: str
    path: PathExpr
    out_var: str

    def __str__(self) -> str:
        return "$%s %s $%s" % (self.parent_var, self.path, self.out_var)


@dataclass(frozen=True)
class CompiledSubplan:
    """A maximal single-source chain, summarized for negotiation.

    ``subplan`` is the original (un-rewritten) chain; the mediator
    replays it over the pushed result, so every filter and step is
    re-checked -- backends only ever *shrink* what ships, never decide
    final membership.
    """

    url: str
    root_var: str
    steps: Tuple[PathStep, ...]
    filters: Tuple[Predicate, ...]
    output_vars: Tuple[str, ...]
    subplan: Operator = field(compare=False)

    def steps_from(self, var: str) -> Tuple[PathStep, ...]:
        return tuple(s for s in self.steps if s.parent_var == var)

    def filter_references(self, var: str) -> bool:
        return any(var in f.variables() for f in self.filters)

    def describe(self) -> str:
        return "%s: %d step(s), %d filter(s) -> %s" % (
            self.url, len(self.steps), len(self.filters),
            ", ".join("$" + v for v in self.output_vars) or "(nothing)")


def compile_chain(node: Operator) -> Optional[CompiledSubplan]:
    """Recognize ``node`` as a pushable single-source chain.

    Returns None for any structure outside the
    Select/Project/GetDescendants-over-Source shape (joins, n-ary
    operators, stateful operators, renames) -- callers then recurse
    into the node's inputs, so chains *below* an unpushable operator
    are still found.
    """
    steps: List[PathStep] = []
    filters: List[Predicate] = []
    current = node
    while not isinstance(current, Source):
        if isinstance(current, Select):
            filters.extend(conjuncts(current.predicate))
        elif isinstance(current, GetDescendants):
            steps.append(PathStep(current.parent_var, current.path,
                                  current.out_var))
        elif not isinstance(current, Project):
            return None
        if len(current.inputs) != 1:
            return None
        current = current.inputs[0]
    steps.reverse()
    return CompiledSubplan(
        url=current.url,
        root_var=current.out_var,
        steps=tuple(steps),
        filters=tuple(filters),
        output_vars=tuple(node.output_variables()),
        subplan=node,
    )


def conjuncts(predicate: Predicate) -> Tuple[Predicate, ...]:
    """Flatten nested ``And``s into their conjuncts (dropping the
    always-true ones)."""
    if isinstance(predicate, TruePredicate):
        return ()
    if isinstance(predicate, And):
        result: List[Predicate] = []
        for part in predicate.parts:
            result.extend(conjuncts(part))
        return tuple(result)
    return (predicate,)


def comparison_filter(predicate: Predicate
                      ) -> Optional[Tuple[str, str, str]]:
    """A conjunct as ``(var, op, literal_text)``, or None.

    Only ``Var OP Const`` / ``Const OP Var`` comparisons qualify; the
    literal is rendered with ``str`` exactly as
    ``algebra.predicates.evaluate`` would read it.
    """
    if not isinstance(predicate, Comparison):
        return None
    left, op, right = predicate.left, predicate.op, predicate.right
    if isinstance(left, Var) and isinstance(right, Const):
        return (left.name, op, str(right.value))
    if isinstance(left, Const) and isinstance(right, Var):
        return (right.name, _FLIPPED_OPS[op], str(left.value))
    return None


def first_labels(path: PathExpr) -> Optional[FrozenSet[str]]:
    """The concrete labels a path's first hop can take, or None.

    None means "unrestrictable": either a wildcard makes every label
    viable, or the path is nullable (it can match zero hops and bind
    the parent node itself).
    """
    nfa = compile_path(path)
    if nfa.is_accepting(nfa.start_states):
        return None
    return nfa.progress_labels(nfa.start_states)


def single_hop_value_column(path: PathExpr) -> Optional[str]:
    """The column name of a canonical ``col._`` value path, or None.

    This is the only shape whose bindings a row-level filter may
    judge: exactly one cell element, at most one text leaf below it.
    """
    if isinstance(path, Seq) and len(path.parts) == 2 \
            and isinstance(path.parts[0], Label) \
            and isinstance(path.parts[1], Wildcard):
        return path.parts[0].name
    return None


def single_hop_label(path: PathExpr) -> Optional[str]:
    """The label of a one-hop ``Label`` path, or None."""
    if isinstance(path, Label):
        return path.name
    if isinstance(path, Seq) and len(path.parts) == 1 \
            and isinstance(path.parts[0], Label):
        return path.parts[0].name
    return None


def child_restriction(compiled: CompiledSubplan, var: str
                      ) -> Optional[FrozenSet[str]]:
    """The labels ``var``'s children may be restricted to, or None.

    Restriction is sound only when the node bound to ``var`` is itself
    unobservable (not an output, not read by any filter) and every
    navigation step out of it names concrete non-nullable first
    labels -- then any child outside the set can never reach the
    answer, so the backend may not ship it.
    """
    if var in compiled.output_vars or compiled.filter_references(var):
        return None
    steps = compiled.steps_from(var)
    if not steps:
        return None
    labels: List[str] = []
    for step in steps:
        step_labels = first_labels(step.path)
        if step_labels is None:
            return None
        labels.extend(step_labels)
    return frozenset(labels)


# ----------------------------------------------------------------------
# Per-backend request formats (what push() executes)
# ----------------------------------------------------------------------

#: literals the SQL dialect tokenizes as numbers (relational/sql.py);
#: anything else -- including exotic float spellings like ``1e3`` --
#: must travel quoted.
_SQL_NUMBER = re.compile(r"-?\d+(?:\.\d+)?\Z")


def _sql_literal(text: str) -> str:
    if _SQL_NUMBER.match(text):
        return text
    return "'%s'" % text.replace("'", "''")


def sql_exact_filter(op: str, literal: str) -> bool:
    """Whether ``column OP literal`` means the same under the SQL
    dialect's weak typing as under the mediator's ``compare_values``.

    Numeric literals agree for every operator (both sides coerce to
    numbers whenever the cell allows it).  Non-numeric literals agree
    for (in)equality but can diverge on orderings when a float-valued
    cell renders differently in SQL (``2.0``) and in the exported atom
    (``2``) -- those filters stay residual.  A literal that parses as
    a float without matching the dialect's number syntax (``1e3``)
    would have to travel quoted, changing its meaning, so it is never
    folded.
    """
    if _SQL_NUMBER.match(literal):
        return True
    try:
        float(literal)
    except ValueError:
        return op in ("=", "!=")
    return False


_SQL_OPS = {"=": "=", "!=": "<>",
            "<": "<", "<=": "<=", ">": ">", ">=": ">="}


@dataclass(frozen=True)
class TableScan:
    """One merged SELECT over one table.

    ``columns`` is None for ``*``; ``row_filters`` are
    ``(column, op, literal)`` conjuncts folded into the WHERE clause.
    ``renumber`` records whether filtered rows may be renumbered
    (sound only when the row elements themselves are unobservable);
    when False the wrapper ships every row under its original
    ``rowN`` label and applies the filters itself with the mediator's
    own comparison semantics.
    """

    table: str
    columns: Optional[Tuple[str, ...]] = None
    row_filters: Tuple[Tuple[str, str, str], ...] = ()
    renumber: bool = True

    @property
    def sql(self) -> str:
        text = "SELECT %s FROM %s" % (
            ", ".join(self.columns) if self.columns else "*", self.table)
        if self.row_filters:
            text += " WHERE " + " AND ".join(
                "%s %s %s" % (col, _SQL_OPS[op], _sql_literal(lit))
                for col, op, lit in self.row_filters)
        return text


@dataclass(frozen=True)
class RelationalPushRequest:
    """The relational backend's compiled form: one SELECT per kept
    table (the WHERE/projection folding of Example 5, merged)."""

    database: str
    scans: Tuple[TableScan, ...]

    def describe(self) -> str:
        return "; ".join(scan.sql for scan in self.scans) or \
            "SELECT (no tables)"


@dataclass(frozen=True)
class PageFetchRequest:
    """The webstore backend's compiled form: drain the whole page
    chain from ``first_page`` in one request."""

    first_page: str

    def describe(self) -> str:
        return "GET %s..(follow next links)" % self.first_page


@dataclass(frozen=True)
class OODBPathQuery:
    """The OODB backend's compiled form: ship the extents of
    ``classes`` (None = every class) in one request."""

    store: str
    classes: Optional[Tuple[str, ...]] = None

    def describe(self) -> str:
        extent = ", ".join(self.classes) if self.classes is not None \
            else "*"
        return "extent(%s) of %s" % (extent, self.store)


@dataclass(frozen=True)
class XPathScanRequest:
    """The XML-file backend's compiled form: one scan of the document
    guided by the chain's paths (rendered XPath-style for display)."""

    source: str
    paths: Tuple[str, ...]

    def describe(self) -> str:
        if not self.paths:
            return "scan %s" % self.source
        return "scan %s: %s" % (self.source,
                                " | ".join("/" + p.replace(".", "/")
                                           for p in self.paths))
