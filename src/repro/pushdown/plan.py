"""The ``PushedSource`` plan node: a leaf standing for one native
source request.

The pushdown compiler splices these over maximal single-source chains.
A ``PushedSource`` carries (a) the :class:`CompiledSubplan` it
replaced, (b) the backend-specific request the wrapper agreed to
evaluate, and (c) the push-capable server itself.  The lazy builder
turns the node into the wrapper's one-shot native result wrapped in a
pre-filled buffer, then replays the original chain over it -- so the
node's output schema is exactly the chain's.
"""

from __future__ import annotations

from typing import Any, List

from ..algebra.operators import Operator
from .compiled import CompiledSubplan

__all__ = ["PushedSource"]


class PushedSource(Operator):
    """Leaf node: one compiled, negotiated source-native request."""

    inputs = ()

    def __init__(self, compiled: CompiledSubplan, request: Any,
                 server: Any):
        self.compiled = compiled
        self.request = request
        self.server = server

    def output_variables(self) -> List[str]:
        return list(self.compiled.output_vars)

    def signature(self) -> str:
        return "pushedSource[%s -> %s]" % (
            self.compiled.url,
            ", ".join("$" + v for v in self.compiled.output_vars))
