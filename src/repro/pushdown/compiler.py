"""The pushdown compiler pass: splice native requests into a plan.

``compile_pushdown`` walks an optimized plan root-first, recognizes
each *maximal* single-source chain (``compile_chain``), and negotiates
it with the source's registered wrapper
(``wrappers.base.negotiate_push``).  An accepted chain is replaced by
one :class:`~repro.pushdown.plan.PushedSource` leaf; everything above
it is rebuilt copy-on-path, so the input plan is never mutated.  A
refused or unregistered source keeps its lazy operator chain --
byte-identical to the un-pushed run -- and the refusal is recorded
once per source, not once per sub-chain.

Every outcome becomes a :class:`PushdownDecision`, surfaced through
``QueryResult.explain()``/``stats()`` and (when a tracer is attached)
one ``pushdown.decision`` event each.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Set, Tuple

from ..algebra.operators import Operator
from ..rewriter.rules import rebuild
from ..runtime.context import ExecutionContext
from ..wrappers.base import negotiate_push
from .compiled import compile_chain
from .plan import PushedSource

__all__ = ["PushdownDecision", "compile_pushdown"]


@dataclass(frozen=True)
class PushdownDecision:
    """One source's fate under the pushdown pass."""

    url: str
    pushed: bool
    reason: str       # "pushed" | "no-push-capable-wrapper" | "declined"
    detail: str       # the compiled request, or why there is none
    subplan: str      # signature of the chain the decision is about

    def as_dict(self) -> Dict[str, object]:
        return {"url": self.url, "pushed": self.pushed,
                "reason": self.reason, "detail": self.detail,
                "subplan": self.subplan}


def compile_pushdown(plan: Operator, pushables: Mapping[str, Any],
                     context: Optional[ExecutionContext] = None
                     ) -> Tuple[Operator, List[PushdownDecision]]:
    """Rewrite ``plan``, pushing every negotiable maximal chain.

    ``pushables`` maps source url -> the raw registered server (before
    buffering/resilience wrapping); servers without the push
    capability simply never match.  Returns the rewritten plan (the
    original object when nothing pushed) and the decision list.
    """
    decisions: List[PushdownDecision] = []
    dead_urls: Set[str] = set()

    def visit(node: Operator) -> Operator:
        compiled = compile_chain(node)
        if compiled is not None and compiled.url not in dead_urls:
            url = compiled.url
            server = pushables.get(url)
            if server is None:
                dead_urls.add(url)
                decisions.append(PushdownDecision(
                    url, False, "no-push-capable-wrapper",
                    "source is not registered as a pushable wrapper",
                    compiled.subplan.signature()))
            else:
                request = negotiate_push(server, compiled)
                if request is None:
                    dead_urls.add(url)
                    decisions.append(PushdownDecision(
                        url, False, "declined",
                        "wrapper declined the compiled subplan",
                        compiled.subplan.signature()))
                else:
                    decisions.append(PushdownDecision(
                        url, True, "pushed", request.describe(),
                        compiled.subplan.signature()))
                    return PushedSource(compiled, request, server)
        if not node.inputs:
            return node
        new_inputs = tuple(visit(child) for child in node.inputs)
        if all(new is old for new, old
               in zip(new_inputs, node.inputs)):
            return node
        return rebuild(node, new_inputs)

    rewritten = visit(plan)
    if context is not None:
        for decision in decisions:
            context.trace("pushdown", "decision", **decision.as_dict())
    return rewritten, decisions
